// Package enterprise implements the RM-ODP enterprise viewpoint
// (Section 3 of the tutorial): organisational purpose, scope and policy.
//
// An enterprise specification names objects (active, like bank managers
// and tellers; passive, like accounts and money), groups them into
// communities ("a bank branch consists of a bank manager, some tellers,
// and some bank accounts"), assigns them roles, and expresses the roles'
// policies as:
//
//   - permissions — what can be done ("money can be deposited into an
//     open account"),
//   - prohibitions — what must not be done ("customers must not withdraw
//     more than $500 per day"),
//   - obligations — what must be done ("the bank manager must advise
//     customers when the interest rate changes").
//
// The enterprise language is "specifically concerned with performative
// actions that change policy": Community.Perform runs a declared
// performative action, whose effect may grant or revoke policies and
// create obligations. Ordinary (non-performative) actions are judged by
// Community.Check against the current policy set; the policy engine is
// what keeps policies "determined by the organisation rather than imposed
// on the organisation by technology choices".
package enterprise

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/constraint"
	"repro/internal/values"
)

// Enterprise error sentinels.
var (
	ErrNoSuchRole        = errors.New("enterprise: no such role")
	ErrNoSuchMember      = errors.New("enterprise: no such member")
	ErrNoSuchPolicy      = errors.New("enterprise: no such policy")
	ErrNoSuchAction      = errors.New("enterprise: no such performative action")
	ErrNoSuchObligation  = errors.New("enterprise: no such obligation")
	ErrDuplicate         = errors.New("enterprise: duplicate declaration")
	ErrNotPermitted      = errors.New("enterprise: action not permitted for role")
	ErrProhibited        = errors.New("enterprise: action prohibited for role")
	ErrBadPolicy         = errors.New("enterprise: invalid policy")
	ErrAlreadyDischarged = errors.New("enterprise: obligation already discharged")
)

// ObjectKind distinguishes active objects (which fill roles and act) from
// passive ones (which are acted upon).
type ObjectKind int

// The enterprise object kinds.
const (
	Active ObjectKind = iota + 1
	Passive
)

// String returns the kind's name.
func (k ObjectKind) String() string {
	if k == Active {
		return "active"
	}
	return "passive"
}

// PolicyKind classifies a policy.
type PolicyKind int

// The policy kinds.
const (
	Permission PolicyKind = iota + 1
	Prohibition
	ObligationRule // a standing rule that, when triggered, creates obligation instances
)

// String returns the policy kind's name.
func (k PolicyKind) String() string {
	switch k {
	case Permission:
		return "permission"
	case Prohibition:
		return "prohibition"
	case ObligationRule:
		return "obligation"
	}
	return fmt.Sprintf("policykind(%d)", int(k))
}

// Policy is one rule attached to a role. The condition (if any) is a
// constraint expression over the action's parameter record; a policy with
// no condition applies unconditionally.
type Policy struct {
	ID        string
	Kind      PolicyKind
	Role      string
	Action    string
	Condition string // constraint source, "" = always
	// Duty (ObligationRule only): the action the role becomes obliged to
	// perform when the rule's Action occurs.
	Duty string

	cond *constraint.Expr
}

// Obligation is a live duty created by an ObligationRule (or directly by
// Oblige): the role must eventually perform the duty action.
type Obligation struct {
	ID         uint64
	Role       string
	Duty       string
	Origin     string // the action or policy that created it
	Discharged bool
}

// Verdict is the outcome of a policy check.
type Verdict struct {
	Allowed bool
	// Policy identifies the deciding rule (the permission that granted or
	// the prohibition that denied); empty when denied by default.
	Policy string
	Reason string
}

// Community is a grouping of objects "intended to achieve some purpose":
// the unit of enterprise specification and the scope of its policies.
// A Community is safe for concurrent use.
type Community struct {
	name    string
	purpose string

	mu           sync.Mutex
	roles        map[string]bool
	objects      map[string]ObjectKind
	members      map[string]string // object -> role
	policies     map[string]*Policy
	policyOrder  []string
	performative map[string]PerformativeAction
	obligations  map[uint64]*Obligation
	nextOblig    uint64

	checks  uint64
	denials uint64
}

// PerformativeAction is an action that changes policy. Its effect runs
// with the community lock held, through the Mutator, which exposes the
// policy-changing operations only — performative actions change policy,
// not application state.
type PerformativeAction struct {
	Name string
	// Role that may perform the action ("" = any member).
	Role string
	// Effect applies the policy changes given the action parameters.
	Effect func(m *Mutator, params values.Value) error
}

// NewCommunity creates a community with the given name and purpose.
func NewCommunity(name, purpose string) *Community {
	return &Community{
		name:         name,
		purpose:      purpose,
		roles:        make(map[string]bool),
		objects:      make(map[string]ObjectKind),
		members:      make(map[string]string),
		policies:     make(map[string]*Policy),
		performative: make(map[string]PerformativeAction),
		obligations:  make(map[uint64]*Obligation),
	}
}

// Name returns the community name.
func (c *Community) Name() string { return c.name }

// Purpose returns the community's declared purpose.
func (c *Community) Purpose() string { return c.purpose }

// DeclareRole introduces a role.
func (c *Community) DeclareRole(role string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.roles[role] {
		return fmt.Errorf("%w: role %q", ErrDuplicate, role)
	}
	c.roles[role] = true
	return nil
}

// AddObject introduces an enterprise object of the given kind.
func (c *Community) AddObject(name string, kind ObjectKind) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.objects[name]; ok {
		return fmt.Errorf("%w: object %q", ErrDuplicate, name)
	}
	c.objects[name] = kind
	return nil
}

// Assign binds an active object to a role (filling the role).
func (c *Community) Assign(object, role string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.roles[role] {
		return fmt.Errorf("%w: %q", ErrNoSuchRole, role)
	}
	kind, ok := c.objects[object]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchMember, object)
	}
	if kind != Active {
		return fmt.Errorf("enterprise: passive object %q cannot fill role %q", object, role)
	}
	c.members[object] = role
	return nil
}

// RoleOf returns the role an object fills.
func (c *Community) RoleOf(object string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	role, ok := c.members[object]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoSuchMember, object)
	}
	return role, nil
}

// Members returns the sorted objects filling the given role.
func (c *Community) Members(role string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for obj, r := range c.members {
		if r == role {
			out = append(out, obj)
		}
	}
	sort.Strings(out)
	return out
}

// AddPolicy installs a policy after validating it (role declared, known
// kind, condition parses, obligation rules carry a duty).
func (c *Community) AddPolicy(p Policy) error {
	if p.ID == "" || p.Action == "" {
		return fmt.Errorf("%w: policy needs an id and an action", ErrBadPolicy)
	}
	switch p.Kind {
	case Permission, Prohibition:
		if p.Duty != "" {
			return fmt.Errorf("%w: %s policy %q has a duty", ErrBadPolicy, p.Kind, p.ID)
		}
	case ObligationRule:
		if p.Duty == "" {
			return fmt.Errorf("%w: obligation policy %q has no duty", ErrBadPolicy, p.ID)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadPolicy, int(p.Kind))
	}
	expr, err := constraint.Parse(p.Condition)
	if err != nil {
		return fmt.Errorf("%w: policy %q: %v", ErrBadPolicy, p.ID, err)
	}
	p.cond = expr
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.roles[p.Role] {
		return fmt.Errorf("%w: %q", ErrNoSuchRole, p.Role)
	}
	if _, ok := c.policies[p.ID]; ok {
		return fmt.Errorf("%w: policy %q", ErrDuplicate, p.ID)
	}
	cp := p
	c.policies[p.ID] = &cp
	c.policyOrder = append(c.policyOrder, p.ID)
	return nil
}

// RevokePolicy removes a policy — itself a performative effect.
func (c *Community) RevokePolicy(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.revokeLocked(id)
}

func (c *Community) revokeLocked(id string) error {
	if _, ok := c.policies[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchPolicy, id)
	}
	delete(c.policies, id)
	for i, pid := range c.policyOrder {
		if pid == id {
			c.policyOrder = append(c.policyOrder[:i], c.policyOrder[i+1:]...)
			break
		}
	}
	return nil
}

// Policies returns the community's policies in declaration order.
func (c *Community) Policies() []Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Policy, 0, len(c.policyOrder))
	for _, id := range c.policyOrder {
		out = append(out, *c.policies[id])
	}
	return out
}

// Check judges whether actor may perform action with the given parameter
// record. Prohibitions dominate permissions; absent any applicable
// permission the default is denial. Matching obligation rules fire as a
// side effect, creating obligation instances (e.g. a rate change obliging
// the manager to notify customers).
func (c *Community) Check(actor, action string, params values.Value) (Verdict, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checks++
	role, ok := c.members[actor]
	if !ok {
		c.denials++
		return Verdict{}, fmt.Errorf("%w: %q", ErrNoSuchMember, actor)
	}
	verdict := Verdict{Reason: "no applicable permission"}
	for _, id := range c.policyOrder {
		p := c.policies[id]
		if p.Role != role || p.Action != action {
			continue
		}
		match, err := p.cond.Matches(params)
		if err != nil || !match {
			continue // an inapplicable condition simply does not fire
		}
		switch p.Kind {
		case Prohibition:
			c.denials++
			return Verdict{Allowed: false, Policy: p.ID, Reason: "prohibited"},
				fmt.Errorf("%w: %q by policy %q", ErrProhibited, action, p.ID)
		case Permission:
			if !verdict.Allowed {
				verdict = Verdict{Allowed: true, Policy: p.ID, Reason: "permitted"}
			}
		case ObligationRule:
			c.obligeLocked(p.Role, p.Duty, p.ID)
		}
	}
	if !verdict.Allowed {
		c.denials++
		return verdict, fmt.Errorf("%w: %q for role %q", ErrNotPermitted, action, role)
	}
	return verdict, nil
}

// Performatives returns the sorted names of declared performative actions.
func (c *Community) Performatives() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.performative))
	for n := range c.performative {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DeclarePerformative registers a performative action.
func (c *Community) DeclarePerformative(a PerformativeAction) error {
	if a.Name == "" || a.Effect == nil {
		return fmt.Errorf("%w: performative action needs a name and an effect", ErrBadPolicy)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.performative[a.Name]; ok {
		return fmt.Errorf("%w: performative %q", ErrDuplicate, a.Name)
	}
	c.performative[a.Name] = a
	return nil
}

// Perform executes a performative action: it verifies the actor holds the
// action's role, then applies the effect, which may change the policy set
// and create obligations.
func (c *Community) Perform(actor, action string, params values.Value) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.performative[action]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchAction, action)
	}
	role, ok := c.members[actor]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchMember, actor)
	}
	if a.Role != "" && a.Role != role {
		return fmt.Errorf("%w: %q requires role %q, %s holds %q", ErrNotPermitted, action, a.Role, actor, role)
	}
	return a.Effect(&Mutator{c: c}, params)
}

// Oblige creates an obligation directly.
func (c *Community) Oblige(role, duty, origin string) *Obligation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.obligeLocked(role, duty, origin)
}

func (c *Community) obligeLocked(role, duty, origin string) *Obligation {
	c.nextOblig++
	o := &Obligation{ID: c.nextOblig, Role: role, Duty: duty, Origin: origin}
	c.obligations[o.ID] = o
	return o
}

// Discharge marks an obligation fulfilled.
func (c *Community) Discharge(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	o, ok := c.obligations[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchObligation, id)
	}
	if o.Discharged {
		return fmt.Errorf("%w: %d", ErrAlreadyDischarged, id)
	}
	o.Discharged = true
	return nil
}

// Outstanding returns the undischarged obligations of a role ("" = all),
// ordered by creation.
func (c *Community) Outstanding(role string) []Obligation {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Obligation
	for _, o := range c.obligations {
		if !o.Discharged && (role == "" || o.Role == role) {
			out = append(out, *o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns (policy checks performed, denials issued).
func (c *Community) Stats() (checks, denials uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checks, c.denials
}

// Mutator is the policy-changing capability handed to performative
// effects; it operates under the community lock.
type Mutator struct {
	c *Community
}

// Grant adds a policy.
func (m *Mutator) Grant(p Policy) error {
	if p.ID == "" || p.Action == "" {
		return fmt.Errorf("%w: policy needs an id and an action", ErrBadPolicy)
	}
	expr, err := constraint.Parse(p.Condition)
	if err != nil {
		return fmt.Errorf("%w: policy %q: %v", ErrBadPolicy, p.ID, err)
	}
	p.cond = expr
	if !m.c.roles[p.Role] {
		return fmt.Errorf("%w: %q", ErrNoSuchRole, p.Role)
	}
	if _, ok := m.c.policies[p.ID]; ok {
		return fmt.Errorf("%w: policy %q", ErrDuplicate, p.ID)
	}
	cp := p
	m.c.policies[p.ID] = &cp
	m.c.policyOrder = append(m.c.policyOrder, p.ID)
	return nil
}

// Revoke removes a policy.
func (m *Mutator) Revoke(id string) error { return m.c.revokeLocked(id) }

// Oblige creates an obligation.
func (m *Mutator) Oblige(role, duty, origin string) *Obligation {
	return m.c.obligeLocked(role, duty, origin)
}
