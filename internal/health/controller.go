package health

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
)

// Plan is what recovery does for one endpoint. All hooks are optional;
// each receives the endpoint so one plan value can serve many
// endpoints. Hooks run on the controller's single worker goroutine —
// recovery actions (ring changes, group membership edits) are
// serialised by construction, never concurrent with each other.
type Plan struct {
	// OnSuspect runs when the endpoint turns Suspect: a proactive
	// action while the endpoint may still answer (e.g. draining a shard
	// off the ring through the live migration path).
	OnSuspect func(ctx context.Context, endpoint string) error
	// OnDead runs when the endpoint turns Dead: the failover itself
	// (drop the dead group member, promote a standby, re-replicate).
	OnDead func(ctx context.Context, endpoint string) error
	// OnAlive runs when a previously suspect/dead endpoint heals: the
	// re-admission (catch the member up, rejoin the ring). When the
	// controller has Breakers, OnAlive is gated by the endpoint's
	// breaker: a half-open probe is claimed for the attempt, Record
	// reports its outcome, and ReturnProbe hands an unused probe back.
	OnAlive func(ctx context.Context, endpoint string) error
}

// ControllerConfig parameterises a Controller.
type ControllerConfig struct {
	// Queue bounds the pending-transition queue (default 64). When it
	// is full, Handle drops the transition and counts it — the detector
	// will fire again if the condition persists.
	Queue int
	// Retries is how many extra attempts a failed action gets
	// (default 2).
	Retries int
	// RetryDelay separates attempts (default 5ms).
	RetryDelay time.Duration
	// Timeout bounds one action attempt (default 5s).
	Timeout time.Duration
	// Breakers, when set, gates OnAlive re-admission per endpoint: heal
	// actions claim the breaker's half-open probe so a flapping
	// endpoint is re-admitted at most once per breaker open interval.
	Breakers *policy.BreakerSet
	// Log, when set, receives one line per action outcome.
	Log func(format string, args ...any)
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 5 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	return c
}

// ControllerStats counts recovery activity.
type ControllerStats struct {
	Handled      uint64 // transitions accepted onto the queue
	Actions      uint64 // plan hooks that ran and succeeded
	Failures     uint64 // plan hooks that exhausted their retries
	Dropped      uint64 // transitions dropped at a full queue or with no plan
	Readmissions uint64 // successful breaker-gated OnAlive actions
}

// Controller is the self-healing layer's acting half: it consumes
// liveness transitions (wired to the detector directly or via the event
// bus) and executes per-endpoint recovery plans on one serial worker.
type Controller struct {
	cfg ControllerConfig

	mu       sync.Mutex
	plans    map[string]Plan
	fallback *Plan

	q      chan Transition
	done   chan struct{}
	cancel context.CancelFunc
	closed atomic.Bool

	handled      atomic.Uint64
	actions      atomic.Uint64
	failures     atomic.Uint64
	dropped      atomic.Uint64
	readmissions atomic.Uint64
}

// NewController creates a controller and starts its worker.
func NewController(cfg ControllerConfig) *Controller {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Controller{
		cfg:    cfg.withDefaults(),
		plans:  make(map[string]Plan),
		q:      make(chan Transition, cfg.withDefaults().Queue),
		done:   make(chan struct{}),
		cancel: cancel,
	}
	go c.run(ctx)
	return c
}

// SetPlan installs endpoint's recovery plan, replacing any previous one.
func (c *Controller) SetPlan(endpoint string, p Plan) {
	c.mu.Lock()
	c.plans[endpoint] = p
	c.mu.Unlock()
}

// SetFallbackPlan installs the plan used by endpoints without their own.
func (c *Controller) SetFallbackPlan(p Plan) {
	c.mu.Lock()
	c.fallback = &p
	c.mu.Unlock()
}

// Handle enqueues one transition; it never blocks. Full queue or a
// closed controller drops the transition (counted): the detector keeps
// probing and will report the condition again.
func (c *Controller) Handle(t Transition) {
	if c.closed.Load() {
		c.dropped.Add(1)
		return
	}
	select {
	case c.q <- t:
		c.handled.Add(1)
	default:
		c.dropped.Add(1)
	}
}

// Stats returns the controller's activity counters.
func (c *Controller) Stats() ControllerStats {
	return ControllerStats{
		Handled:      c.handled.Load(),
		Actions:      c.actions.Load(),
		Failures:     c.failures.Load(),
		Dropped:      c.dropped.Load(),
		Readmissions: c.readmissions.Load(),
	}
}

// Close stops the worker; queued transitions are abandoned.
func (c *Controller) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.cancel()
	<-c.done
}

func (c *Controller) run(ctx context.Context) {
	defer close(c.done)
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-c.q:
			c.act(ctx, t)
		}
	}
}

func (c *Controller) plan(endpoint string) (Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.plans[endpoint]; ok {
		return p, true
	}
	if c.fallback != nil {
		return *c.fallback, true
	}
	return Plan{}, false
}

func (c *Controller) act(ctx context.Context, t Transition) {
	p, ok := c.plan(t.Endpoint)
	if !ok {
		c.dropped.Add(1)
		return
	}
	var hook func(context.Context, string) error
	switch t.To {
	case Suspect:
		hook = p.OnSuspect
	case Dead:
		hook = p.OnDead
	case Alive:
		hook = p.OnAlive
	}
	if hook == nil {
		return
	}

	// Heal actions are breaker-gated: claim the half-open probe for the
	// attempt; hand it back untouched if the breaker refuses (still
	// open), so re-admission of a flapping endpoint is paced by the
	// breaker, not by the detector's transition rate.
	var br *policy.Breaker
	if t.To == Alive && c.cfg.Breakers != nil {
		br = c.cfg.Breakers.For(t.Endpoint)
		allowed, probe := br.Allow()
		if !allowed {
			c.failures.Add(1)
			c.logf("health: %s heal deferred: breaker open", t.Endpoint)
			return
		}
		if !probe {
			br = nil // breaker closed: nothing to report back
		} else if ctx.Err() != nil {
			br.ReturnProbe() // shutting down: hand the unused probe back
			return
		}
	}

	err := c.attempt(ctx, hook, t.Endpoint)
	if br != nil {
		br.Record(err == nil)
	}
	switch {
	case err == nil:
		c.actions.Add(1)
		if t.To == Alive && br != nil {
			c.readmissions.Add(1)
		}
		c.logf("health: %s -> %s handled", t.Endpoint, t.To)
	case ctx.Err() != nil:
		// Shutting down: return the unused outcome politely. Record
		// already ran above when a probe was claimed.
	default:
		c.failures.Add(1)
		c.logf("health: %s -> %s failed: %v", t.Endpoint, t.To, err)
	}
}

func (c *Controller) attempt(ctx context.Context, hook func(context.Context, string) error, ep string) error {
	var err error
	for i := 0; i <= c.cfg.Retries; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.cfg.RetryDelay):
			}
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
		err = hook(actx, ep)
		cancel()
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("health: %d attempts: %w", c.cfg.Retries+1, err)
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log(format, args...)
	}
}
