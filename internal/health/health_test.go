package health

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/mgmt"
	"repro/internal/policy"
)

// flakyProbe is a controllable probe: failing decides the outcome, rtt
// the reported round trip (no real sleeping — the detector judges the
// reported value against its adaptive timeout).
type flakyProbe struct {
	failing atomic.Bool
	rtt     atomic.Int64
}

func (p *flakyProbe) fn() ProbeFunc {
	return func(ctx context.Context) (time.Duration, error) {
		if p.failing.Load() {
			return 0, errors.New("probe: endpoint unreachable")
		}
		return time.Duration(p.rtt.Load()), nil
	}
}

// transitionLog collects transitions in order.
type transitionLog struct {
	mu  sync.Mutex
	seq []Transition
}

func (l *transitionLog) add(t Transition) {
	l.mu.Lock()
	l.seq = append(l.seq, t)
	l.mu.Unlock()
}

func (l *transitionLog) snapshot() []Transition {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Transition, len(l.seq))
	copy(out, l.seq)
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDetectorCrashTransitions(t *testing.T) {
	defer leakcheck.Guard(t, 2, 5*time.Second)()
	probe := &flakyProbe{}
	probe.rtt.Store(int64(time.Millisecond))
	log := &transitionLog{}
	d := New(Config{
		Interval:     time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    4,
		OnTransition: log.add,
	})
	defer d.Close()
	if err := d.Watch("m0", probe.fn()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first success", func() bool {
		st, _, ok := d.State("m0")
		return ok && st == Alive
	})

	probe.failing.Store(true)
	waitFor(t, "dead", func() bool {
		st, _, _ := d.State("m0")
		return st == Dead
	})
	if _, susp, _ := d.State("m0"); susp != 1 {
		t.Fatalf("dead endpoint suspicion = %v, want 1", susp)
	}

	probe.failing.Store(false)
	waitFor(t, "recovery", func() bool {
		st, _, _ := d.State("m0")
		return st == Alive
	})

	seq := log.snapshot()
	var states []State
	for _, tr := range seq {
		if tr.Endpoint != "m0" {
			t.Fatalf("transition for unexpected endpoint %q", tr.Endpoint)
		}
		states = append(states, tr.To)
	}
	want := []State{Suspect, Dead, Alive}
	if len(states) < len(want) {
		t.Fatalf("transitions %v, want at least %v", states, want)
	}
	for i, w := range want {
		if states[i] != w {
			t.Fatalf("transition %d = %v, want %v (full: %v)", i, states[i], w, states)
		}
	}
}

func TestDetectorRTTWindowDrivesSuspicion(t *testing.T) {
	defer leakcheck.Guard(t, 2, 5*time.Second)()
	probe := &flakyProbe{}
	probe.rtt.Store(int64(time.Millisecond))
	d := New(Config{
		Interval:     time.Millisecond,
		MinTimeout:   2 * time.Millisecond,
		RTTFactor:    2,
		Window:       8,
		SuspectAfter: 2,
		DeadAfter:    6,
	})
	defer d.Close()
	if err := d.Watch("wan", probe.fn()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "window warm", func() bool {
		for _, st := range d.Snapshot() {
			if st.Endpoint == "wan" && st.RTT > 0 && st.State == Alive {
				return true
			}
		}
		return false
	})

	// A latency regime shift: probes still "succeed" but report round
	// trips far beyond the adaptive timeout (2 × ~1ms window). The
	// detector must count them as misses and raise suspicion.
	probe.rtt.Store(int64(500 * time.Millisecond))
	waitFor(t, "suspect on slow probes", func() bool {
		st, susp, _ := d.State("wan")
		return st == Suspect && susp > 0
	})

	// Back to the old regime: suspicion resets.
	probe.rtt.Store(int64(time.Millisecond))
	waitFor(t, "alive again", func() bool {
		st, susp, _ := d.State("wan")
		return st == Alive && susp == 0
	})
}

func TestDetectorPassiveObserve(t *testing.T) {
	defer leakcheck.Guard(t, 2, 5*time.Second)()
	probe := &flakyProbe{}
	probe.rtt.Store(int64(time.Millisecond))
	d := New(Config{
		Interval:     time.Hour, // only the immediate first probe fires
		SuspectAfter: 2,
		DeadAfter:    4,
	})
	defer d.Close()
	if err := d.Watch("m1", probe.fn()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first success", func() bool {
		st, _, ok := d.State("m1")
		return ok && st == Alive
	})

	// Application traffic reports failures: no active probe needed.
	for i := 0; i < 4; i++ {
		d.Observe("m1", 0, errors.New("invoke failed"))
	}
	if st, _, _ := d.State("m1"); st != Dead {
		t.Fatalf("state after 4 passive failures = %v, want dead", st)
	}
	d.Observe("m1", time.Millisecond, nil)
	if st, _, _ := d.State("m1"); st != Alive {
		t.Fatalf("state after passive success = %v, want alive", st)
	}
	// Unwatched endpoints are ignored, not created.
	d.Observe("ghost", 0, errors.New("x"))
	if _, _, ok := d.State("ghost"); ok {
		t.Fatal("Observe must not create endpoints")
	}
}

func TestDetectorGauges(t *testing.T) {
	defer leakcheck.Guard(t, 2, 5*time.Second)()
	m := mgmt.New()
	probe := &flakyProbe{}
	probe.failing.Store(true)
	d := New(Config{
		Interval:     time.Millisecond,
		SuspectAfter: 1,
		DeadAfter:    2,
		Instruments:  m.Health,
	})
	defer d.Close()
	if err := d.Watch("m2", probe.fn()); err != nil {
		t.Fatal(err)
	}
	state := m.Registry.Gauge("health.m2.state")
	susp := m.Registry.Gauge("health.m2.suspicion")
	waitFor(t, "dead gauge", func() bool {
		return state.Load() == int64(Dead) && susp.Load() == 1000
	})
	probe.failing.Store(false)
	waitFor(t, "alive gauge", func() bool {
		return state.Load() == int64(Alive) && susp.Load() == 0
	})
}

func TestTransitionValueRoundTrip(t *testing.T) {
	in := Transition{
		Endpoint:  "rep0",
		From:      Alive,
		To:        Dead,
		Suspicion: 1,
		RTT:       1500 * time.Microsecond,
		At:        time.Unix(12, 345),
	}
	out, err := TransitionFromValue(in.ToValue())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestControllerRunsPlanOnTransitions(t *testing.T) {
	defer leakcheck.Guard(t, 2, 5*time.Second)()
	ctl := NewController(ControllerConfig{})
	defer ctl.Close()
	var deaths, heals, suspects atomic.Int64
	ctl.SetPlan("m0", Plan{
		OnSuspect: func(context.Context, string) error { suspects.Add(1); return nil },
		OnDead:    func(context.Context, string) error { deaths.Add(1); return nil },
		OnAlive:   func(context.Context, string) error { heals.Add(1); return nil },
	})

	probe := &flakyProbe{}
	probe.rtt.Store(int64(time.Millisecond))
	d := New(Config{
		Interval:     time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    4,
		OnTransition: ctl.Handle,
	})
	defer d.Close()
	if err := d.Watch("m0", probe.fn()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "warm", func() bool { st, _, ok := d.State("m0"); return ok && st == Alive })

	probe.failing.Store(true)
	waitFor(t, "failover ran", func() bool { return deaths.Load() == 1 })
	if suspects.Load() != 1 {
		t.Fatalf("suspect actions = %d, want 1", suspects.Load())
	}
	probe.failing.Store(false)
	waitFor(t, "heal ran", func() bool { return heals.Load() == 1 })

	st := ctl.Stats()
	if st.Actions != 3 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 3 actions, 0 failures", st)
	}
}

func TestControllerRetriesThenFails(t *testing.T) {
	defer leakcheck.Guard(t, 2, 5*time.Second)()
	var calls atomic.Int64
	ctl := NewController(ControllerConfig{Retries: 2, RetryDelay: time.Millisecond})
	defer ctl.Close()
	ctl.SetFallbackPlan(Plan{
		OnDead: func(context.Context, string) error {
			calls.Add(1)
			return errors.New("still broken")
		},
	})
	ctl.Handle(Transition{Endpoint: "m9", From: Suspect, To: Dead})
	waitFor(t, "retries exhausted", func() bool { return ctl.Stats().Failures == 1 })
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestControllerBreakerGatedReadmission(t *testing.T) {
	defer leakcheck.Guard(t, 2, 5*time.Second)()
	bs := policy.NewBreakerSet(policy.BreakerConfig{
		ConsecutiveFailures: 1,
		OpenFor:             10 * time.Millisecond,
	})
	br := bs.For("rep0")
	br.Record(false) // trip it: rep0 just died
	if br.State() != policy.Open {
		t.Fatalf("breaker state = %v, want open", br.State())
	}

	var heals atomic.Int64
	ctl := NewController(ControllerConfig{Breakers: bs, RetryDelay: time.Millisecond})
	defer ctl.Close()
	ctl.SetPlan("rep0", Plan{
		OnAlive: func(context.Context, string) error { heals.Add(1); return nil },
	})

	// While the breaker is freshly open the heal is deferred, not run.
	ctl.Handle(Transition{Endpoint: "rep0", From: Dead, To: Alive})
	waitFor(t, "deferred heal", func() bool { return ctl.Stats().Failures == 1 })
	if heals.Load() != 0 {
		t.Fatal("heal ran through an open breaker")
	}

	// After OpenFor the breaker grants its half-open probe: the heal
	// runs, its success is recorded, and the breaker re-closes — the
	// ReturnProbe/Record re-admission path.
	waitFor(t, "half-open", func() bool { return br.State() == policy.HalfOpen })
	ctl.Handle(Transition{Endpoint: "rep0", From: Dead, To: Alive})
	waitFor(t, "re-admitted", func() bool { return ctl.Stats().Readmissions == 1 })
	if heals.Load() != 1 {
		t.Fatalf("heals = %d, want 1", heals.Load())
	}
	waitFor(t, "breaker closed", func() bool { return br.State() == policy.Closed })
}

func TestDetectorWatchErrors(t *testing.T) {
	d := New(Config{Interval: time.Hour})
	defer d.Close()
	probe := &flakyProbe{}
	if err := d.Watch("a", nil); err == nil {
		t.Fatal("nil probe accepted")
	}
	if err := d.Watch("a", probe.fn()); err != nil {
		t.Fatal(err)
	}
	if err := d.Watch("a", probe.fn()); err == nil {
		t.Fatal("duplicate watch accepted")
	}
	d.Unwatch("a")
	if err := d.Watch("a", probe.fn()); err != nil {
		t.Fatalf("re-watch after unwatch: %v", err)
	}
	d.Close()
	if err := d.Watch("b", probe.fn()); err == nil {
		t.Fatal("watch after close accepted")
	}
	if got := fmt.Sprint(Alive, Suspect, Dead); got != "alive suspect dead" {
		t.Fatalf("state strings = %q", got)
	}
}
