package health

import (
	"fmt"
	"time"

	"repro/internal/values"
)

// EventTopic is the bus topic liveness transitions are published on
// (the odp facade re-exports it as TopicLiveness). Payloads are the
// records minted by Transition.ToValue.
const EventTopic = "health.liveness"

// ToValue encodes the transition as a bus payload record.
func (t Transition) ToValue() values.Value {
	return values.Record(
		values.F("endpoint", values.Str(t.Endpoint)),
		values.F("from", values.Int(int64(t.From))),
		values.F("to", values.Int(int64(t.To))),
		values.F("suspicion_pm", values.Int(int64(t.Suspicion*1000))),
		values.F("rtt_ns", values.Int(int64(t.RTT))),
		values.F("at_ns", values.Int(t.At.UnixNano())),
	)
}

// TransitionFromValue decodes a record published on EventTopic.
func TransitionFromValue(v values.Value) (Transition, error) {
	var t Transition
	str := func(name string) (string, bool) {
		fv, ok := v.FieldByName(name)
		if !ok {
			return "", false
		}
		return fv.AsString()
	}
	num := func(name string) (int64, bool) {
		fv, ok := v.FieldByName(name)
		if !ok {
			return 0, false
		}
		return fv.AsInt()
	}
	ep, ok := str("endpoint")
	if !ok {
		return t, fmt.Errorf("health: transition event missing endpoint")
	}
	t.Endpoint = ep
	from, ok := num("from")
	if !ok {
		return t, fmt.Errorf("health: transition event missing from")
	}
	to, ok := num("to")
	if !ok {
		return t, fmt.Errorf("health: transition event missing to")
	}
	t.From, t.To = State(from), State(to)
	if pm, ok := num("suspicion_pm"); ok {
		t.Suspicion = float64(pm) / 1000
	}
	if ns, ok := num("rtt_ns"); ok {
		t.RTT = time.Duration(ns)
	}
	if ns, ok := num("at_ns"); ok {
		t.At = time.Unix(0, ns)
	}
	return t, nil
}
