// Package health is the self-healing layer's sensing half: a
// heartbeat/lease failure detector that probes endpoints, maintains a
// per-endpoint suspicion level driven by a window of observed probe
// round trips, and reports liveness transitions (alive, suspect, dead)
// to whoever acts on them — typically the recovery Controller in this
// package, subscribed through the system event bus.
//
// The tutorial's §9 failure transparency is a *prescribed* property:
// somebody has to do the detecting and the repairing that the
// transparency hides. The detector is deliberately probe-agnostic — a
// ProbeFunc can dial a transport, invoke a ping interface through the
// full channel stack, or be fed passively from application traffic via
// Observe — so the machinery that restores service is reached through
// the same channels it restores.
package health

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/mgmt"
)

// State is an endpoint's liveness as judged by the detector.
type State int32

const (
	// Alive: recent probes succeed within the adaptive timeout.
	Alive State = iota
	// Suspect: SuspectAfter consecutive probes missed — degraded or
	// partitioned, but not yet written off.
	Suspect
	// Dead: DeadAfter consecutive probes missed — the lease is gone and
	// recovery may act.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ProbeFunc checks one endpoint once and reports the observed round
// trip. The context carries the adaptive timeout; a probe that cannot
// complete within it should return the context's error. A zero rtt on
// success is filled in by the detector from wall-clock time.
type ProbeFunc func(ctx context.Context) (time.Duration, error)

// Transition is one liveness change, published on the event bus as
// EventTopic records and handed to OnTransition.
type Transition struct {
	Endpoint  string
	From, To  State
	Suspicion float64       // suspicion level (0..1) when the transition fired
	RTT       time.Duration // smoothed round trip over the window (0 if none yet)
	At        time.Time
}

// Config parameterises a Detector. The zero value gets workable
// defaults for simulated-network tests; real deployments scale Interval
// and MinTimeout up.
type Config struct {
	// Interval is the probe period per endpoint (default 20ms).
	Interval time.Duration
	// MinTimeout floors the per-probe timeout (default 4×Interval).
	MinTimeout time.Duration
	// RTTFactor scales the windowed round trip into the adaptive probe
	// timeout: timeout = max(MinTimeout, RTTFactor × mean window RTT).
	// A WAN latency regime shift therefore first shows up as misses —
	// suspicion — and then, if probes start succeeding again, widens the
	// window and the timeout follows the new regime (default 4).
	RTTFactor float64
	// Window is how many successful round trips the smoothing window
	// holds (default 32).
	Window int
	// SuspectAfter is the consecutive misses before Suspect (default 2).
	SuspectAfter int
	// DeadAfter is the consecutive misses before Dead (default 4; must
	// be >= SuspectAfter).
	DeadAfter int
	// OnTransition, when set, is called after every liveness change,
	// outside detector locks (the odp facade uses it to publish
	// EventTopic records on the system bus).
	OnTransition func(Transition)
	// Instruments, when set, resolves the per-endpoint mgmt bundle
	// (typically Management.Health). Nil disables instrumentation.
	Instruments func(endpoint string) *mgmt.HealthInstruments
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.MinTimeout <= 0 {
		c.MinTimeout = 4 * c.Interval
	}
	if c.RTTFactor <= 0 {
		c.RTTFactor = 4
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter < c.SuspectAfter {
		c.DeadAfter = 2 * c.SuspectAfter
	}
	return c
}

// EndpointStatus is one row of a detector snapshot.
type EndpointStatus struct {
	Endpoint  string
	State     State
	Suspicion float64
	RTT       time.Duration // smoothed window round trip
	Misses    int           // consecutive misses right now
}

// Detector runs one probe loop per watched endpoint and keeps the
// per-endpoint suspicion state machine.
type Detector struct {
	cfg Config

	mu     sync.Mutex
	eps    map[string]*endpointState
	closed bool
}

type endpointState struct {
	name   string
	probe  ProbeFunc
	ins    *mgmt.HealthInstruments
	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex
	state   State
	misses  int
	window  []time.Duration // ring of successful round trips
	wi, wn  int
	rttSum  time.Duration
	lastRTT time.Duration
}

// New creates a detector. Endpoints are added with Watch; Close stops
// every probe loop.
func New(cfg Config) *Detector {
	return &Detector{
		cfg: cfg.withDefaults(),
		eps: make(map[string]*endpointState),
	}
}

// Watch starts probing endpoint with probe. The first probe fires
// immediately. Watching an endpoint twice is an error.
func (d *Detector) Watch(endpoint string, probe ProbeFunc) error {
	if probe == nil {
		return fmt.Errorf("health: nil probe for %q", endpoint)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("health: detector closed")
	}
	if _, dup := d.eps[endpoint]; dup {
		return fmt.Errorf("health: already watching %q", endpoint)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &endpointState{
		name:   endpoint,
		probe:  probe,
		cancel: cancel,
		done:   make(chan struct{}),
		window: make([]time.Duration, d.cfg.Window),
	}
	if d.cfg.Instruments != nil {
		e.ins = d.cfg.Instruments(endpoint)
	}
	if e.ins == nil {
		// No management plane: an empty bundle, whose nil instruments
		// swallow updates, keeps the hot path branch-free.
		e.ins = &mgmt.HealthInstruments{}
	}
	// Publish the initial gauges so odpstat shows the endpoint before
	// its first probe lands.
	e.ins.State.Set(int64(Alive))
	e.ins.Suspicion.Set(0)
	d.eps[endpoint] = e
	go d.loop(ctx, e)
	return nil
}

// Unwatch stops probing endpoint and forgets its state.
func (d *Detector) Unwatch(endpoint string) {
	d.mu.Lock()
	e := d.eps[endpoint]
	delete(d.eps, endpoint)
	d.mu.Unlock()
	if e != nil {
		e.cancel()
		<-e.done
	}
}

// Close stops every probe loop and waits for them to exit.
func (d *Detector) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	eps := make([]*endpointState, 0, len(d.eps))
	for _, e := range d.eps {
		eps = append(eps, e)
	}
	d.eps = map[string]*endpointState{}
	d.mu.Unlock()
	for _, e := range eps {
		e.cancel()
	}
	for _, e := range eps {
		<-e.done
	}
}

// State reports an endpoint's current liveness and suspicion; ok is
// false when the endpoint is not watched.
func (d *Detector) State(endpoint string) (st State, suspicion float64, ok bool) {
	d.mu.Lock()
	e := d.eps[endpoint]
	d.mu.Unlock()
	if e == nil {
		return Alive, 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state, e.suspicionLocked(d.cfg), true
}

// Snapshot lists every watched endpoint's status, sorted by name.
func (d *Detector) Snapshot() []EndpointStatus {
	d.mu.Lock()
	eps := make([]*endpointState, 0, len(d.eps))
	for _, e := range d.eps {
		eps = append(eps, e)
	}
	d.mu.Unlock()
	out := make([]EndpointStatus, 0, len(eps))
	for _, e := range eps {
		e.mu.Lock()
		out = append(out, EndpointStatus{
			Endpoint:  e.name,
			State:     e.state,
			Suspicion: e.suspicionLocked(d.cfg),
			RTT:       e.meanLocked(),
			Misses:    e.misses,
		})
		e.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// Observe feeds one passive sample — a round trip (or failure) seen by
// ordinary application traffic to endpoint — into the same state
// machine the active probes drive, so a chatty endpoint needs no probe
// traffic to stay fresh. Unwatched endpoints are ignored.
func (d *Detector) Observe(endpoint string, rtt time.Duration, err error) {
	d.mu.Lock()
	e := d.eps[endpoint]
	d.mu.Unlock()
	if e == nil {
		return
	}
	d.observe(e, err == nil, rtt)
}

// loop is one endpoint's probe goroutine: probe, judge against the
// adaptive timeout, sleep the interval, repeat.
func (d *Detector) loop(ctx context.Context, e *endpointState) {
	defer close(e.done)
	t := time.NewTimer(0)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		timeout := d.timeout(e)
		pctx, cancel := context.WithTimeout(ctx, timeout)
		start := time.Now()
		rtt, err := e.probe(pctx)
		cancel()
		if err == nil && rtt <= 0 {
			rtt = time.Since(start)
		}
		if ctx.Err() != nil {
			return // shutting down: the aborted probe is not a miss
		}
		d.observe(e, err == nil && rtt <= timeout, rtt)
		t.Reset(d.cfg.Interval)
	}
}

// timeout computes the endpoint's adaptive probe timeout from its RTT
// window.
func (d *Detector) timeout(e *endpointState) time.Duration {
	e.mu.Lock()
	mean := e.meanLocked()
	e.mu.Unlock()
	to := time.Duration(float64(mean) * d.cfg.RTTFactor)
	if to < d.cfg.MinTimeout {
		to = d.cfg.MinTimeout
	}
	return to
}

func (e *endpointState) meanLocked() time.Duration {
	if e.wn == 0 {
		return 0
	}
	return e.rttSum / time.Duration(e.wn)
}

func (e *endpointState) suspicionLocked(cfg Config) float64 {
	s := float64(e.misses) / float64(cfg.DeadAfter)
	if s > 1 {
		s = 1
	}
	return s
}

// observe runs the suspicion state machine for one sample and fires the
// transition callback (outside all locks) when the state changed.
func (d *Detector) observe(e *endpointState, ok bool, rtt time.Duration) {
	cfg := d.cfg
	e.mu.Lock()
	from := e.state
	if ok {
		old := e.window[e.wi]
		e.window[e.wi] = rtt
		e.wi = (e.wi + 1) % len(e.window)
		if e.wn < len(e.window) {
			e.wn++
		} else {
			e.rttSum -= old
		}
		e.rttSum += rtt
		e.lastRTT = rtt
		e.misses = 0
		e.state = Alive
	} else {
		e.misses++
		if e.misses >= cfg.DeadAfter {
			e.state = Dead
		} else if e.misses >= cfg.SuspectAfter {
			e.state = Suspect
		}
	}
	to := e.state
	suspicion := e.suspicionLocked(cfg)
	smoothed := e.meanLocked()
	e.mu.Unlock()

	e.ins.Probes.Inc()
	if !ok {
		e.ins.Misses.Inc()
	} else {
		e.ins.RTT.Observe(uint64(rtt))
	}
	e.ins.State.Set(int64(to))
	e.ins.Suspicion.Set(int64(suspicion * 1000))
	if to == from {
		return
	}
	e.ins.Transitions.Inc()
	if cb := cfg.OnTransition; cb != nil {
		cb(Transition{
			Endpoint:  e.name,
			From:      from,
			To:        to,
			Suspicion: suspicion,
			RTT:       smoothed,
			At:        time.Now(),
		})
	}
}
