// Package bufpool provides size-classed free lists of byte buffers shared
// by the wire layer and the transports, so one frame buffer can travel the
// whole hot path — encode, transport copy, receive, decode — and then be
// recycled instead of garbage-collected.
//
// Buffers flow between packages: a channel client encodes into a pooled
// buffer, the simulated network copies frames into pooled buffers, and the
// receiving channel end returns frames to the pool once decoding has
// copied every escaping payload out. Ownership is strict: after Put the
// caller must not touch the buffer again.
//
// The free lists are plain buffered channels rather than sync.Pool so that
// Get and Put are themselves allocation-free (boxing a []byte in an
// interface allocates, which would defeat the point on an allocs/op
// benchmark). Capacity per class is bounded, so the worst-case retained
// memory is a few megabytes; overflow buffers are simply dropped for the
// garbage collector.
package bufpool

// classes are the buffer capacities served, smallest first. Slot counts
// shrink as sizes grow to bound total retained memory (~8 MiB worst case).
var classes = []struct {
	size  int
	slots int
}{
	{256, 256},
	{1 << 10, 128},
	{4 << 10, 64},
	{16 << 10, 32},
	{64 << 10, 16},
	{256 << 10, 8},
	{1 << 20, 4},
}

var lists = func() []chan []byte {
	ls := make([]chan []byte, len(classes))
	for i, c := range classes {
		ls[i] = make(chan []byte, c.slots)
	}
	return ls
}()

// Get returns a zero-length buffer with capacity at least size, reusing a
// pooled buffer when one is available. Buffers larger than the biggest
// class are allocated directly.
func Get(size int) []byte {
	for i, c := range classes {
		if c.size >= size {
			select {
			case b := <-lists[i]:
				return b[:0]
			default:
				return make([]byte, 0, c.size)
			}
		}
	}
	return make([]byte, 0, size)
}

// Put recycles a buffer for a later Get. Buffers smaller than the smallest
// class or larger than the biggest are dropped, as are buffers arriving
// when the class is full. Put(nil) is a no-op. The caller must not use b
// after Put returns.
func Put(b []byte) {
	c := cap(b)
	if c < classes[0].size {
		return
	}
	// Find the largest class whose size fits within cap(b), so a Get for
	// that class is guaranteed the capacity it asked for.
	for i := len(classes) - 1; i >= 0; i-- {
		if classes[i].size <= c {
			select {
			case lists[i] <- b[:0]:
			default:
			}
			return
		}
	}
}
