package bufpool

import (
	"sync"
	"testing"
)

func TestGetCapacity(t *testing.T) {
	for _, size := range []int{0, 1, 255, 256, 257, 4 << 10, 1 << 20, 2 << 20} {
		b := Get(size)
		if len(b) != 0 {
			t.Fatalf("Get(%d) len = %d, want 0", size, len(b))
		}
		if cap(b) < size {
			t.Fatalf("Get(%d) cap = %d, want >= %d", size, cap(b), size)
		}
	}
}

func TestPutGetReuse(t *testing.T) {
	// Drain the class first so this test observes its own buffer.
	for {
		select {
		case <-lists[1]:
			continue
		default:
		}
		break
	}
	b := make([]byte, 0, 1<<10)
	Put(b)
	got := Get(1 << 10)
	if cap(got) < 1<<10 {
		t.Fatalf("reused cap = %d, want >= %d", cap(got), 1<<10)
	}
}

func TestPutRejectsTiny(t *testing.T) {
	Put(nil)
	Put(make([]byte, 0, 16)) // below smallest class: dropped, must not panic
}

func TestPutClassFitsGet(t *testing.T) {
	// A buffer put back must only satisfy Gets it has capacity for.
	Put(make([]byte, 0, 300)) // lands in the 256 class
	b := Get(256)
	if cap(b) < 256 {
		t.Fatalf("cap = %d, want >= 256", cap(b))
	}
}

func TestConcurrentChurn(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b := Get(512)
				b = append(b, make([]byte, 100)...)
				Put(b)
			}
		}()
	}
	wg.Wait()
}
