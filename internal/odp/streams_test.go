package odp

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/types"
	"repro/internal/values"
)

func telemetryType() *types.Interface {
	return types.StreamInterface("Telemetry",
		types.FlowOf("readings", types.Producer,
			values.TRecord("Reading", values.FT("sensor", values.TInt()), values.FT("value", values.TInt()))))
}

func TestSubscribeAndOpenStream(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	s.EnableManagement()
	if _, err := s.CreateNode("hub"); err != nil {
		t.Fatal(err)
	}
	cons, ref, err := s.Subscribe("hub", telemetryType(), stream.ConsumerConfig{Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	p, b, err := s.OpenStream(ctx, "sensor-1", ref, "readings", core.Contract{}, stream.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const total = 200
	go func() {
		for i := 0; i < total; i++ {
			v := values.Record(
				values.F("sensor", values.Int(1)),
				values.F("value", values.Int(int64(i))))
			if err := p.Send(ctx, v); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		if err := p.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	in, err := cons.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		v, err := in.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		f, _ := v.FieldByName("value")
		if got, _ := f.AsInt(); got != int64(i) {
			t.Fatalf("recv %d: got %d", i, got)
		}
	}
	if _, err := in.Recv(ctx); err != io.EOF {
		t.Fatalf("after close: %v", err)
	}
	if st := in.Stats(); st.SeqGaps != 0 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// The management domain saw the stream: producer credit gauge exists.
	if s.Mgmt() == nil {
		t.Fatal("management disabled")
	}

	// Streaming a flow the type does not declare is caught before any
	// wire traffic, by the causality check.
	if _, _, err := s.OpenStream(ctx, "sensor-1", ref, "nope", core.Contract{}, stream.ProducerConfig{}); !errors.Is(err, types.ErrBadInterface) {
		t.Fatalf("bad flow: %v", err)
	}
}

func TestSubscribeRejectsNonStream(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	if _, err := s.CreateNode("hub"); err != nil {
		t.Fatal(err)
	}
	op := types.OpInterface("Ops")
	if _, _, err := s.Subscribe("hub", op, stream.ConsumerConfig{}); !errors.Is(err, ErrNotStream) {
		t.Fatalf("non-stream: %v", err)
	}
	if _, _, err := s.Subscribe("nope", telemetryType(), stream.ConsumerConfig{}); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("missing node: %v", err)
	}
}
