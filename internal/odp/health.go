package odp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/coordination"
	"repro/internal/health"
	"repro/internal/naming"
)

// This file wires the self-healing layer into the facade. The failure
// detector (sensing) and the recovery controller (acting) are decoupled
// through the system event bus: EnableHealth publishes every liveness
// transition on TopicLiveness, EnableRecovery subscribes there. The
// tutorial's §9 failure transparency is a prescription, not a default —
// this is the machinery a system that prescribes it runs.

// TopicLiveness carries liveness transitions from the failure detector:
// records minted by health.Transition.ToValue, decoded with
// health.TransitionFromValue. Like the other control-plane topics it
// spreads across shards once ShardBus is called.
const TopicLiveness = health.EventTopic

// EnableHealth starts the system failure detector. Transitions are
// published on TopicLiveness (in addition to any OnTransition already in
// cfg), and — when management is enabled — each watched endpoint reports
// under health.<endpoint>.* gauges, which is what odpstat's Health view
// renders. Idempotent; returns the detector. Watch endpoints with
// WatchNode (transport-level dial probes) or Detector().Watch for custom
// probes through the full channel stack.
func (s *System) EnableHealth(cfg health.Config) *health.Detector {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.health != nil {
		return s.health
	}
	if cfg.Instruments == nil && s.mgmt != nil {
		cfg.Instruments = s.mgmt.Health
	}
	user := cfg.OnTransition
	cfg.OnTransition = func(t health.Transition) {
		s.bus().Publish(TopicLiveness, t.ToValue())
		if user != nil {
			user(t)
		}
	}
	s.health = health.New(cfg)
	return s.health
}

// Detector returns the system failure detector, nil when disabled.
func (s *System) Detector() *health.Detector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// WatchNode puts a node under the failure detector with a transport-level
// dial probe: a crashed node fails the probe immediately, a partitioned
// one hangs it into the adaptive timeout. The probe dials from the
// synthetic host "healthd", so chaos scripts can partition the monitor
// itself. For round-trip-sensitive probing through the full channel
// stack, register a ping interface and use Detector().Watch directly.
func (s *System) WatchNode(name string) error {
	s.mu.Lock()
	d := s.health
	s.mu.Unlock()
	if d == nil {
		return fmt.Errorf("odp: EnableHealth first")
	}
	ep := naming.Endpoint("sim://" + name)
	tr := s.Net.From("healthd")
	return d.Watch(name, func(ctx context.Context) (time.Duration, error) {
		start := time.Now()
		conn, err := tr.Dial(ctx, ep)
		if err != nil {
			return 0, err
		}
		conn.Close()
		return time.Since(start), nil
	})
}

// EnableRecovery starts the recovery controller and subscribes it to
// TopicLiveness behind a bounded queue, so a burst of transitions never
// stalls the bus. Plans (per endpoint or fallback) are installed by the
// caller on the returned controller; with no Breakers in cfg the
// system's breaker config (EnableBreakers) does not apply — recovery
// gating is a separate policy decision from invocation gating.
// Idempotent; returns the controller.
func (s *System) EnableRecovery(cfg health.ControllerConfig) *health.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovery != nil {
		return s.recovery
	}
	ctl := health.NewController(cfg)
	s.recovery = ctl
	s.recoveryCancel = s.Bus.SubscribeQueued(TopicLiveness, nil, 256, func(ev coordination.Event) {
		t, err := health.TransitionFromValue(ev.Payload)
		if err != nil {
			return
		}
		ctl.Handle(t)
	})
	return s.recovery
}

// Recovery returns the recovery controller, nil when disabled.
func (s *System) Recovery() *health.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}
