package odp

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/leakcheck"
)

// TestHealthDetectsAndRecovers is the facade-level loop: a watched node
// crashes, the detector's transitions flow over TopicLiveness, the
// recovery controller runs the node's plan, the node "restarts"
// (re-listens), and the plan's heal hook runs — all through the bus, no
// direct detector→controller coupling.
func TestHealthDetectsAndRecovers(t *testing.T) {
	defer leakcheck.Guard(t, 2, 5*time.Second)()
	s := NewSystem(404)
	defer s.Close()
	m := s.EnableManagement()

	if _, err := s.CreateNode("n1"); err != nil {
		t.Fatal(err)
	}

	var deaths, heals atomic.Int64
	ctl := s.EnableRecovery(health.ControllerConfig{})
	ctl.SetPlan("n1", health.Plan{
		OnDead:  func(context.Context, string) error { deaths.Add(1); return nil },
		OnAlive: func(context.Context, string) error { heals.Add(1); return nil },
	})

	if err := s.WatchNode("n1"); err == nil {
		t.Fatal("WatchNode before EnableHealth must fail")
	}
	s.EnableHealth(health.Config{
		Interval:     time.Millisecond,
		MinTimeout:   5 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    4,
	})
	if s.Detector() == nil || s.Recovery() == nil {
		t.Fatal("accessors returned nil after enablement")
	}
	if err := s.WatchNode("n1"); err != nil {
		t.Fatal(err)
	}

	waitOdp(t, "warm", func() bool {
		st, _, ok := s.Detector().State("n1")
		return ok && st == health.Alive
	})

	// Crash at the transport level: the listener dies, dial probes fail.
	s.Net.CrashHost("n1")
	waitOdp(t, "failover plan ran", func() bool { return deaths.Load() == 1 })
	if g := m.Registry.Gauge("health.n1.state"); g.Load() != int64(health.Dead) {
		t.Fatalf("health.n1.state gauge = %d, want %d", g.Load(), int64(health.Dead))
	}

	// "Restart" the process: listen again; probes succeed, plan heals.
	if _, err := s.Net.Listen("sim://n1"); err != nil {
		t.Fatal(err)
	}
	waitOdp(t, "heal plan ran", func() bool { return heals.Load() == 1 })
	waitOdp(t, "alive gauge", func() bool {
		return m.Registry.Gauge("health.n1.state").Load() == int64(health.Alive)
	})
	if st := ctl.Stats(); st.Failures != 0 {
		t.Fatalf("controller failures = %d, want 0", st.Failures)
	}

	// Idempotent enablement returns the same objects.
	if s.EnableHealth(health.Config{}) != s.Detector() {
		t.Fatal("EnableHealth not idempotent")
	}
	if s.EnableRecovery(health.ControllerConfig{}) != ctl {
		t.Fatal("EnableRecovery not idempotent")
	}
}

func waitOdp(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
