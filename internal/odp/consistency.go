package odp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engineering"
	"repro/internal/enterprise"
	"repro/internal/information"
	"repro/internal/technology"
)

// Severity grades a consistency finding.
type Severity int

// Finding severities.
const (
	Warning Severity = iota + 1
	Error
)

// String returns the severity name.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one cross-viewpoint inconsistency.
type Finding struct {
	Severity  Severity
	Viewpoint string // where the problem manifests
	Detail    string
}

// Correspondence links the viewpoints for one action, following Figure 1:
// an enterprise-governed action is realised by an operation of a
// computational interface, whose state change is specified by an
// information dynamic schema.
type Correspondence struct {
	Action    string // enterprise action name ("" if purely computational)
	Interface string // computational interface type name
	Operation string // operation on that interface
	Schema    string // information dynamic schema ("" if stateless)
}

// Spec gathers an application's five viewpoint specifications plus the
// declared correspondences between them.
type Spec struct {
	Community  *enterprise.Community
	Model      *information.Model
	Templates  []core.ObjectTemplate
	Technology *technology.Specification
	Links      []Correspondence
}

// CheckConsistency verifies the Figure 1 correspondences. The behaviours
// registry, when given, additionally checks that every template is
// deployable (its behaviour exists). An empty result means the five
// specifications agree.
func CheckConsistency(spec Spec, behaviors *engineering.BehaviorRegistry) []Finding {
	var out []Finding
	report := func(sev Severity, vp, format string, args ...any) {
		out = append(out, Finding{Severity: sev, Viewpoint: vp, Detail: fmt.Sprintf(format, args...)})
	}

	// Computational: templates must validate and be deployable.
	ifaceOps := map[string]map[string]bool{} // interface type -> operations
	for i := range spec.Templates {
		t := &spec.Templates[i]
		if err := t.Validate(); err != nil {
			report(Error, "computational", "template %q invalid: %v", t.Name, err)
			continue
		}
		if behaviors != nil && !behaviors.Known(t.Behavior) {
			report(Error, "engineering", "template %q needs behaviour %q, not in registry", t.Name, t.Behavior)
		}
		for _, decl := range t.Interfaces {
			ops, ok := ifaceOps[decl.Type.Name]
			if !ok {
				ops = map[string]bool{}
				ifaceOps[decl.Type.Name] = ops
			}
			for _, op := range decl.Type.Operations {
				ops[op.Name] = true
			}
		}
	}

	// Correspondences: each must land on a real interface operation, a
	// governed enterprise action and a declared dynamic schema.
	governed := map[string]bool{}
	if spec.Community != nil {
		for _, p := range spec.Community.Policies() {
			governed[p.Action] = true
		}
		for _, a := range spec.Community.Performatives() {
			governed[a] = true
		}
	}
	realised := map[string]bool{} // enterprise actions realised computationally
	for _, l := range spec.Links {
		ops, ok := ifaceOps[l.Interface]
		if !ok {
			report(Error, "computational", "correspondence names unknown interface %q", l.Interface)
			continue
		}
		if !ops[l.Operation] {
			report(Error, "computational", "interface %q has no operation %q", l.Interface, l.Operation)
			continue
		}
		if l.Action != "" {
			if spec.Community == nil {
				report(Warning, "enterprise", "correspondence for %q but no community given", l.Action)
			} else if !governed[l.Action] {
				report(Error, "enterprise", "action %q is not governed by any policy or performative", l.Action)
			} else {
				realised[l.Action] = true
			}
		}
		if l.Schema != "" {
			if spec.Model == nil {
				report(Warning, "information", "correspondence for schema %q but no model given", l.Schema)
			} else if !spec.Model.HasDynamic(l.Schema) {
				report(Error, "information", "dynamic schema %q is not declared", l.Schema)
			}
		}
	}

	// Enterprise completeness: a governed action with no computational
	// realisation is a specification gap (the policy would be vacuous).
	if spec.Community != nil {
		for action := range governed {
			if !realised[action] {
				report(Warning, "enterprise", "governed action %q has no computational realisation", action)
			}
		}
	}

	// Technology: the chosen technology must conform.
	if spec.Technology != nil {
		if err := spec.Technology.MustConform(); err != nil {
			report(Error, "technology", "%v", err)
		}
	}

	return out
}

// Errors filters the findings to hard errors.
func Errors(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Severity == Error {
			out = append(out, f)
		}
	}
	return out
}
