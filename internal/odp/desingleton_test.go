package odp

import (
	"context"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/transactions"
	"repro/internal/typerepo"
	"repro/internal/values"
)

// The de-singletoned control plane keeps the facade's call-site
// semantics: a sharded bus carries deployment announcements, the
// relocator bridge, and the relocation cache; a replicated type
// repository serves the bind path.
func TestShardedBusAndReplicatedTypesServeSystem(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	if _, err := s.ShardBus(0); err == nil {
		t.Fatal("ShardBus(0) accepted")
	}
	sb, err := s.ShardBus(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bus != coordination.EventBus(sb) {
		t.Fatal("System.Bus is not the sharded front-end")
	}
	rep := s.ReplicateTypes(2)
	if s.ReplicateTypes(2) != rep {
		t.Fatal("ReplicateTypes is not idempotent")
	}
	if _, ok := s.Types.(*typerepo.Replicated); !ok {
		t.Fatal("System.Types is not the replicated front-end")
	}
	if _, err := s.ShardTrader(4); err != nil {
		t.Fatal(err)
	}
	s.EnableRelocationCache(64)

	var deployed, relocated int
	cancelDep := s.Bus.Subscribe(TopicDeployed, nil, func(coordination.Event) { deployed++ })
	cancelRel := s.Bus.Subscribe(TopicRelocated, nil, func(coordination.Event) { relocated++ })
	defer cancelDep()
	defer cancelRel()

	node, err := s.CreateNode("alpha")
	if err != nil {
		t.Fatal(err)
	}
	coord := transactions.NewCoordinator()
	bank.RegisterBehavior(node.Behaviors(), coord, transactions.NewStore("b", nil))
	if _, err := s.Deploy(node, bank.Template("branch-x"), values.Record(
		values.F("city", values.Str("brisbane")),
	)); err != nil {
		t.Fatal(err)
	}
	if deployed != 1 {
		t.Fatalf("deployment events on sharded bus = %d, want 1", deployed)
	}
	if relocated == 0 {
		t.Fatal("no relocation events bridged onto the bus")
	}
	// Replicated reads actually served the deploy/bind path.
	contract := core.Contract{Require: core.TransparencySet(core.Access | core.Location)}
	b, err := s.ImportAndBind("client", "BankTeller", "city == 'brisbane'", contract)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, _, err := b.Invoke(context.Background(), "Balance", []values.Value{values.Str("g"), values.Str("x")}); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if st := rep.Stats(); st.Reads == 0 {
		t.Fatalf("no reads served by the replicated repository: %+v", st)
	}
	if pub, _ := s.Bus.Stats(); pub == 0 {
		t.Fatal("sharded bus saw no publishes")
	}
}

// Breaker transitions surface on the event bus under TopicBreaker.
func TestBreakerTransitionsPublishOnBus(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	s.EnableBreakers(policy.BreakerConfig{
		ConsecutiveFailures: 2,
		OpenFor:             10 * time.Millisecond,
	})
	var events []string
	cancel := s.Bus.Subscribe(TopicBreaker, nil, func(ev coordination.Event) {
		stV, _ := ev.Payload.FieldByName("state")
		st, _ := stV.AsString()
		events = append(events, st)
	})
	defer cancel()

	sm := s.SessionsFor("client")
	bs := sm.Breakers()
	if bs == nil {
		t.Fatal("no breaker set attached")
	}
	br := bs.For("sim://dead")
	for i := 0; i < 2; i++ {
		if ok, _ := br.Allow(); !ok {
			t.Fatal("breaker refused while closed")
		}
		br.Record(false)
	}
	if len(events) != 1 || events[0] != "open" {
		t.Fatalf("breaker events = %v, want [open]", events)
	}
	// After the cooling-off period, a successful probe re-closes — and
	// that transition is published too.
	time.Sleep(15 * time.Millisecond)
	ok, probe := br.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after cool-off = (%v, %v), want probe", ok, probe)
	}
	br.Record(true)
	if len(events) != 2 || events[1] != "closed" {
		t.Fatalf("breaker events = %v, want [open closed]", events)
	}
}
