// Package odp is the facade that assembles an ODP system from the
// viewpoint packages: it owns the infrastructure objects (type repository,
// relocator, trader, event bus) of Section 8 of the tutorial, creates
// engineering nodes, deploys computational object templates onto them and
// binds clients through the transparency configurator.
//
// It also implements the Figure 1 correspondence: CheckConsistency
// verifies that an application's enterprise, information, computational,
// engineering and technology specifications agree with one another —
// every governed action is realised by an operation, every dynamic schema
// has a computational counterpart, every template can actually be
// instantiated, and the chosen technology conforms.
package odp

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/channel"
	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/engineering"
	"repro/internal/health"
	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/relocator"
	"repro/internal/trader"
	"repro/internal/transparency"
	"repro/internal/typerepo"
	"repro/internal/values"
)

// Facade error sentinels.
var (
	ErrNodeExists = errors.New("odp: node already exists")
	ErrNoSuchNode = errors.New("odp: no such node")
	ErrNoOffers   = errors.New("odp: no matching offers")
)

// Bus topics the facade publishes on. Together with mgmt.ViolationTopic
// (QoS violations, published by monitors handed the system bus) these
// are the control-plane event streams a sharded bus spreads across
// shards.
const (
	// TopicDeployed announces each successful Deploy.
	TopicDeployed = "odp.deployed"
	// TopicRelocated carries every relocator registration, move and
	// removal, bridged from the relocator's callback interface: a record
	// {ref, removed}. Relocation watchers (the client-side cache among
	// them) subscribe here instead of holding a private callback.
	TopicRelocated = "odp.relocated"
	// TopicBreaker carries circuit-breaker transitions: a record
	// {host, endpoint, state} published when a breaker trips open or
	// re-closes.
	TopicBreaker = "policy.breaker"
)

// System is one ODP system: a simulated network, the shared
// infrastructure objects, and the nodes deployed into it.
type System struct {
	Net       *netsim.Network
	Relocator *relocator.Relocator
	Types     typerepo.Repository
	Trader    *trader.Trader
	// Bus is the system event bus: a singleton coordination.Bus by
	// default, or a topic-sharded front-end once ShardBus has been
	// called. Reconfigure (ShardBus) during setup, before concurrent
	// publishers exist; holders should re-read the field (or use the
	// accessor on System) rather than caching it across a ShardBus call.
	Bus coordination.EventBus

	mu    sync.Mutex
	nodes map[string]*engineering.Node
	// sessions caches one SessionManager per client host, so every
	// binding a host opens — across Env/Bind/ImportAndBind calls and
	// replica groups — multiplexes over one transport session per peer
	// node instead of one connection per binding.
	sessions map[string]*channel.SessionManager
	mgmt     *mgmt.Management
	// breakerCfg, when set by EnableBreakers, mints one shared BreakerSet
	// per client host; defaultPol, when set by SetDefaultPolicy, is the
	// retry policy Env hands to every binding configured afterwards.
	breakerCfg *policy.BreakerConfig
	defaultPol *policy.RetryPolicy
	// directory, when set by ShardTrader, replaces the single Trader as
	// the trading function Deploy and ImportAndBind use (nil = s.Trader).
	directory trader.Shard
	// cache, when set by EnableRelocationCache, is the bounded
	// epoch-fenced client-side relocation cache Env hands to bindings as
	// their Locator; cacheCancel unsubscribes it from the bus.
	cache       *relocator.Cache
	cacheCancel func()
	// bridgeCancel unsubscribes the relocator -> bus event bridge.
	bridgeCancel func()
	// health, when set by EnableHealth, is the failure detector whose
	// transitions are published on TopicLiveness; recovery, when set by
	// EnableRecovery, is the controller acting on them (recoveryCancel
	// unsubscribes it from the bus).
	health         *health.Detector
	recovery       *health.Controller
	recoveryCancel func()
}

// bus returns the current event bus under the lock, so publishers racing
// a ShardBus reconfiguration read a coherent value.
func (s *System) bus() coordination.EventBus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Bus
}

// EnableManagement creates the system's management domain and wires it
// into the shared infrastructure: network frame counters and the trader
// immediately, server-dispatch instruments on every node created
// afterwards, and client instruments on every binding configured through
// Env/Bind/ImportAndBind. Idempotent; returns the domain. Enable before
// creating nodes to observe their server ends.
func (s *System) EnableManagement() *mgmt.Management {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mgmt == nil {
		s.mgmt = mgmt.New()
		s.Net.Instrument(s.mgmt.Net("sim"))
		s.Trader.Instrument(s.mgmt.TraderInstr("trader"))
		switch b := s.Bus.(type) {
		case *coordination.ShardedBus:
			b.Instrument(s.mgmt)
		case *coordination.Bus:
			b.Instrument(s.mgmt.Bus("bus"))
		}
		if st, ok := s.directory.(*trader.ShardedTrader); ok {
			s.instrumentShardedLocked(st)
		}
		for host, sm := range s.sessions {
			sm.Instrument(s.mgmt.Sessions(host))
			if bs := sm.Breakers(); bs != nil {
				bs.Instrument(s.mgmt.Policy(host))
			}
		}
	}
	return s.mgmt
}

// EnableBreakers attaches one shared circuit-breaker set per client
// host's session manager — hosts already known and any created later —
// so every binding a host holds to a dead endpoint fails fast together,
// and the single half-open probe that re-closes the breaker is shared
// too. With management enabled, each set reports under policy.<host>.*
// (breaker.open, breaker.open_now, breaker.rejected, retry.backoff_ns),
// which is what lets odpstat show breaker state live.
func (s *System) EnableBreakers(cfg policy.BreakerConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.breakerCfg = &cfg
	for host, sm := range s.sessions {
		s.attachBreakersLocked(host, sm)
	}
}

func (s *System) attachBreakersLocked(host string, sm *channel.SessionManager) {
	if s.breakerCfg == nil || sm.Breakers() != nil {
		return
	}
	cfg := *s.breakerCfg
	if cfg.OnTransition == nil {
		// Publish breaker transitions on the system bus, keyed by the
		// client host whose set tripped. The hook runs outside breaker
		// locks; slow consumers should subscribe with a bounded queue.
		cfg.OnTransition = func(key string, to policy.State) {
			s.bus().Publish(TopicBreaker, values.Record(
				values.F("host", values.Str(host)),
				values.F("endpoint", values.Str(key)),
				values.F("state", values.Str(to.String())),
			))
		}
	}
	bs := policy.NewBreakerSet(cfg)
	bs.Instrument(s.mgmt.Policy(host))
	sm.SetBreakers(bs)
}

// Directory returns the trading function clients of this system go
// through: the single Trader by default, or the sharded front-end once
// ShardTrader has been called.
func (s *System) Directory() trader.Shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.directory != nil {
		return s.directory
	}
	return s.Trader
}

// ShardTrader partitions the system's trading function: shards local
// trader objects are created ("shard0".."shardN-1"), joined to a
// consistent-hash ring keyed by service type, and fronted by a
// ShardedTrader that Deploy and ImportAndBind use from then on. Offers
// already exported to the legacy single Trader stay where they are (call
// this before deploying); new exports route to their owning shard. The
// front-end is returned so callers can rebalance (AddShard/RemoveShard)
// or add remote shards.
func (s *System) ShardTrader(shards int) (*trader.ShardedTrader, error) {
	if shards < 1 {
		return nil, fmt.Errorf("odp: ShardTrader needs >= 1 shards, got %d", shards)
	}
	st := trader.NewSharded("trader", s.Types, 0)
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("shard%d", i)
		if err := st.AddShard(name, trader.New(name, s.Types)); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.directory = st
	if s.mgmt != nil {
		s.instrumentShardedLocked(st)
	}
	s.mu.Unlock()
	return st, nil
}

func (s *System) instrumentShardedLocked(st *trader.ShardedTrader) {
	m := s.mgmt
	st.Instrument(m.TraderShards("trader"))
	st.InstrumentShards(func(shard string) *mgmt.ShardLegInstruments {
		return m.TraderShardLeg("trader", shard)
	})
}

// EnableRelocationCache puts a bounded, epoch-fenced location cache in
// front of the system relocator for every binding configured through
// Env/Bind/ImportAndBind afterwards: the hot re-bind path pays a map
// read instead of a relocator lookup while its entry is fresh. The cache
// subscribes to the relocator's events, so co-resident moves and
// removals fence or invalidate entries immediately; bindings invalidate
// entries on staleness evidence through channel.LocationInvalidator.
// Idempotent; returns the cache.
func (s *System) EnableRelocationCache(capacity int) *relocator.Cache {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		cache := relocator.NewCache(s.Relocator, capacity)
		s.cache = cache
		// The cache is a relocation watcher: it observes the bus bridge
		// (TopicRelocated) rather than holding a private relocator
		// callback, so it follows the bus when the bus is sharded. Bus
		// delivery for inline subscribers is synchronous and per-topic
		// ordered — the same guarantee the direct subscription gave, which
		// the cache's epoch fencing relies on.
		s.cacheCancel = s.Bus.Subscribe(TopicRelocated, nil, func(ev coordination.Event) {
			rev, err := relocationFromValue(ev.Payload)
			if err != nil {
				return
			}
			cache.Observe(rev)
		})
	}
	return s.cache
}

// RelocationCache returns the client-side relocation cache, nil when
// disabled.
func (s *System) RelocationCache() *relocator.Cache {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache
}

// SetDefaultPolicy installs the retry policy that Env (and so Bind and
// ImportAndBind) hands to every binding configured afterwards whose
// contract asks for failure transparency. nil restores the legacy
// fixed-retry semantics. Existing bindings are unaffected.
func (s *System) SetDefaultPolicy(p *policy.RetryPolicy) {
	s.mu.Lock()
	s.defaultPol = p
	s.mu.Unlock()
}

// Mgmt returns the system's management domain, nil when disabled.
func (s *System) Mgmt() *mgmt.Management {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgmt
}

// NewSystem creates a system over a seeded simulated network.
func NewSystem(seed int64) *System {
	repo := typerepo.New()
	s := &System{
		Net:       netsim.New(seed),
		Relocator: relocator.New(),
		Types:     repo,
		Trader:    trader.New("trader", repo),
		Bus:       coordination.NewBus(),
		nodes:     make(map[string]*engineering.Node),
		sessions:  make(map[string]*channel.SessionManager),
	}
	// Bridge the relocator's callback interface onto the event bus, so
	// every relocation watcher in the system shares one subscription
	// surface (and follows the bus when it is sharded).
	s.bridgeCancel = s.Relocator.Subscribe(func(ev relocator.Event) {
		s.bus().Publish(TopicRelocated, relocationToValue(ev))
	})
	return s
}

// relocationToValue encodes a relocator event for the bus.
func relocationToValue(ev relocator.Event) values.Value {
	return values.Record(
		values.F("ref", ev.Ref.ToValue()),
		values.F("removed", values.Bool(ev.Removed)),
	)
}

// relocationFromValue decodes an event published on TopicRelocated.
func relocationFromValue(v values.Value) (relocator.Event, error) {
	var ev relocator.Event
	refV, ok := v.FieldByName("ref")
	if !ok {
		return ev, fmt.Errorf("odp: relocation event missing ref")
	}
	ref, err := naming.RefFromValue(refV)
	if err != nil {
		return ev, err
	}
	ev.Ref = ref
	if remV, ok := v.FieldByName("removed"); ok {
		ev.Removed, _ = remV.AsBool()
	}
	return ev, nil
}

// ShardBus replaces the system event bus with a topic-sharded front-end
// of the given shard count and returns it. Call during setup, before
// subscribers attach: subscriptions made on the previous bus are not
// migrated. The relocator bridge and Deploy announcements follow the
// new bus automatically, as do breaker transition events.
func (s *System) ShardBus(shards int) (*coordination.ShardedBus, error) {
	if shards < 1 {
		return nil, fmt.Errorf("odp: ShardBus needs >= 1 shards, got %d", shards)
	}
	sb := coordination.NewShardedBus(shards)
	s.mu.Lock()
	s.Bus = sb
	if s.mgmt != nil {
		sb.Instrument(s.mgmt)
	}
	s.mu.Unlock()
	return sb, nil
}

// ReplicateTypes puts a read-mostly replication front-end with n
// replicas in front of the type repository: lookups and substitutability
// checks made through s.Types are served from gen-fenced local replicas,
// registrations keep funnelling to the former repository (now the
// authority). Call before ShardTrader and Deploy so traders built
// afterwards read through the front-end. Idempotent; returns the
// front-end.
func (s *System) ReplicateTypes(replicas int) *typerepo.Replicated {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rep, ok := s.Types.(*typerepo.Replicated); ok {
		return rep
	}
	rep := typerepo.NewReplicated(s.Types, replicas)
	s.Types = rep
	return rep
}

// SessionsFor returns the client host's shared session manager, creating
// it on first use. All of the host's bindings multiplex over it: one
// connection, read loop and heartbeat per peer node.
func (s *System) SessionsFor(clientHost string) *channel.SessionManager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessionsForLocked(clientHost)
}

func (s *System) sessionsForLocked(clientHost string) *channel.SessionManager {
	sm, ok := s.sessions[clientHost]
	if !ok {
		sm = channel.NewSessionManager(s.Net.From(clientHost))
		if s.mgmt != nil {
			sm.Instrument(s.mgmt.Sessions(clientHost))
		}
		s.attachBreakersLocked(clientHost, sm)
		s.sessions[clientHost] = sm
	}
	return sm
}

// CreateNode starts an engineering node on the simulated network.
func (s *System) CreateNode(name string) (*engineering.Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.nodes[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrNodeExists, name)
	}
	n, err := engineering.NewNode(engineering.NodeConfig{
		ID:        naming.NodeID(name),
		Endpoint:  naming.Endpoint("sim://" + name),
		Transport: s.Net.From(name),
		Locations: s.Relocator,
		Server: channel.ServerConfig{
			ReplayGuard: true,
			Instruments: s.mgmt.ChannelServer(name),
		},
	})
	if err != nil {
		return nil, err
	}
	s.nodes[name] = n
	return n, nil
}

// Node returns a previously created node.
func (s *System) Node(name string) (*engineering.Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, name)
	}
	return n, nil
}

// Nodes lists node names, sorted.
func (s *System) Nodes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.nodes))
	for n := range s.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Close shuts every node down.
func (s *System) Close() error {
	s.mu.Lock()
	nodes := make([]*engineering.Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		nodes = append(nodes, n)
	}
	s.nodes = map[string]*engineering.Node{}
	managers := make([]*channel.SessionManager, 0, len(s.sessions))
	for _, sm := range s.sessions {
		managers = append(managers, sm)
	}
	s.sessions = map[string]*channel.SessionManager{}
	cancel := s.cacheCancel
	s.cacheCancel = nil
	bridge := s.bridgeCancel
	s.bridgeCancel = nil
	det, ctl, recCancel := s.health, s.recovery, s.recoveryCancel
	s.health, s.recovery, s.recoveryCancel = nil, nil, nil
	s.mu.Unlock()
	// Sensing stops first (no new transitions), then the acting half.
	if det != nil {
		det.Close()
	}
	if recCancel != nil {
		recCancel()
	}
	if ctl != nil {
		ctl.Close()
	}
	if cancel != nil {
		cancel()
	}
	if bridge != nil {
		bridge()
	}
	var first error
	for _, sm := range managers {
		_ = sm.Close()
	}
	for _, n := range nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Deployment records a deployed computational object: its engineering
// realisation plus the references and trader offers of its interfaces.
type Deployment struct {
	Cluster *engineering.Cluster
	Object  *engineering.Object
	Refs    map[string]naming.InterfaceRef // interface type name -> ref
	Offers  map[string]string              // interface type name -> trader offer id
}

// Ref returns the deployed reference for an interface type.
func (d *Deployment) Ref(typeName string) (naming.InterfaceRef, bool) {
	ref, ok := d.Refs[typeName]
	return ref, ok
}

// Deploy instantiates a computational object template on a node: it
// validates the template, registers its interface types with the type
// repository, creates a capsule and a cluster (configured from the
// template's contracts — persistence transparency turns on
// auto-reactivation), creates the object, adds its interfaces and exports
// each to the trader with the given service properties.
func (s *System) Deploy(node *engineering.Node, tmpl core.ObjectTemplate, props values.Value) (*Deployment, error) {
	if err := tmpl.Validate(); err != nil {
		return nil, err
	}
	for _, decl := range tmpl.Interfaces {
		if err := s.Types.RegisterInterface(decl.Type); err != nil {
			return nil, err
		}
	}
	// One interface with persistence in its contract makes the whole
	// cluster reactivatable (the cluster is the unit of deactivation).
	opts := engineering.ClusterOptions{}
	for _, decl := range tmpl.Interfaces {
		if transparency.ClusterOptions(decl.Contract).AutoReactivate {
			opts.AutoReactivate = true
		}
	}
	capsule, err := node.CreateCapsule()
	if err != nil {
		return nil, err
	}
	cluster, err := capsule.CreateCluster(opts)
	if err != nil {
		return nil, err
	}
	obj, err := cluster.CreateObject(tmpl.Behavior, tmpl.Arg)
	if err != nil {
		return nil, err
	}
	dep := &Deployment{
		Cluster: cluster,
		Object:  obj,
		Refs:    make(map[string]naming.InterfaceRef, len(tmpl.Interfaces)),
		Offers:  make(map[string]string, len(tmpl.Interfaces)),
	}
	for _, decl := range tmpl.Interfaces {
		ref, err := obj.AddInterface(decl.Type)
		if err != nil {
			return nil, err
		}
		dep.Refs[decl.Type.Name] = ref
		offerID, err := s.Directory().Export(decl.Type.Name, ref, props)
		if err != nil {
			return nil, err
		}
		dep.Offers[decl.Type.Name] = offerID
	}
	s.bus().Publish(TopicDeployed, values.Record(
		values.F("template", values.Str(tmpl.Name)),
		values.F("node", values.Str(string(node.ID()))),
	))
	return dep, nil
}

// Env builds the transparency environment for a client at the given
// simulated host.
func (s *System) Env(clientHost string) transparency.Env {
	s.mu.Lock()
	pol := s.defaultPol
	var loc channel.Locator = s.Relocator
	if s.cache != nil {
		loc = s.cache
	}
	s.mu.Unlock()
	return transparency.Env{
		Transport:   s.Net.From(clientHost),
		Sessions:    s.SessionsFor(clientHost),
		Locator:     loc,
		Instruments: s.Mgmt().ChannelClient(clientHost),
		Policy:      pol,
	}
}

// Bind creates a contract-configured binding to ref from clientHost.
func (s *System) Bind(clientHost string, ref naming.InterfaceRef, contract core.Contract) (*channel.Binding, error) {
	env := s.Env(clientHost)
	if it, err := s.Types.LookupInterface(ref.TypeName); err == nil {
		env.Type = it
	}
	return transparency.Bind(ref, contract, env)
}

// ImportAndBind discovers a service through the trader (type-checked
// substitutability, constraint over properties) and binds to the best
// offer under the contract — the canonical ODP client path:
// trade, then bind.
func (s *System) ImportAndBind(clientHost, serviceType, constraintSrc string, contract core.Contract) (*channel.Binding, error) {
	offers, err := s.Directory().Import(trader.ImportRequest{
		ServiceType: serviceType,
		Constraint:  constraintSrc,
		MaxMatches:  1,
		MaxHops:     2,
	})
	if err != nil {
		return nil, err
	}
	if len(offers) == 0 {
		return nil, fmt.Errorf("%w: %s with %q", ErrNoOffers, serviceType, constraintSrc)
	}
	return s.Bind(clientHost, offers[0].Ref, contract)
}
