package odp

import (
	"context"
	"fmt"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/naming"
	"repro/internal/stream"
	"repro/internal/types"
)

// This file is the facade over the streaming data plane (tutorial §5.1.1:
// stream interfaces stand beside operational ones in the computational
// model). A stream service type is written from the producing client's
// viewpoint — flows the client streams into the service are declared
// Producer, exactly as BindConfig.Type is the binding owner's view
// everywhere else — and Subscribe/OpenStream wire the two ends together
// with the causality check between them.

// ErrNotStream reports a streaming call against a non-stream interface.
var ErrNotStream = fmt.Errorf("odp: interface is not a stream interface")

// Subscribe installs a consumer end for a stream interface type on a
// node: the consumer is registered as a servant (with the node's location
// registry, so clients relocate to it like any interface), the type goes
// into the repository for clients to bind with, and inbound streams are
// taken from Consumer.Accept. The returned reference is what producers
// OpenStream against.
func (s *System) Subscribe(nodeName string, typ *types.Interface, cfg stream.ConsumerConfig) (*stream.Consumer, naming.InterfaceRef, error) {
	if typ == nil || typ.Kind != types.Stream {
		return nil, naming.InterfaceRef{}, fmt.Errorf("%w: %v", ErrNotStream, typ)
	}
	if err := typ.Validate(); err != nil {
		return nil, naming.InterfaceRef{}, err
	}
	node, err := s.Node(nodeName)
	if err != nil {
		return nil, naming.InterfaceRef{}, err
	}
	if err := s.Types.RegisterInterface(typ); err != nil {
		return nil, naming.InterfaceRef{}, err
	}
	if cfg.Instruments == nil {
		cfg.Instruments = s.Mgmt().Stream(nodeName + "." + typ.Name + ".consumer")
	}
	cons := stream.NewConsumer(cfg)
	ref, err := node.RegisterServant(typ, cons)
	if err != nil {
		return nil, naming.InterfaceRef{}, err
	}
	return cons, ref, nil
}

// OpenStream opens a producing stream on the named flow of a subscribed
// stream interface from a client host: the binding is configured through
// the usual transparency environment (shared sessions, relocation-aware
// locator), causality is checked against the repository type — the flow
// must be a Producer flow whose element type the consuming end accepts —
// and the returned producer pushes elements under the consumer's credit
// window. Close the producer first, then the binding.
func (s *System) OpenStream(ctx context.Context, clientHost string, ref naming.InterfaceRef, flow string, contract core.Contract, cfg stream.ProducerConfig) (*stream.Producer, *channel.Binding, error) {
	if it, err := s.Types.LookupInterface(ref.TypeName); err == nil {
		// The client's view is the registered type; the consuming end's is
		// its causal mirror. FlowCausality rejects absent flows, wrong
		// directions and element-type mismatches before any wire traffic.
		if err := types.FlowCausality(it, types.Complement(it), flow); err != nil {
			return nil, nil, err
		}
	}
	b, err := s.Bind(clientHost, ref, contract)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Instruments == nil {
		cfg.Instruments = s.Mgmt().Stream(clientHost + "." + flow + ".producer")
	}
	p, err := stream.Open(ctx, b, flow, cfg)
	if err != nil {
		b.Close()
		return nil, nil, err
	}
	return p, b, nil
}
