package odp

import (
	"context"
	"testing"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/trader"
	"repro/internal/transactions"
	"repro/internal/values"
)

func TestShardTraderServesDeployAndImport(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	st, err := s.ShardTrader(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards()) != 4 {
		t.Fatalf("shards = %v", st.Shards())
	}
	if s.Directory() != trader.Shard(st) {
		t.Fatal("Directory is not the sharded front-end")
	}

	node, err := s.CreateNode("alpha")
	if err != nil {
		t.Fatal(err)
	}
	coord := transactions.NewCoordinator()
	bank.RegisterBehavior(node.Behaviors(), coord, transactions.NewStore("b", nil))
	if _, err := s.Deploy(node, bank.Template("branch-cbd"), values.Record(
		values.F("city", values.Str("brisbane")),
	)); err != nil {
		t.Fatal(err)
	}
	// The legacy single trader holds nothing: exports routed to shards.
	if s.Trader.Len() != 0 {
		t.Fatalf("legacy trader holds %d offers", s.Trader.Len())
	}
	if st.ShardStats().Exports == 0 {
		t.Fatal("no exports reached the front-end")
	}

	contract := core.Contract{Require: core.TransparencySet(core.Access | core.Location)}
	b, err := s.ImportAndBind("client", "BankTeller", "city == 'brisbane'", contract)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	term, _, err := b.Invoke(context.Background(), "Balance", []values.Value{values.Str("ghost"), values.Str("x")})
	if err != nil {
		t.Fatalf("invoke through sharded directory: %v", err)
	}
	_ = term // any terminations is fine; the wire round-trip is the point

	if _, err := s.ShardTrader(0); err == nil {
		t.Fatal("ShardTrader(0) accepted")
	}
}

func TestRelocationCacheServesBindings(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	cache := s.EnableRelocationCache(64)
	if cache == nil || s.RelocationCache() != cache {
		t.Fatal("cache not installed")
	}
	if again := s.EnableRelocationCache(8); again != cache {
		t.Fatal("EnableRelocationCache not idempotent")
	}

	node, err := s.CreateNode("alpha")
	if err != nil {
		t.Fatal(err)
	}
	coord := transactions.NewCoordinator()
	bank.RegisterBehavior(node.Behaviors(), coord, transactions.NewStore("b", nil))
	dep, err := s.Deploy(node, bank.Template("branch-cbd"), values.Null())
	if err != nil {
		t.Fatal(err)
	}
	// Deployment registered locations; the subscription pre-warmed the
	// cache, so the binding's locator lookup is a hit.
	ref, _ := dep.Ref("BankManager")
	b, err := s.Bind("client", ref, core.Contract{Require: core.TransparencySet(core.Location | core.Relocation)})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if term, _, err := b.Invoke(context.Background(), "CreateAccount",
		[]values.Value{values.Str("alice")}); err != nil || term != "OK" {
		t.Fatalf("invoke = %q, %v", term, err)
	}
	stats := cache.Stats()
	if stats.Hits == 0 {
		t.Fatalf("no cache hits: %+v", stats)
	}
}
