package odp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bank"
	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/technology"
	"repro/internal/trader"
	"repro/internal/transactions"
	"repro/internal/values"
)

func newBankSystem(t *testing.T) (*System, *Deployment) {
	t.Helper()
	s := NewSystem(1)
	t.Cleanup(func() { s.Close() })
	node, err := s.CreateNode("alpha")
	if err != nil {
		t.Fatal(err)
	}
	coord := transactions.NewCoordinator()
	store := transactions.NewStore("branch", nil)
	bank.RegisterBehavior(node.Behaviors(), coord, store)
	dep, err := s.Deploy(node, bank.Template("branch-cbd"), values.Record(
		values.F("city", values.Str("brisbane")),
		values.F("queue", values.Int(2)),
	))
	if err != nil {
		t.Fatal(err)
	}
	return s, dep
}

func TestSystemLifecycle(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	if _, err := s.CreateNode("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateNode("alpha"); !errors.Is(err, ErrNodeExists) {
		t.Errorf("dup node = %v", err)
	}
	if _, err := s.Node("alpha"); err != nil {
		t.Errorf("Node = %v", err)
	}
	if _, err := s.Node("ghost"); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("ghost node = %v", err)
	}
	if got := s.Nodes(); len(got) != 1 || got[0] != "alpha" {
		t.Errorf("Nodes = %v", got)
	}
}

func TestDeployRegistersEverything(t *testing.T) {
	s, dep := newBankSystem(t)
	// Interface types are in the repository.
	for _, name := range []string{"BankTeller", "BankManager", "LoansOfficer"} {
		if _, err := s.Types.LookupInterface(name); err != nil {
			t.Errorf("type %s not registered: %v", name, err)
		}
		if _, ok := dep.Ref(name); !ok {
			t.Errorf("no ref for %s", name)
		}
		if dep.Offers[name] == "" {
			t.Errorf("no offer for %s", name)
		}
	}
	// Locations are in the relocator.
	ref, _ := dep.Ref("BankTeller")
	if _, err := s.Relocator.Lookup(ref.ID); err != nil {
		t.Errorf("teller location missing: %v", err)
	}
	// Subtype substitutability holds in the repository.
	if ok, _ := s.Types.IsSubtype("BankManager", "BankTeller"); !ok {
		t.Error("manager should substitute for teller")
	}
	if _, ok := dep.Ref("Ghost"); ok {
		t.Error("ghost ref should not exist")
	}
}

func TestTradeThenBindThenInvoke(t *testing.T) {
	s, _ := newBankSystem(t)
	contract := core.Contract{
		Require: core.TransparencySet(core.Access | core.Location | core.Relocation | core.Failure),
	}
	// The canonical client path: import a manager (by constraint on the
	// branch properties), bind, create an account, use it via a teller.
	mgr, err := s.ImportAndBind("client", "BankManager", "city == 'brisbane'", contract)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	ctx := context.Background()
	term, res, err := mgr.Invoke(ctx, "CreateAccount", []values.Value{values.Str("alice")})
	if err != nil || term != "OK" {
		t.Fatalf("CreateAccount = %q, %v, %v", term, res, err)
	}
	acct, _ := res[0].AsString()

	tel, err := s.ImportAndBind("client", "BankTeller", "", contract)
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	if term, _, err := tel.Invoke(ctx, "Deposit",
		[]values.Value{values.Str("alice"), values.Str(acct), values.Int(100)}); err != nil || term != "OK" {
		t.Fatalf("Deposit = %q, %v", term, err)
	}
	// No offers for an unknown constraint.
	if _, err := s.ImportAndBind("client", "BankManager", "city == 'perth'", contract); !errors.Is(err, ErrNoOffers) {
		t.Errorf("no offers = %v", err)
	}
	// Unknown service type surfaces the trader error.
	if _, err := s.ImportAndBind("client", "Ghost", "", contract); !errors.Is(err, trader.ErrTypeUnknown) {
		t.Errorf("unknown type = %v", err)
	}
}

func TestDeployErrors(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	node, err := s.CreateNode("alpha")
	if err != nil {
		t.Fatal(err)
	}
	// Invalid template.
	if _, err := s.Deploy(node, core.ObjectTemplate{}, values.Null()); err == nil {
		t.Error("invalid template should fail")
	}
	// Unknown behaviour.
	tmpl := bank.Template("branch")
	if _, err := s.Deploy(node, tmpl, values.Null()); err == nil {
		t.Error("unknown behaviour should fail")
	}
}

func TestDeployPersistenceContractPropagates(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	node, err := s.CreateNode("alpha")
	if err != nil {
		t.Fatal(err)
	}
	coord := transactions.NewCoordinator()
	bank.RegisterBehavior(node.Behaviors(), coord, transactions.NewStore("b", nil))
	tmpl := bank.Template("branch")
	tmpl.Interfaces[0].Contract.Require = tmpl.Interfaces[0].Contract.Require.With(core.Persistence)
	dep, err := s.Deploy(node, tmpl, values.Null())
	if err != nil {
		t.Fatal(err)
	}
	// Deactivate; the next call must transparently reactivate.
	if err := dep.Cluster.Deactivate(); err != nil {
		t.Fatal(err)
	}
	ref, _ := dep.Ref("BankManager")
	b, err := s.Bind("client", ref, core.Contract{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if term, _, err := b.Invoke(context.Background(), "CreateAccount",
		[]values.Value{values.Str("alice")}); err != nil || term != "OK" {
		t.Fatalf("call on deactivated cluster = %q, %v", term, err)
	}
}

func TestBusSeesDeployments(t *testing.T) {
	s := NewSystem(1)
	defer s.Close()
	var seen []string
	s.Bus.Subscribe("odp.deployed", nil, func(ev coordination.Event) {
		name, _ := ev.Payload.FieldByName("template")
		str, _ := name.AsString()
		seen = append(seen, str)
	})
	node, err := s.CreateNode("alpha")
	if err != nil {
		t.Fatal(err)
	}
	coord := transactions.NewCoordinator()
	bank.RegisterBehavior(node.Behaviors(), coord, transactions.NewStore("b", nil))
	if _, err := s.Deploy(node, bank.Template("branch-x"), values.Null()); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "branch-x" {
		t.Errorf("deployment events = %v", seen)
	}
}

// ---------------------------------------------------------------------------
// Figure 1: cross-viewpoint consistency of the bank

func bankSpec(t *testing.T) Spec {
	t.Helper()
	community, err := bank.NewCommunity("branch-cbd")
	if err != nil {
		t.Fatal(err)
	}
	model, err := bank.NewModel()
	if err != nil {
		t.Fatal(err)
	}
	tech := technology.NewSpecification("sim-deployment")
	if err := tech.Choose("transport", values.Record(values.F("kind", values.Str("sim")))); err != nil {
		t.Fatal(err)
	}
	if err := tech.Require(technology.Requirement{
		Name: "transport-chosen", Condition: "exist transport.kind",
	}); err != nil {
		t.Fatal(err)
	}
	return Spec{
		Community:  community,
		Model:      model,
		Templates:  []core.ObjectTemplate{bank.Template("branch-cbd")},
		Technology: tech,
		Links: []Correspondence{
			{Action: "Deposit", Interface: "BankTeller", Operation: "Deposit", Schema: "Deposit"},
			{Action: "Withdraw", Interface: "BankTeller", Operation: "Withdraw", Schema: "Withdraw"},
			{Action: "Balance", Interface: "BankTeller", Operation: "Balance"},
			{Action: "CreateAccount", Interface: "BankManager", Operation: "CreateAccount"},
			{Action: "ApproveLoan", Interface: "LoansOfficer", Operation: "ApproveLoan"},
			{Interface: "BankManager", Operation: "ResetDay", Schema: "ResetDay"},
			{Interface: "BankManager", Operation: "CloseAccount", Schema: "CloseAccount"},
		},
	}
}

func TestBankViewpointsConsistent(t *testing.T) {
	spec := bankSpec(t)
	findings := CheckConsistency(spec, nil)
	// The only expected finding: SetInterestRate is governed (performative
	// + policies) but deliberately not a computational operation — the
	// tutorial treats it as an enterprise-level act.
	for _, f := range Errors(findings) {
		t.Errorf("unexpected error: %+v", f)
	}
	warnings := 0
	for _, f := range findings {
		if f.Severity == Warning {
			warnings++
		}
	}
	if warnings != 1 {
		t.Errorf("findings = %+v (want exactly the SetInterestRate warning)", findings)
	}
}

func TestConsistencyCatchesBreaks(t *testing.T) {
	base := bankSpec(t)

	t.Run("unknown-interface", func(t *testing.T) {
		spec := base
		spec.Links = append([]Correspondence{}, base.Links...)
		spec.Links = append(spec.Links, Correspondence{Interface: "Ghost", Operation: "X"})
		if len(Errors(CheckConsistency(spec, nil))) == 0 {
			t.Error("unknown interface not caught")
		}
	})
	t.Run("unknown-operation", func(t *testing.T) {
		spec := base
		spec.Links = []Correspondence{{Interface: "BankTeller", Operation: "Ghost"}}
		if len(Errors(CheckConsistency(spec, nil))) == 0 {
			t.Error("unknown operation not caught")
		}
	})
	t.Run("ungoverned-action", func(t *testing.T) {
		spec := base
		spec.Links = []Correspondence{{Action: "Smuggle", Interface: "BankTeller", Operation: "Deposit"}}
		if len(Errors(CheckConsistency(spec, nil))) == 0 {
			t.Error("ungoverned action not caught")
		}
	})
	t.Run("unknown-schema", func(t *testing.T) {
		spec := base
		spec.Links = []Correspondence{{Interface: "BankTeller", Operation: "Deposit", Schema: "Ghost"}}
		if len(Errors(CheckConsistency(spec, nil))) == 0 {
			t.Error("unknown schema not caught")
		}
	})
	t.Run("invalid-template", func(t *testing.T) {
		spec := base
		spec.Templates = []core.ObjectTemplate{{Name: "broken"}}
		if len(Errors(CheckConsistency(spec, nil))) == 0 {
			t.Error("invalid template not caught")
		}
	})
	t.Run("missing-behaviour", func(t *testing.T) {
		s := NewSystem(1)
		defer s.Close()
		node, err := s.CreateNode("alpha")
		if err != nil {
			t.Fatal(err)
		}
		if len(Errors(CheckConsistency(base, node.Behaviors()))) == 0 {
			t.Error("missing behaviour not caught")
		}
	})
	t.Run("non-conforming-technology", func(t *testing.T) {
		spec := base
		tech := technology.NewSpecification("broken")
		if err := tech.Require(technology.Requirement{Name: "impossible", Condition: "false"}); err != nil {
			t.Fatal(err)
		}
		spec.Technology = tech
		if len(Errors(CheckConsistency(spec, nil))) == 0 {
			t.Error("non-conforming technology not caught")
		}
	})
	t.Run("no-community-warning", func(t *testing.T) {
		spec := base
		spec.Community = nil
		findings := CheckConsistency(spec, nil)
		hasWarn := false
		for _, f := range findings {
			if f.Severity == Warning && f.Viewpoint == "enterprise" {
				hasWarn = true
			}
		}
		if !hasWarn {
			t.Error("missing community should warn")
		}
	})
	t.Run("no-model-warning", func(t *testing.T) {
		spec := base
		spec.Model = nil
		findings := CheckConsistency(spec, nil)
		hasWarn := false
		for _, f := range findings {
			if f.Severity == Warning && f.Viewpoint == "information" {
				hasWarn = true
			}
		}
		if !hasWarn {
			t.Error("missing model should warn")
		}
	})
}

func TestSeverityString(t *testing.T) {
	if Error.String() != "error" || Warning.String() != "warning" {
		t.Error("severity strings")
	}
}
