// E9 — management & observability: what the mgmt subsystem costs, and
// what it shows. The overhead scenarios quantify the instrumentation tax
// on the E4-style invocation path (disabled instrumentation must stay
// within the noise), and the traced-transfer demo produces the
// channel-stage trace of one replicated, transactional bank deposit —
// the end-to-end picture the tutorial's engineering viewpoint describes
// in prose.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bank"
	"repro/internal/channel"
	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/odp"
	"repro/internal/policy"
	"repro/internal/transactions"
	"repro/internal/transparency"
	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

// E9Overhead returns paired scenarios measuring the observability tax:
// the same echo invocation with instrumentation absent and fully enabled
// (metrics + tracing + QoS), and the same frame encoded/decoded with and
// without the trace extension. The "off" variants are the ones the ≤5%
// overhead budget applies to — a channel that was never instrumented must
// not pay for the subsystem's existence.
func E9Overhead() []Scenario {
	var out []Scenario
	for i, on := range []bool{false, true} {
		net := netsim.New(int64(100 + i))
		l, err := net.Listen(naming.Endpoint(fmt.Sprintf("sim://e9-%d", i)))
		must(err)
		var m *mgmt.Management
		scfg := channel.ServerConfig{ReplayGuard: true}
		bcfg := channel.BindConfig{Transport: net, Codec: wire.Canonical}
		name := "invoke/instrumentation-off"
		if on {
			m = mgmt.New()
			scfg.Instruments = m.ChannelServer("e9")
			bcfg.Instruments = m.ChannelClient("e9")
			name = "invoke/instrumentation-on"
		}
		srv := channel.NewServer(l, scfg)
		id := naming.InterfaceID{Nonce: uint64(i + 1)}
		must(srv.Register(id, echoOpType(), e4Servant{}))
		srv.Start()
		b, err := channel.Bind(naming.InterfaceRef{
			ID: id, TypeName: "Echo", Endpoint: l.Endpoint(),
		}, bcfg)
		must(err)
		arg := []values.Value{values.Str("the quick brown fox")}
		ctx := context.Background()
		srvRef, bRef := srv, b
		out = append(out, Scenario{
			Name: name,
			Run: func() error {
				term, _, err := bRef.Invoke(ctx, "Echo", arg)
				if err != nil {
					return err
				}
				if term != "OK" {
					return fmt.Errorf("term = %q", term)
				}
				return nil
			},
			Close: func() {
				bRef.Close()
				srvRef.Close()
			},
		})
	}
	for _, traced := range []bool{false, true} {
		msg := &wire.Message{
			Kind:        wire.Call,
			BindingID:   1,
			Seq:         1,
			Correlation: 1,
			Operation:   "Echo",
			Args:        []values.Value{values.Str("the quick brown fox")},
		}
		name := "frame/untraced"
		if traced {
			msg.TraceID, msg.SpanID = 0xA11C0FFEE, 0x1
			name = "frame/traced"
		}
		buf := make([]byte, 0, 256)
		out = append(out, Scenario{
			Name: name,
			Run: func() error {
				b, err := msg.EncodeAppend(buf[:0], wire.Canonical)
				if err != nil {
					return err
				}
				dm, err := wire.Decode(b)
				if err != nil {
					return err
				}
				wire.PutMessage(dm)
				return nil
			},
			Close: func() {},
		})
	}
	return out
}

// echoOpType returns the one-operation interface used by the overhead
// scenarios (the E4 echo shape, kept local so E4 and E9 stay independent).
func echoOpType() *types.Interface {
	return types.OpInterface("Echo",
		types.Op("Echo", types.Params(types.P("x", values.TString())),
			types.Term("OK", types.P("x", values.TString()))),
	)
}

// E9TracedTransfer builds a two-replica transactional bank, runs one
// deposit through the full stack with management enabled, and returns the
// spans of that interaction plus their rendered tree. One deposit crosses
// every instrumented layer: the replica group update, one client stub +
// binder + transport per replica, the server dispatch on each node, and
// the transaction commit with its per-participant prepare/complete
// phases.
func E9TracedTransfer() ([]mgmt.Span, string, error) {
	system := odp.NewSystem(77)
	defer system.Close()
	m := system.EnableManagement()
	// Breakers on: the client host's set reports under policy.client.*,
	// so the demo's dump shows breaker state beside the trace.
	system.EnableBreakers(policy.BreakerConfig{})

	var tellers, managers []naming.InterfaceRef
	for _, host := range []string{"replica-a", "replica-b"} {
		node, err := system.CreateNode(host)
		if err != nil {
			return nil, "", err
		}
		coord := transactions.NewCoordinator()
		coord.Instrument(m.Tx(host))
		store := transactions.NewStore(host, nil)
		bank.RegisterBehavior(node.Behaviors(), coord, store)
		dep, err := system.Deploy(node, bank.Template("branch-"+host), values.Null())
		if err != nil {
			return nil, "", err
		}
		tellers = append(tellers, dep.Refs["BankTeller"])
		managers = append(managers, dep.Refs["BankManager"])
	}

	contract := core.Contract{
		Require:  core.TransparencySet(core.Access | core.Replication),
		Replicas: 2,
	}
	bindGroup := func(refs []naming.InterfaceRef, typeName, groupName string) (*coordination.ReplicaGroup, error) {
		env := system.Env("client")
		if it, err := system.Types.LookupInterface(typeName); err == nil {
			env.Type = it
		}
		g, err := transparency.Replicate(refs, contract, env)
		if err != nil {
			return nil, err
		}
		g.Instrument(m.Group(groupName))
		return g, nil
	}
	mg, err := bindGroup(managers, "BankManager", "managers")
	if err != nil {
		return nil, "", err
	}
	defer mg.Close()
	tg, err := bindGroup(tellers, "BankTeller", "tellers")
	if err != nil {
		return nil, "", err
	}
	defer tg.Close()

	ctx := context.Background()
	term, res, err := mg.Invoke(ctx, "CreateAccount", []values.Value{values.Str("alice")})
	if err != nil || term != "OK" {
		return nil, "", fmt.Errorf("CreateAccount: %s %v", term, err)
	}
	acct := res[0]
	term, _, err = tg.Invoke(ctx, "Deposit", []values.Value{values.Str("alice"), acct, values.Int(500)})
	if err != nil || term != "OK" {
		return nil, "", fmt.Errorf("Deposit: %s %v", term, err)
	}

	// The deposit's trace is the one rooted at its replica-group update.
	for _, s := range m.Tracer.Spans() {
		if strings.HasPrefix(s.Name, "replica.update:Deposit") {
			spans := m.Tracer.Trace(s.Trace)
			text := mgmt.RenderTrace(spans)
			// Append the failure-policy metrics (all healthy here, so the
			// breaker gauges read zero — the live view odpstat serves).
			var pb strings.Builder
			for _, line := range strings.Split(m.Registry.Dump(), "\n") {
				// Dump lines read "counter   <name> <value>"; keep the
				// policy.* family.
				if f := strings.Fields(line); len(f) >= 2 && strings.HasPrefix(f[1], "policy.") {
					pb.WriteString(line)
					pb.WriteByte('\n')
				}
			}
			if pb.Len() > 0 {
				text += "\n== policy ==\n" + pb.String()
			}
			return spans, text, nil
		}
	}
	return nil, "", fmt.Errorf("deposit trace not retained")
}
