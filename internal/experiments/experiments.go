// Package experiments builds the measurable scenarios of EXPERIMENTS.md —
// one per figure of the tutorial (the paper has no measured tables; each
// structural figure is turned into a quantitative experiment). The root
// bench_test.go wraps these in testing.B benchmarks, and cmd/odpbench
// prints them as tables.
package experiments

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/bank"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/odp"
	"repro/internal/relocator"
	"repro/internal/security"
	"repro/internal/technology"
	"repro/internal/trader"
	"repro/internal/transactions"
	"repro/internal/transparency"
	"repro/internal/typerepo"
	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

// Scenario is one measurable configuration: Run executes a single
// operation of the experiment; Close releases its resources.
type Scenario struct {
	Name  string
	Run   func() error
	Close func()
}

func must(err error) {
	if err != nil {
		log.Panicf("experiments: setup failed: %v", err)
	}
}

// ---------------------------------------------------------------------------
// E1 — Figure 1: cross-viewpoint consistency check of the bank

// E1Consistency builds the full five-viewpoint bank specification and
// returns a scenario whose Run performs one complete consistency check.
func E1Consistency() Scenario {
	community, err := bank.NewCommunity("branch")
	must(err)
	model, err := bank.NewModel()
	must(err)
	tech := technology.NewSpecification("sim")
	must(tech.Choose("transport", values.Record(values.F("kind", values.Str("sim")))))
	must(tech.Require(technology.Requirement{Name: "transport", Condition: "exist transport.kind"}))
	spec := odp.Spec{
		Community:  community,
		Model:      model,
		Templates:  []core.ObjectTemplate{bank.Template("branch")},
		Technology: tech,
		Links: []odp.Correspondence{
			{Action: "Deposit", Interface: "BankTeller", Operation: "Deposit", Schema: "Deposit"},
			{Action: "Withdraw", Interface: "BankTeller", Operation: "Withdraw", Schema: "Withdraw"},
			{Action: "Balance", Interface: "BankTeller", Operation: "Balance"},
			{Action: "CreateAccount", Interface: "BankManager", Operation: "CreateAccount"},
			{Action: "ApproveLoan", Interface: "LoansOfficer", Operation: "ApproveLoan"},
		},
	}
	return Scenario{
		Name: "viewpoint-consistency",
		Run: func() error {
			if errs := odp.Errors(odp.CheckConsistency(spec, nil)); len(errs) != 0 {
				return fmt.Errorf("inconsistent: %v", errs)
			}
			return nil
		},
		Close: func() {},
	}
}

// ---------------------------------------------------------------------------
// E2 — Figure 2: the bank branch under invocation load

// E2Bank deploys the branch and returns one scenario per operation mix.
func E2Bank() []Scenario {
	system := odp.NewSystem(1)
	node, err := system.CreateNode("bank")
	must(err)
	coord := transactions.NewCoordinator()
	store := transactions.NewStore("branch", nil)
	bank.RegisterBehavior(node.Behaviors(), coord, store)
	_, err = system.Deploy(node, bank.Template("branch"), values.Null())
	must(err)
	contract := core.Contract{Require: core.TransparencySet(core.Access | core.Location | core.Relocation)}
	teller, err := system.ImportAndBind("client", "BankTeller", "", contract)
	must(err)
	manager, err := system.ImportAndBind("client", "BankManager", "", contract)
	must(err)
	ctx := context.Background()
	term, res, err := manager.Invoke(ctx, "CreateAccount", []values.Value{values.Str("alice")})
	must(err)
	if term != "OK" {
		must(fmt.Errorf("CreateAccount: %s", term))
	}
	acct := res[0]
	_, _, err = teller.Invoke(ctx, "Deposit", []values.Value{values.Str("alice"), acct, values.Int(1_000_000)})
	must(err)
	closeAll := func() {
		teller.Close()
		manager.Close()
		system.Close()
	}
	expectTerm := func(op, want string, args ...values.Value) func() error {
		return func() error {
			term, _, err := teller.Invoke(ctx, op, args)
			if err != nil {
				return err
			}
			if term != want {
				return fmt.Errorf("%s = %q, want %q", op, term, want)
			}
			return nil
		}
	}
	return []Scenario{
		{Name: "deposit", Run: expectTerm("Deposit", "OK", values.Str("alice"), acct, values.Int(1)), Close: closeAll},
		{Name: "balance", Run: expectTerm("Balance", "OK", values.Str("alice"), acct), Close: func() {}},
		{Name: "withdraw-denied", Run: expectTerm("Withdraw", "NotToday", values.Str("alice"), acct, values.Int(bank.DailyLimit+1)), Close: func() {}},
	}
}

// ---------------------------------------------------------------------------
// E3 — Figure 3: subtype checking cost

// syntheticInterface builds an operational interface with the given
// number of operations, each with `params` parameters.
func syntheticInterface(name string, ops, params int) *types.Interface {
	operations := make([]types.Operation, ops)
	for i := range operations {
		ps := make([]types.Parameter, params)
		for j := range ps {
			ps[j] = types.P(fmt.Sprintf("p%d", j), values.TInt())
		}
		operations[i] = types.Op(fmt.Sprintf("op%d", i), ps,
			types.Term("OK", types.P("r", values.TInt())),
			types.Term("Error", types.P("reason", values.TString())),
		)
	}
	return &types.Interface{Name: name, Kind: types.Operational, Operations: operations}
}

// E3Subtype returns structural-check scenarios at increasing signature
// sizes plus the memoised repository check.
func E3Subtype() []Scenario {
	var out []Scenario
	for _, size := range []int{1, 4, 16, 64} {
		super := syntheticInterface(fmt.Sprintf("Super%d", size), size, 3)
		sub := types.Extend(fmt.Sprintf("Sub%d", size), super, types.Announce("extra"))
		out = append(out, Scenario{
			Name: fmt.Sprintf("structural/ops=%d", size),
			Run: func() error {
				return types.Subtype(sub, super)
			},
			Close: func() {},
		})
	}
	// Repository-cached check (what the trader does per offer).
	repo := typerepo.New()
	super := syntheticInterface("Super", 16, 3)
	sub := types.Extend("Sub", super, types.Announce("extra"))
	must(repo.RegisterInterface(super))
	must(repo.RegisterInterface(sub))
	out = append(out, Scenario{
		Name: "repository-memoised/ops=16",
		Run: func() error {
			ok, err := repo.IsSubtype("Sub", "Super")
			if err != nil || !ok {
				return fmt.Errorf("IsSubtype = %v, %v", ok, err)
			}
			return nil
		},
		Close: func() {},
	})
	return out
}

// ---------------------------------------------------------------------------
// E4 — Figure 4: channel composition ablation

type e4Servant struct{}

func (e4Servant) Invoke(_ context.Context, _ string, args []values.Value) (string, []values.Value, error) {
	return "OK", args, nil
}

// E4Codec isolates the transfer-syntax cost (access transparency's data
// layer): encode+decode of a representative argument record under each
// codec, without the channel round trip that otherwise drowns the
// difference in scheduling noise.
func E4Codec() []Scenario {
	payload := values.Record(
		values.F("c", values.Str("alice")),
		values.F("a", values.Str("acct-1")),
		values.F("d", values.Int(400)),
		values.F("memo", values.Str("the quick brown fox jumps over")),
		values.F("tags", values.Seq(values.Str("atm"), values.Str("cbd"), values.Str("odd"))),
	)
	var out []Scenario
	for _, codec := range []wire.Codec{wire.Native, wire.Canonical} {
		c := codec
		buf := make([]byte, 0, 256)
		out = append(out, Scenario{
			Name: "codec-only/" + c.Name(),
			Run: func() error {
				b, err := c.AppendValue(buf[:0], payload)
				if err != nil {
					return err
				}
				_, _, err = c.ReadValue(b, 0)
				return err
			},
			Close: func() {},
		})
	}
	return out
}

// E4Channel builds one scenario per channel configuration: codecs, then
// progressively longer stub/binder pipelines — the per-component cost of
// Figure 4's structure.
func E4Channel() []Scenario {
	echoType := types.OpInterface("Echo",
		types.Op("Echo", types.Params(types.P("x", values.TString())),
			types.Term("OK", types.P("x", values.TString()))),
	)
	realm := security.NewRealm()
	realm.AddPrincipal("bench", []byte("bench-secret"))
	policy := security.NewPolicy()
	policy.Allow("bench", "*")

	type variant struct {
		name         string
		codec        wire.Codec
		clientStages []channel.Stage
		serverStages []channel.Stage
		replayGuard  bool
	}
	discard := func(channel.AuditEntry) {}
	variants := []variant{
		{name: "bare/native", codec: wire.Native},
		{name: "bare/canonical", codec: wire.Canonical},
		{name: "replay-binder", codec: wire.Canonical, replayGuard: true},
		{name: "audit-stub", codec: wire.Canonical, replayGuard: true,
			clientStages: []channel.Stage{&channel.AuditStage{Sink: discard}}},
		{name: "security", codec: wire.Canonical, replayGuard: true,
			clientStages: []channel.Stage{&security.SignStage{Principal: "bench", Secret: []byte("bench-secret")}},
			serverStages: []channel.Stage{&security.VerifyStage{Realm: realm, Policy: policy}}},
		{name: "full-pipeline", codec: wire.Canonical, replayGuard: true,
			clientStages: []channel.Stage{
				&channel.AuditStage{Sink: discard},
				&security.SignStage{Principal: "bench", Secret: []byte("bench-secret")},
			},
			serverStages: []channel.Stage{&security.VerifyStage{Realm: realm, Policy: policy}}},
	}

	var out []Scenario
	for i, v := range variants {
		net := netsim.New(int64(i + 1))
		l, err := net.Listen(naming.Endpoint(fmt.Sprintf("sim://srv%d", i)))
		must(err)
		srv := channel.NewServer(l, channel.ServerConfig{
			Stages:      v.serverStages,
			ReplayGuard: v.replayGuard,
		})
		id := naming.InterfaceID{Nonce: uint64(i + 1)}
		must(srv.Register(id, echoType, e4Servant{}))
		srv.Start()
		b, err := channel.Bind(naming.InterfaceRef{
			ID: id, TypeName: "Echo", Endpoint: l.Endpoint(),
		}, channel.BindConfig{Transport: net, Codec: v.codec, Stages: v.clientStages})
		must(err)
		arg := []values.Value{values.Str("the quick brown fox")}
		ctx := context.Background()
		srvRef, bRef := srv, b
		out = append(out, Scenario{
			Name: v.name,
			Run: func() error {
				term, _, err := bRef.Invoke(ctx, "Echo", arg)
				if err != nil {
					return err
				}
				if term != "OK" {
					return fmt.Errorf("term = %q", term)
				}
				return nil
			},
			Close: func() {
				bRef.Close()
				srvRef.Close()
			},
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// E5 — Figure 5: node structuring cost

type nopBehavior struct{}

func (nopBehavior) Invoke(context.Context, string, []values.Value) (string, []values.Value, error) {
	return "OK", nil, nil
}

// E5Structure returns scenarios that create a capsule+cluster+object+
// interface column (one full Figure 5 path) per Run, and a
// checkpoint/reactivate cycle.
func E5Structure() []Scenario {
	newNode := func(name string) *engineering.Node {
		net := netsim.New(1)
		n, err := engineering.NewNode(engineering.NodeConfig{
			ID:        naming.NodeID(name),
			Endpoint:  naming.Endpoint("sim://" + name),
			Transport: net.From(name),
		})
		must(err)
		n.Behaviors().Register("nop", func(values.Value) (engineering.Behavior, error) {
			return nopBehavior{}, nil
		})
		return n
	}
	ifaceType := types.OpInterface("Nop", types.Op("Nop", nil, types.Term("OK")))

	nodeA := newNode("alpha")
	createScenario := Scenario{
		Name: "create-capsule+cluster+object+interface",
		Run: func() error {
			capsule, err := nodeA.CreateCapsule()
			if err != nil {
				return err
			}
			cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
			if err != nil {
				return err
			}
			obj, err := cluster.CreateObject("nop", values.Null())
			if err != nil {
				return err
			}
			_, err = obj.AddInterface(ifaceType)
			return err
		},
		Close: func() { nodeA.Close() },
	}

	nodeB := newNode("beta")
	capsule, err := nodeB.CreateCapsule()
	must(err)
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
	must(err)
	for i := 0; i < 16; i++ {
		obj, err := cluster.CreateObject("nop", values.Null())
		must(err)
		_, err = obj.AddInterface(ifaceType)
		must(err)
	}
	cycleScenario := Scenario{
		Name: "checkpoint+deactivate+reactivate/objects=16",
		Run: func() error {
			if _, err := cluster.Checkpoint(); err != nil {
				return err
			}
			if err := cluster.Deactivate(); err != nil {
				return err
			}
			return cluster.Reactivate()
		},
		Close: func() { nodeB.Close() },
	}
	return []Scenario{createScenario, cycleScenario}
}

// ---------------------------------------------------------------------------
// E6 — the transparency ablation matrix

type e6Counter struct{ n atomic.Int64 }

func (c *e6Counter) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	if op == "Inc" {
		d, _ := args[0].AsInt()
		return "OK", []values.Value{values.Int(c.n.Add(d))}, nil
	}
	return "OK", []values.Value{values.Int(c.n.Load())}, nil
}

func (c *e6Counter) CheckpointState() (values.Value, error) { return values.Int(c.n.Load()), nil }
func (c *e6Counter) RestoreState(v values.Value) error {
	n, _ := v.AsInt()
	c.n.Store(n)
	return nil
}

func e6CounterType() *types.Interface {
	return types.OpInterface("Counter",
		types.Op("Inc", types.Params(types.P("d", values.TInt())),
			types.Term("OK", types.P("n", values.TInt()))),
	)
}

// E6Transparency measures invocation cost under each transparency set.
func E6Transparency() []Scenario {
	sets := []struct {
		name string
		req  core.TransparencySet
	}{
		{"none", 0},
		{"access", core.TransparencySet(core.Access)},
		{"access+location+relocation", core.TransparencySet(core.Access | core.Location | core.Relocation)},
		{"access+failure", core.TransparencySet(core.Access | core.Failure)},
		{"all-channel", core.TransparencySet(core.Access | core.Location | core.Relocation | core.Migration | core.Persistence | core.Failure)},
	}
	var out []Scenario
	for i, set := range sets {
		system := odp.NewSystem(int64(i + 1))
		node, err := system.CreateNode("n")
		must(err)
		node.Behaviors().Register("counter", func(values.Value) (engineering.Behavior, error) {
			return &e6Counter{}, nil
		})
		contract := core.Contract{Require: set.req}
		dep, err := system.Deploy(node, core.ObjectTemplate{
			Name:     "counter",
			Behavior: "counter",
			Interfaces: []core.InterfaceDecl{{
				Type:     e6CounterType(),
				Contract: contract,
			}},
		}, values.Null())
		must(err)
		ref, _ := dep.Ref("Counter")
		b, err := system.Bind("client", ref, contract)
		must(err)
		ctx := context.Background()
		arg := []values.Value{values.Int(1)}
		sys, bRef := system, b
		out = append(out, Scenario{
			Name: set.name,
			Run: func() error {
				_, _, err := bRef.Invoke(ctx, "Inc", arg)
				return err
			},
			Close: func() {
				bRef.Close()
				sys.Close()
			},
		})
	}
	// Replication r=1,3,5 through the group proxy.
	for _, r := range []int{1, 3, 5} {
		system := odp.NewSystem(int64(100 + r))
		contract := core.Contract{
			Require:  core.TransparencySet(core.Replication | core.Location | core.Relocation),
			Replicas: r,
		}
		var refs []naming.InterfaceRef
		for i := 0; i < r; i++ {
			node, err := system.CreateNode(fmt.Sprintf("r%d", i))
			must(err)
			node.Behaviors().Register("counter", func(values.Value) (engineering.Behavior, error) {
				return &e6Counter{}, nil
			})
			dep, err := system.Deploy(node, core.ObjectTemplate{
				Name:     "counter",
				Behavior: "counter",
				Interfaces: []core.InterfaceDecl{{
					Type:     e6CounterType(),
					Contract: contract,
				}},
			}, values.Null())
			must(err)
			ref, _ := dep.Ref("Counter")
			refs = append(refs, ref)
		}
		group, err := transparency.Replicate(refs, contract, system.Env("client"))
		must(err)
		ctx := context.Background()
		arg := []values.Value{values.Int(1)}
		sys, g := system, group
		out = append(out, Scenario{
			Name: fmt.Sprintf("replication/r=%d", r),
			Run: func() error {
				_, _, err := g.Invoke(ctx, "Inc", arg)
				return err
			},
			Close: func() {
				g.Close()
				sys.Close()
			},
		})
	}
	return out
}

// E6RelocationRecovery measures how long a live binding takes to recover
// across a migration: the relocation-transparency latency.
func E6RelocationRecovery(samples int) ([]time.Duration, error) {
	net := netsim.New(5)
	reloc := relocator.New()
	mk := func(name string) *engineering.Node {
		n, err := engineering.NewNode(engineering.NodeConfig{
			ID:        naming.NodeID(name),
			Endpoint:  naming.Endpoint("sim://" + name),
			Transport: net.From(name),
			Locations: reloc,
		})
		must(err)
		n.Behaviors().Register("counter", func(values.Value) (engineering.Behavior, error) {
			return &e6Counter{}, nil
		})
		return n
	}
	nodes := []*engineering.Node{mk("m0"), mk("m1")}
	defer nodes[0].Close()
	defer nodes[1].Close()
	capsules := make([]*engineering.Capsule, 2)
	for i, n := range nodes {
		c, err := n.CreateCapsule()
		if err != nil {
			return nil, err
		}
		capsules[i] = c
	}
	cluster, err := capsules[0].CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		return nil, err
	}
	obj, err := cluster.CreateObject("counter", values.Null())
	if err != nil {
		return nil, err
	}
	ref, err := obj.AddInterface(e6CounterType())
	if err != nil {
		return nil, err
	}
	b, err := channel.Bind(ref, channel.BindConfig{
		Transport: net.From("client"), Locator: reloc, MaxRetries: 5,
	})
	if err != nil {
		return nil, err
	}
	defer b.Close()
	ctx := context.Background()
	arg := []values.Value{values.Int(1)}
	if _, _, err := b.Invoke(ctx, "Inc", arg); err != nil {
		return nil, err
	}
	var out []time.Duration
	at := 0
	for i := 0; i < samples; i++ {
		next := (at + 1) % 2
		nk, err := cluster.MigrateTo(capsules[next])
		if err != nil {
			return nil, err
		}
		cluster = nk
		at = next
		start := time.Now()
		if _, _, err := b.Invoke(ctx, "Inc", arg); err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		out = append(out, time.Since(start))
	}
	return out, nil
}

// E6FailureMasking runs invocations over a lossy link and reports how
// many succeeded with and without failure transparency.
func E6FailureMasking(dropRate float64, calls int) (withRetries, withoutRetries int, err error) {
	run := func(retries int, seed int64) (int, error) {
		net := netsim.New(seed)
		net.SetLink("client", "srv", netsim.LinkProfile{DropRate: dropRate})
		net.SetLink("srv", "client", netsim.LinkProfile{DropRate: dropRate})
		l, err := net.Listen("sim://srv")
		if err != nil {
			return 0, err
		}
		srv := channel.NewServer(l, channel.ServerConfig{ReplayGuard: true})
		id := naming.InterfaceID{Nonce: 9}
		if err := srv.Register(id, e6CounterType(), &e6Counter{}); err != nil {
			return 0, err
		}
		srv.Start()
		defer srv.Close()
		b, err := channel.Bind(naming.InterfaceRef{ID: id, TypeName: "Counter", Endpoint: "sim://srv"},
			channel.BindConfig{
				Transport:   net.From("client"),
				MaxRetries:  retries,
				CallTimeout: 10 * time.Millisecond,
			})
		if err != nil {
			return 0, err
		}
		defer b.Close()
		ok := 0
		ctx := context.Background()
		for i := 0; i < calls; i++ {
			if _, _, err := b.Invoke(ctx, "Inc", []values.Value{values.Int(1)}); err == nil {
				ok++
			}
		}
		return ok, nil
	}
	withRetries, err = run(25, 42)
	if err != nil {
		return 0, 0, err
	}
	withoutRetries, err = run(0, 42)
	return withRetries, withoutRetries, err
}

// ---------------------------------------------------------------------------
// E7 — transaction function: 2PC cost vs participants

// E7Transactions returns commit-latency scenarios at increasing
// participant counts.
func E7Transactions() []Scenario {
	var out []Scenario
	for _, parts := range []int{1, 2, 4, 8} {
		coord := transactions.NewCoordinator()
		stores := make([]*transactions.Store, parts)
		for i := range stores {
			stores[i] = transactions.NewStore(fmt.Sprintf("s%d", i), nil)
		}
		ctx := context.Background()
		n := 0
		p := parts
		out = append(out, Scenario{
			Name: fmt.Sprintf("commit/participants=%d", p),
			Run: func() error {
				tx := coord.Begin(ctx)
				n++
				key := fmt.Sprintf("k%d", n%128)
				for _, s := range stores {
					if err := tx.Write(s, key, values.Int(int64(n))); err != nil {
						return err
					}
				}
				return tx.Commit()
			},
			Close: func() {},
		})
	}
	// Abort path.
	coord := transactions.NewCoordinator()
	store := transactions.NewStore("s", nil)
	ctx := context.Background()
	out = append(out, Scenario{
		Name: "abort/participants=1",
		Run: func() error {
			tx := coord.Begin(ctx)
			if err := tx.Write(store, "k", values.Int(1)); err != nil {
				return err
			}
			return tx.Abort()
		},
		Close: func() {},
	})
	return out
}

// ---------------------------------------------------------------------------
// E8 — trader: import cost vs offers and constraint complexity

// E8Trader returns import scenarios over trader populations of different
// sizes and constraint complexities, plus a federated chain.
func E8Trader() []Scenario {
	repo := typerepo.New()
	must(repo.RegisterInterface(bank.TellerType()))
	must(repo.RegisterInterface(bank.ManagerType()))

	populate := func(t *trader.Trader, offers int) {
		for i := 0; i < offers; i++ {
			_, err := t.Export("BankTeller", naming.InterfaceRef{
				ID:       naming.InterfaceID{Nonce: uint64(i + 1)},
				TypeName: "BankTeller",
				Endpoint: "sim://x",
			}, values.Record(
				values.F("queue", values.Int(int64(i%10))),
				values.F("city", values.Str([]string{"brisbane", "perth", "sydney"}[i%3])),
			))
			must(err)
		}
	}
	var out []Scenario
	for _, offers := range []int{10, 100, 1000} {
		t := trader.New(fmt.Sprintf("T%d", offers), repo)
		populate(t, offers)
		tt := t
		out = append(out, Scenario{
			Name: fmt.Sprintf("import/offers=%d/simple", offers),
			Run: func() error {
				got, err := tt.Import(trader.ImportRequest{ServiceType: "BankTeller", Constraint: "queue < 5"})
				if err != nil || len(got) == 0 {
					return fmt.Errorf("import: %d, %v", len(got), err)
				}
				return nil
			},
			Close: func() {},
		})
	}
	complexT := trader.New("TC", repo)
	populate(complexT, 100)
	out = append(out, Scenario{
		Name: "import/offers=100/complex",
		Run: func() error {
			got, err := complexT.Import(trader.ImportRequest{
				ServiceType: "BankTeller",
				Constraint:  "(queue < 5 and city == 'brisbane') or (queue < 2 and not (city == 'perth'))",
				Preference:  trader.Preference{Kind: trader.PrefMin, Expr: "queue * 2 + 1"},
			})
			if err != nil || len(got) == 0 {
				return fmt.Errorf("import: %d, %v", len(got), err)
			}
			return nil
		},
		Close: func() {},
	})
	// Federation chain: hop 0..3.
	chain := make([]*trader.Trader, 4)
	for i := range chain {
		chain[i] = trader.New(fmt.Sprintf("F%d", i), repo)
		if i > 0 {
			chain[i-1].Link("next", chain[i])
		}
	}
	populate(chain[3], 10) // offers live 3 hops away
	for _, hops := range []int{1, 2, 3} {
		h := hops
		out = append(out, Scenario{
			Name: fmt.Sprintf("import/federated/hops=%d", h),
			Run: func() error {
				got, err := chain[0].Import(trader.ImportRequest{
					ServiceType: "BankTeller", MaxHops: h,
				})
				if err != nil {
					return err
				}
				if h < 3 && len(got) != 0 {
					return fmt.Errorf("offers leaked at hops=%d", h)
				}
				if h == 3 && len(got) == 0 {
					return fmt.Errorf("no offers at hops=3")
				}
				return nil
			},
			Close: func() {},
		})
	}
	return out
}
