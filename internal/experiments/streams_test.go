package experiments

import (
	"testing"
	"time"
)

// TestE14CellSmoke runs a small one-slow cell on the simulated network and
// checks the deterministic properties: the slow stream's consumer queue is
// bounded by its window, no FIFO gaps, no type errors, and the fast fleet
// actually finished.
func TestE14CellSmoke(t *testing.T) {
	cfg := E14Config{
		Transport: "sim",
		Streams:   8,
		Elems:     100,
		Window:    16,
		SlowOne:   true,
		SlowDelay: time.Millisecond,
	}
	row, err := E14Cell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Scenario != "one-slow" || row.Transport != "sim" {
		t.Fatalf("row identity: %+v", row)
	}
	if row.FastThroughput <= 0 {
		t.Fatalf("fast throughput %v", row.FastThroughput)
	}
	if row.SlowMaxQueued > uint64(cfg.Window) {
		t.Fatalf("slow stream queued %d > window %d", row.SlowMaxQueued, cfg.Window)
	}
	if row.SeqGaps != 0 {
		t.Fatalf("seq gaps: %d", row.SeqGaps)
	}
	if row.FlowTypeErrors != 0 {
		t.Fatalf("flow type errors: %d", row.FlowTypeErrors)
	}
	if row.SlowDelivered == 0 {
		t.Fatal("slow stream delivered nothing; credit loop never opened")
	}

	recs := (E14Report{Rows: []E14Row{row}}).Records()
	if len(recs) != 1 || recs[0].Experiment != "e14" || recs[0].Scenario != "one-slow/sim" {
		t.Fatalf("records: %+v", recs)
	}
	if recs[0].Metrics["slow_max_queued"] != float64(row.SlowMaxQueued) {
		t.Fatalf("record metrics: %+v", recs[0].Metrics)
	}
}
