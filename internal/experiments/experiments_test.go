package experiments

import (
	"testing"
)

// Every scenario must run cleanly: these are the EXPERIMENTS.md
// generators, so a broken scenario means an unreproducible experiment.

func runAll(t *testing.T, scenarios []Scenario) {
	t.Helper()
	for _, s := range scenarios {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				if err := s.Run(); err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
			}
		})
	}
	for _, s := range scenarios {
		s.Close()
	}
}

func TestE1(t *testing.T) {
	s := E1Consistency()
	defer s.Close()
	runAll(t, []Scenario{s})
}

func TestE2(t *testing.T) { runAll(t, E2Bank()) }
func TestE3(t *testing.T) { runAll(t, E3Subtype()) }
func TestE4(t *testing.T) {
	runAll(t, E4Codec())
	runAll(t, E4Channel())
}
func TestE5(t *testing.T) { runAll(t, E5Structure()) }
func TestE6(t *testing.T) { runAll(t, E6Transparency()) }
func TestE7(t *testing.T) { runAll(t, E7Transactions()) }
func TestE8(t *testing.T) { runAll(t, E8Trader()) }

func TestE6RelocationRecovery(t *testing.T) {
	samples, err := E6RelocationRecovery(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 6 {
		t.Errorf("samples = %d", len(samples))
	}
	for i, d := range samples {
		if d <= 0 {
			t.Errorf("sample %d = %v", i, d)
		}
	}
}

func TestE6FailureMasking(t *testing.T) {
	withRetries, withoutRetries, err := E6FailureMasking(0.3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if withRetries != 60 {
		t.Errorf("with retries = %d/60", withRetries)
	}
	if withoutRetries >= withRetries {
		t.Errorf("retries should improve success: %d vs %d", withoutRetries, withRetries)
	}
}
