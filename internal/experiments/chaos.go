// E11 — failure transparency under chaos: a replicated transactional
// bank workload driven through a fixed, seeded fault script (node
// crashes and restarts, a two-node outage, a latency/bandwidth squeeze),
// run twice — once with the failure-policy layer ON (deadline budgets,
// shared circuit breakers, retained members with rejoin) and once with
// the legacy fixed-retry configuration — so the report quantifies what
// Section 7's failure and replication transparencies buy when failures
// actually happen: availability during the faults, tail latency, the
// error taxonomy clients observe, and time-to-recover after the heal.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/coordination"
	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/values"
)

// e11SLO is the per-operation latency objective the availability and
// recovery metrics are defined against.
const e11SLO = 250 * time.Millisecond

// e11Hosts are the replica nodes of the bank; the client host is
// "client" (the netsim default dial origin is irrelevant here — the
// client dials From("client") explicitly).
var e11Hosts = []string{"n1", "n2", "n3"}

// E11Report is one mode's measurement under the fault script.
type E11Report struct {
	Mode     string // "policy-on" | "policy-off"
	Duration time.Duration

	Ops      int // operations attempted
	Failures int // operations that returned an error

	Availability       float64 // successful ops / all ops, whole run
	AvailabilityFaults float64 // ... during the fault window
	AvailabilityHealed float64 // ... after the last heal

	P99Overall time.Duration
	P99Faults  time.Duration
	P99Healed  time.Duration

	// TimeToRecover is measured from the last heal to the completion of
	// the fifth consecutive success within the SLO; negative when the
	// system never recovered inside the run.
	TimeToRecover time.Duration

	Errors map[string]int // taxonomy (errors.Is buckets) -> count

	BreakerOpens    uint64 // channel + group breaker transitions to open
	BreakerRejected uint64 // calls refused while a breaker was open
	Retries         uint64 // policy-paced retries
	BackoffNs       uint64 // nanoseconds spent in retry backoff
	SkippedLegs     uint64 // update legs sat out on an open breaker
	DegradedReads   uint64 // reads served with the staleness flag
	MembersEnd      int    // replicas still in the group at the end

	StaleTrace string // rendered trace of one degraded read ("" if none)
	Timeline   string // the applied fault script, resolved
}

// e11Bank is the replicated servant: per-account balances guarded by a
// mutex, with snapshot/restore standing in for the checkpoint that
// crash recovery replays.
type e11Bank struct {
	mu  sync.Mutex
	bal map[string]int64
}

func newE11Bank() *e11Bank { return &e11Bank{bal: make(map[string]int64)} }

func (b *e11Bank) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	switch op {
	case "Deposit":
		acct, _ := args[0].AsString()
		amt, _ := args[1].AsInt()
		b.mu.Lock()
		b.bal[acct] += amt
		v := b.bal[acct]
		b.mu.Unlock()
		return "OK", []values.Value{values.Int(v)}, nil
	case "Balance":
		acct, _ := args[0].AsString()
		b.mu.Lock()
		v := b.bal[acct]
		b.mu.Unlock()
		return "OK", []values.Value{values.Int(v)}, nil
	}
	return "", nil, fmt.Errorf("e11: unknown op %q", op)
}

func (b *e11Bank) snapshot() map[string]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int64, len(b.bal))
	for k, v := range b.bal {
		out[k] = v
	}
	return out
}

func (b *e11Bank) restore(s map[string]int64) {
	b.mu.Lock()
	b.bal = s
	b.mu.Unlock()
}

// e11Node is one served replica: its bank state plus the channel server
// that exposes it, restartable after a crash.
type e11Node struct {
	host string
	net  *netsim.Network
	id   naming.InterfaceID
	bank *e11Bank

	mu   sync.Mutex
	srv  *channel.Server
	down bool
}

func (n *e11Node) start() error {
	l, err := n.net.Listen(naming.Endpoint("sim://" + n.host))
	if err != nil {
		return err
	}
	srv := channel.NewServer(l, channel.ServerConfig{ReplayGuard: true})
	if err := srv.Register(n.id, nil, n.bank); err != nil {
		l.Close()
		return err
	}
	srv.Start()
	n.mu.Lock()
	n.srv, n.down = srv, false
	n.mu.Unlock()
	return nil
}

func (n *e11Node) stop() {
	n.mu.Lock()
	srv := n.srv
	n.srv, n.down = nil, true
	n.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

func (n *e11Node) isDown() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// e11Script returns the fault timeline scaled to the run duration D:
//
//	0.15D  crash n2
//	0.30D  restart n2 (checkpoint recovery)
//	0.32D  latency spike + bandwidth squeeze on client–n2
//	0.38D  link restored
//	0.40D  crash n1  ┐ two-node outage: only the freshly
//	0.45D  crash n3  ┘ recovered n2 is alive
//	0.60D  restart n1
//	0.65D  restart n3  <- the last heal; recovery is measured from here
func e11Script(d time.Duration) (netsim.Script, time.Duration, time.Duration) {
	at := func(f float64) time.Duration { return time.Duration(f * float64(d)) }
	script := netsim.Script{
		{At: at(0.15), Fault: netsim.Fault{Kind: netsim.FaultCrash, A: "n2"}},
		{At: at(0.30), Fault: netsim.Fault{Kind: netsim.FaultRestart, A: "n2"}},
		{At: at(0.32), Fault: netsim.Fault{Kind: netsim.FaultLink, A: "client", B: "n2",
			Profile: netsim.LinkProfile{Latency: 20 * time.Millisecond, Bandwidth: 1 << 18}}},
		{At: at(0.38), Fault: netsim.Fault{Kind: netsim.FaultLinkClear, A: "client", B: "n2"}},
		{At: at(0.40), Fault: netsim.Fault{Kind: netsim.FaultCrash, A: "n1"}},
		{At: at(0.45), Fault: netsim.Fault{Kind: netsim.FaultCrash, A: "n3"}},
		{At: at(0.60), Fault: netsim.Fault{Kind: netsim.FaultRestart, A: "n1"}},
		{At: at(0.65), Fault: netsim.Fault{Kind: netsim.FaultRestart, A: "n3"}},
	}
	return script, at(0.15), at(0.65)
}

// e11Classify buckets an operation error by its sentinel chain — the
// uniform errors.Is taxonomy the policy layer guarantees.
func e11Classify(err error) string {
	switch {
	case errors.Is(err, policy.ErrCircuitOpen):
		return "circuit-open"
	case errors.Is(err, channel.ErrAttemptTimeout):
		return "attempt-timeout"
	case errors.Is(err, channel.ErrDisconnected):
		return "disconnected"
	case errors.Is(err, coordination.ErrEmptyGroup):
		return "empty-group"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "other"
	}
}

type e11Sample struct {
	at  time.Duration // offset of the op's start from the run's start
	lat time.Duration
	err error
}

// E11Chaos runs the bank workload for roughly the given duration under
// the fixed fault script and returns the report. policyOn selects the
// failure-policy configuration (budgeted retries, shared breakers,
// retained members with rejoin) versus the legacy fixed-retry one.
func E11Chaos(duration time.Duration, policyOn bool) (E11Report, error) {
	if duration < time.Second {
		duration = time.Second
	}
	net := netsim.New(411)
	m := mgmt.New()

	// --- the served replicas --------------------------------------------
	nodes := make(map[string]*e11Node, len(e11Hosts))
	for i, h := range e11Hosts {
		n := &e11Node{
			host: h,
			net:  net,
			id:   naming.InterfaceID{Nonce: uint64(100 + i)},
			bank: newE11Bank(),
		}
		if err := n.start(); err != nil {
			return E11Report{}, err
		}
		nodes[h] = n
	}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()

	// syncFrom copies a surviving replica's state into host — the
	// in-process stand-in for recovering the crashed replica's last
	// checkpoint plus the updates it missed.
	syncInto := func(host string) {
		for _, h := range e11Hosts {
			if h != host && !nodes[h].isDown() {
				nodes[host].bank.restore(nodes[h].bank.snapshot())
				return
			}
		}
	}

	// --- the client: one session manager, one binding per replica ------
	mgr := channel.NewSessionManager(net.From("client"))
	defer mgr.Close()
	mgr.Instrument(m.Sessions("client"))
	var chanBreakers, groupBreakers *policy.BreakerSet
	if policyOn {
		chanBreakers = policy.NewBreakerSet(policy.BreakerConfig{
			ConsecutiveFailures: 3,
			OpenFor:             200 * time.Millisecond,
		})
		chanBreakers.Instrument(m.Policy("client"))
		mgr.SetBreakers(chanBreakers)
	}

	group := coordination.NewReplicaGroup()
	group.Instrument(m.Group("bank"))
	defer group.Close()
	for _, h := range e11Hosts {
		cfg := channel.BindConfig{
			Transport: net.From("client"),
			Sessions:  mgr,
		}
		if policyOn {
			cfg.Policy = &policy.RetryPolicy{
				MaxAttempts:    2,
				AttemptTimeout: 100 * time.Millisecond,
				Budget:         250 * time.Millisecond,
				BaseBackoff:    10 * time.Millisecond,
				Jitter:         0.2,
				Seed:           17,
			}
		} else {
			// The legacy configuration this PR's bugfix replaced: fixed
			// retry count, a fresh full timeout per attempt, no pacing.
			cfg.MaxRetries = 3
			cfg.CallTimeout = 150 * time.Millisecond
		}
		b, err := channel.Bind(naming.InterfaceRef{
			ID:       nodes[h].id,
			Endpoint: naming.Endpoint("sim://" + h),
		}, cfg)
		if err != nil {
			return E11Report{}, err
		}
		if err := group.Add(h, b); err != nil {
			return E11Report{}, err
		}
	}
	if policyOn {
		groupBreakers = policy.NewBreakerSet(policy.BreakerConfig{
			ConsecutiveFailures: 2,
			OpenFor:             200 * time.Millisecond,
		})
		groupBreakers.Instrument(m.Policy("group"))
		group.SetMemberPolicy(&coordination.MemberPolicy{
			Breakers: groupBreakers,
			Retain:   true,
			OnRejoin: func(_ context.Context, name string, _ coordination.Invoker) error {
				syncInto(name)
				return nil
			},
		})
	}

	// --- the fault script -----------------------------------------------
	script, faultsAt, healAt := e11Script(duration)
	chaos := netsim.NewChaos(net, netsim.ChaosConfig{
		Seed: 411,
		Crash: func(h string) error {
			nodes[h].stop()
			return nil
		},
		Restart: func(h string) error {
			syncInto(h)
			return nodes[h].start()
		},
	}, script)

	// --- the workload -----------------------------------------------------
	accounts := []string{"a0", "a1", "a2", "a3"}
	var samples []e11Sample
	start := time.Now()
	chaos.Start()
	for i := 0; time.Since(start) < duration; i++ {
		opCtx, cancel := context.WithTimeout(context.Background(), 800*time.Millisecond)
		at := time.Since(start)
		var err error
		if i%4 == 3 {
			_, _, _, err = group.InvokeReadMeta(opCtx, "Balance",
				[]values.Value{values.Str(accounts[i%len(accounts)])})
		} else {
			_, _, err = group.Invoke(opCtx, "Deposit",
				[]values.Value{values.Str(accounts[i%len(accounts)]), values.Int(1)})
		}
		lat := time.Since(start) - at
		cancel()
		samples = append(samples, e11Sample{at: at, lat: lat, err: err})
		time.Sleep(2 * time.Millisecond)
	}
	chaos.Stop()
	chaos.Advance(duration) // flush any faults the real-time driver missed

	// --- the report -------------------------------------------------------
	rep := E11Report{
		Mode:     map[bool]string{true: "policy-on", false: "policy-off"}[policyOn],
		Duration: duration,
		Errors:   make(map[string]int),
		Timeline: chaos.Timeline(),
	}
	var all, faults, healed []time.Duration
	okAll, okFaults, okHealed := 0, 0, 0
	nFaults, nHealed := 0, 0
	for _, s := range samples {
		rep.Ops++
		all = append(all, s.lat)
		inFaults := s.at >= faultsAt && s.at < healAt
		if inFaults {
			nFaults++
			faults = append(faults, s.lat)
		} else if s.at >= healAt {
			nHealed++
			healed = append(healed, s.lat)
		}
		if s.err != nil {
			rep.Failures++
			rep.Errors[e11Classify(s.err)]++
			continue
		}
		okAll++
		if inFaults {
			okFaults++
		} else if s.at >= healAt {
			okHealed++
		}
	}
	frac := func(ok, n int) float64 {
		if n == 0 {
			return 1
		}
		return float64(ok) / float64(n)
	}
	rep.Availability = frac(okAll, rep.Ops)
	rep.AvailabilityFaults = frac(okFaults, nFaults)
	rep.AvailabilityHealed = frac(okHealed, nHealed)
	rep.P99Overall = e11P99(all)
	rep.P99Faults = e11P99(faults)
	rep.P99Healed = e11P99(healed)

	// Time to recover: the fifth consecutive in-SLO success after the heal.
	rep.TimeToRecover = -1
	streak := 0
	for _, s := range samples {
		if s.at < healAt {
			continue
		}
		if s.err == nil && s.lat <= e11SLO {
			streak++
			if streak == 5 {
				rep.TimeToRecover = s.at + s.lat - healAt
				break
			}
		} else {
			streak = 0
		}
	}

	for _, bs := range []*policy.BreakerSet{chanBreakers, groupBreakers} {
		if bs == nil {
			continue
		}
		for _, st := range bs.Snapshot() {
			rep.BreakerOpens += st.Opens
			rep.BreakerRejected += st.Rejected
		}
	}
	rep.Retries = m.Registry.Counter("policy.client.retry.attempts").Load()
	rep.BackoffNs = m.Registry.Counter("policy.client.retry.backoff_ns").Load()
	gst := group.Stats()
	rep.SkippedLegs = gst.SkippedLegs
	rep.DegradedReads = gst.DegradedReads
	rep.MembersEnd = group.Size()

	// One degraded read, traced: the staleness flag is the marker span.
	for _, sp := range m.Tracer.Spans() {
		if strings.HasPrefix(sp.Name, "replica.read.stale:") {
			rep.StaleTrace = mgmt.RenderTrace(m.Tracer.Trace(sp.Trace))
			break
		}
	}
	return rep, nil
}

func e11P99(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*99)/100]
}
