package experiments

import (
	"strings"
	"testing"
)

func TestE9Overhead(t *testing.T) { runAll(t, E9Overhead()) }

// TestE9TracedTransfer is the acceptance check for the management
// subsystem: one replicated, transactional bank deposit must leave a
// single trace crossing every instrumented layer — client stub, binder,
// transport, server dispatch, at least one replica child and at least one
// transaction-participant child.
func TestE9TracedTransfer(t *testing.T) {
	spans, text, err := E9TracedTransfer()
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	classify := func(name string) string {
		for _, prefix := range []string{
			"stub:", "binder", "transport", "dispatch:",
			"replica.update:", "replica:",
			"tx.commit", "tx.prepare:", "tx.complete:",
		} {
			if strings.HasPrefix(name, prefix) {
				return prefix
			}
		}
		return ""
	}
	for _, s := range spans {
		if k := classify(s.Name); k != "" {
			kinds[k] = true
		}
	}
	for _, want := range []string{
		"stub:", "binder", "transport", "dispatch:", "replica:", "tx.prepare:",
	} {
		if !kinds[want] {
			t.Errorf("trace missing a %q span:\n%s", want, text)
		}
	}
	if len(kinds) < 6 {
		t.Fatalf("trace has %d span kinds, want >= 6:\n%s", len(kinds), text)
	}
	// Single trace, single tree: every span belongs to the deposit.
	for _, s := range spans {
		if s.Trace != spans[0].Trace {
			t.Fatalf("spans from different traces assembled together:\n%s", text)
		}
	}
	if !strings.Contains(text, "replica.update:Deposit") {
		t.Fatalf("rendered trace missing the update root:\n%s", text)
	}
}
