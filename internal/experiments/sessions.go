// E10: session multiplexing. The session layer claims that bindings are
// cheap and connections are the scarce resource — N bindings from one
// client to one node should cost one transport session (one connection,
// one dial, one read loop) in shared mode, against N of each when every
// binding owns a private session manager (the pre-session-layer shape).
// This experiment measures both modes as N grows: connections accepted by
// the server, dials performed by the client, heap per binding, and the
// p50/p99 invocation latency under concurrent load across all bindings.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/values"
)

// E10SessionRow is one (mode, binding count) measurement.
type E10SessionRow struct {
	Mode     string // "shared" (one manager) or "per-binding" (one manager each)
	Bindings int
	Conns    uint64 // connections the server accepted
	Dials    uint64 // dials the client side performed
	HeapPerB uint64 // process heap growth per binding, bytes (rough: includes both ends)
	P50, P99 time.Duration
}

// E10SessionScaling measures session multiplexing for each binding count
// in ns, in both modes, with callsPerBinding sequential invocations per
// binding running concurrently across bindings.
func E10SessionScaling(ns []int, callsPerBinding int) ([]E10SessionRow, error) {
	if callsPerBinding < 1 {
		callsPerBinding = 1
	}
	var rows []E10SessionRow
	for _, n := range ns {
		for _, mode := range []string{"per-binding", "shared"} {
			row, err := e10Row(mode, n, callsPerBinding)
			if err != nil {
				return rows, fmt.Errorf("e10 %s n=%d: %w", mode, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func e10Row(mode string, n, calls int) (E10SessionRow, error) {
	net := netsim.New(int64(9000 + n))
	// Per-binding mode dials n connections in a burst; keep the accept
	// backlog out of the measurement.
	net.SetAcceptBacklog(2 * n)
	l, err := net.Listen("sim://server")
	if err != nil {
		return E10SessionRow{}, err
	}
	srv := channel.NewServer(l, channel.ServerConfig{})
	defer srv.Close()
	id := naming.InterfaceID{Nonce: 10}
	err = srv.Register(id, nil, channel.HandlerFunc(
		func(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
			return "OK", args, nil
		}))
	if err != nil {
		return E10SessionRow{}, err
	}
	srv.Start()
	ref := naming.InterfaceRef{ID: id, Endpoint: "sim://server"}

	var shared *channel.SessionManager
	var managers []*channel.SessionManager
	if mode == "shared" {
		shared = channel.NewSessionManager(net.From("client"))
		defer shared.Close()
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	bindings := make([]*channel.Binding, n)
	for i := range bindings {
		cfg := channel.BindConfig{Sessions: shared}
		if shared == nil {
			m := channel.NewSessionManager(net.From("client"))
			managers = append(managers, m)
			cfg.Sessions = m
		}
		b, err := channel.Bind(ref, cfg)
		if err != nil {
			return E10SessionRow{}, err
		}
		defer b.Close()
		bindings[i] = b
	}
	// Establish every binding's session before measuring, concurrently (in
	// per-binding mode this is the n-dial burst itself).
	arg := []values.Value{values.Int(1)}
	if err := e10Fanout(bindings, 1, arg, nil); err != nil {
		return E10SessionRow{}, err
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	var heapPerB uint64
	if after.HeapAlloc > before.HeapAlloc {
		heapPerB = (after.HeapAlloc - before.HeapAlloc) / uint64(n)
	}

	// Latency under concurrent load across all bindings.
	durs := make([][]time.Duration, n)
	for i := range durs {
		durs[i] = make([]time.Duration, 0, calls)
	}
	if err := e10Fanout(bindings, calls, arg, durs); err != nil {
		return E10SessionRow{}, err
	}
	all := make([]time.Duration, 0, n*calls)
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	row := E10SessionRow{
		Mode:     mode,
		Bindings: n,
		Conns:    srv.Stats().Sessions,
		HeapPerB: heapPerB,
		P50:      all[len(all)/2],
		P99:      all[len(all)*99/100],
	}
	if shared != nil {
		row.Dials = shared.Stats().Dials
	} else {
		for _, m := range managers {
			row.Dials += m.Stats().Dials
		}
	}
	return row, nil
}

// E10SessionInvoke is the benchmark-shaped slice of E10: the cost of one
// invocation through a binding whose session is shared with {0, 63, 255}
// sibling bindings to the same node. It isolates the demux-table overhead
// on the hot path — the per-call price of multiplexing.
func E10SessionInvoke() []Scenario {
	var out []Scenario
	for _, n := range []int{1, 64, 256} {
		net := netsim.New(int64(9500 + n))
		net.SetAcceptBacklog(2 * n)
		l, err := net.Listen("sim://server")
		must(err)
		srv := channel.NewServer(l, channel.ServerConfig{})
		id := naming.InterfaceID{Nonce: 10}
		must(srv.Register(id, nil, channel.HandlerFunc(
			func(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
				return "OK", args, nil
			})))
		srv.Start()
		ref := naming.InterfaceRef{ID: id, Endpoint: "sim://server"}
		mgr := channel.NewSessionManager(net.From("client"))
		bindings := make([]*channel.Binding, n)
		for i := range bindings {
			b, err := channel.Bind(ref, channel.BindConfig{Sessions: mgr})
			must(err)
			bindings[i] = b
		}
		ctx := context.Background()
		arg := []values.Value{values.Int(1)}
		// Touch every binding once so the whole fleet is attached to the one
		// session before measuring.
		must(e10Fanout(bindings, 1, arg, nil))
		b0, srv0, all := bindings[0], srv, bindings
		out = append(out, Scenario{
			Name: fmt.Sprintf("session-invoke/siblings=%d", n),
			Run: func() error {
				_, _, err := b0.Invoke(ctx, "Echo", arg)
				return err
			},
			Close: func() {
				for _, b := range all {
					b.Close()
				}
				mgr.Close()
				srv0.Close()
			},
		})
	}
	return out
}

// e10Fanout runs calls sequential invocations on every binding, all
// bindings concurrently, optionally recording per-call durations into
// durs[i].
func e10Fanout(bindings []*channel.Binding, calls int, arg []values.Value, durs [][]time.Duration) error {
	ctx := context.Background()
	errs := make(chan error, len(bindings))
	var wg sync.WaitGroup
	for i, b := range bindings {
		wg.Add(1)
		go func(i int, b *channel.Binding) {
			defer wg.Done()
			for j := 0; j < calls; j++ {
				start := time.Now()
				if _, _, err := b.Invoke(ctx, "Echo", arg); err != nil {
					errs <- err
					return
				}
				if durs != nil {
					durs[i] = append(durs[i], time.Since(start))
				}
			}
		}(i, b)
	}
	wg.Wait()
	close(errs)
	return <-errs
}
