// Scaling scenarios for the fan-out experiments: where E6–E8 measure the
// cost of one interaction, these measure how that cost grows with the
// number of parties — replica count, participant count, offer population
// and federation width. They run over the simulated network with nonzero
// per-link latency (or, for 2PC, a nonzero forced-log delay), because that
// is where the sum-vs-max distinction between serial and concurrent
// fan-out actually shows.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bank"
	"repro/internal/channel"
	"repro/internal/coordination"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/trader"
	"repro/internal/transactions"
	"repro/internal/typerepo"
	"repro/internal/types"
	"repro/internal/values"
)

// ReplicaLatency is the one-way per-link delay used by the replication
// scaling scenarios: large against the base invocation cost, small enough
// to keep benchmark runs short.
const ReplicaLatency = 200 * time.Microsecond

// ForcedLogDelay models the forced (synchronous) log write each 2PC
// participant performs in Prepare and Commit — the cost that makes
// two-phase commit expensive in real deployments, where the in-memory
// stores of E7 hide it.
const ForcedLogDelay = 50 * time.Microsecond

// E6ReplicationScaling measures one group update against replica count
// over the simulated network with ReplicaLatency on every link. A serial
// sequencer pays Σ(replica round trips); a concurrent one pays
// max(replica round trips) plus the sequencing overhead.
func E6ReplicationScaling() []Scenario {
	var out []Scenario
	for _, r := range []int{1, 3, 5, 9} {
		net := netsim.New(int64(300 + r))
		net.SetDefaultLink(netsim.LinkProfile{Latency: ReplicaLatency})
		g := coordination.NewReplicaGroup()
		var servers []*channel.Server
		for i := 0; i < r; i++ {
			host := fmt.Sprintf("rep%d", i)
			l, err := net.Listen(naming.Endpoint("sim://" + host))
			must(err)
			srv := channel.NewServer(l, channel.ServerConfig{})
			id := naming.InterfaceID{Nonce: uint64(1000 + i)}
			must(srv.Register(id, e6CounterType(), &e6Counter{}))
			srv.Start()
			servers = append(servers, srv)
			b, err := channel.Bind(naming.InterfaceRef{
				ID: id, TypeName: "Counter", Endpoint: l.Endpoint(),
			}, channel.BindConfig{Transport: net.From("client")})
			must(err)
			must(g.Add(host, b))
		}
		ctx := context.Background()
		arg := []values.Value{values.Int(1)}
		group, srvs := g, servers
		out = append(out, Scenario{
			Name: fmt.Sprintf("replication-latent/r=%d", r),
			Run: func() error {
				_, _, err := group.Invoke(ctx, "Inc", arg)
				return err
			},
			Close: func() {
				group.Close()
				for _, s := range srvs {
					s.Close()
				}
			},
		})
	}
	return out
}

// forcedParticipant wraps a transactional resource with the forced-log
// delay a durable participant pays in each phase of 2PC.
type forcedParticipant struct {
	inner transactions.Participant
	delay time.Duration
}

func (f forcedParticipant) Name() string { return f.inner.Name() }

func (f forcedParticipant) Prepare(txID uint64) error {
	time.Sleep(f.delay)
	return f.inner.Prepare(txID)
}

func (f forcedParticipant) Commit(txID uint64) error {
	time.Sleep(f.delay)
	return f.inner.Commit(txID)
}

func (f forcedParticipant) Abort(txID uint64) error { return f.inner.Abort(txID) }

// E7DurableCommit measures commit latency against participant count when
// every participant's Prepare and Commit forces a (simulated) log write of
// ForcedLogDelay. Serial 2PC pays 2·n·delay; concurrent phases pay
// 2·delay regardless of n.
func E7DurableCommit() []Scenario {
	var out []Scenario
	for _, parts := range []int{1, 2, 4, 8} {
		coord := transactions.NewCoordinator()
		stores := make([]*transactions.Store, parts)
		wrapped := make([]transactions.Participant, parts)
		for i := range stores {
			stores[i] = transactions.NewStore(fmt.Sprintf("d%d", i), nil)
			wrapped[i] = forcedParticipant{inner: stores[i], delay: ForcedLogDelay}
		}
		ctx := context.Background()
		n := 0
		p := parts
		out = append(out, Scenario{
			Name: fmt.Sprintf("durable-commit/participants=%d", p),
			Run: func() error {
				tx := coord.Begin(ctx)
				n++
				key := fmt.Sprintf("k%d", n%128)
				for _, s := range stores {
					if err := tx.Write(s, key, values.Int(int64(n))); err != nil {
						return err
					}
				}
				// Re-enlist each store behind its forced-log wrapper (same
				// participant name, so it replaces the raw store) so the
				// delay applies to the prepare/commit the store performs.
				for _, w := range wrapped {
					if err := tx.Enlist(w); err != nil {
						return err
					}
				}
				return tx.Commit()
			},
			Close: func() {},
		})
	}
	return out
}

// scalingServiceType builds an interface type unique to index i, so the 50
// populations of E8TraderScaling are mutually non-substitutable and the
// indexed store can prove it prunes whole buckets.
func scalingServiceType(i int) *types.Interface {
	op := fmt.Sprintf("Svc%dOp", i)
	return types.OpInterface(fmt.Sprintf("Svc%d", i),
		types.Op(op, types.Params(types.P("x", values.TInt())),
			types.Term("OK", types.P("r", values.TInt()))),
	)
}

// E8TraderScaling measures import cost over a population of 10 000 offers
// spread evenly across 50 mutually unrelated service types. A full-scan
// matcher examines all 10 000 offers per import; a type-indexed store
// examines only the requested type's bucket (200 offers).
func E8TraderScaling() []Scenario {
	const (
		offers       = 10_000
		serviceTypes = 50
	)
	repo := typerepo.New()
	for i := 0; i < serviceTypes; i++ {
		must(repo.RegisterInterface(scalingServiceType(i)))
	}
	t := trader.New("big", repo)
	for i := 0; i < offers; i++ {
		st := fmt.Sprintf("Svc%d", i%serviceTypes)
		_, err := t.Export(st, naming.InterfaceRef{
			ID:       naming.InterfaceID{Nonce: uint64(i + 1)},
			TypeName: st,
			Endpoint: "sim://x",
		}, values.Record(values.F("queue", values.Int(int64((i/serviceTypes)%10)))))
		must(err)
	}
	tt := t
	return []Scenario{{
		Name: fmt.Sprintf("import/offers=%d/types=%d", offers, serviceTypes),
		Run: func() error {
			got, err := tt.Import(trader.ImportRequest{
				ServiceType: "Svc7",
				Constraint:  "queue < 5",
			})
			if err != nil || len(got) != offers/serviceTypes/2 {
				return fmt.Errorf("import: %d offers, %v", len(got), err)
			}
			return nil
		},
		Close: func() {},
	}}
}

// E8FederationParallel measures a federated import across four linked
// traders, each reached over a channel with ReplicaLatency per direction.
// Serial federation pays Σ(link round trips); concurrent federation pays
// max(link round trips).
func E8FederationParallel() []Scenario {
	const links = 4
	repo := typerepo.New()
	must(repo.RegisterInterface(bank.TellerType()))
	must(repo.RegisterInterface(bank.ManagerType()))

	net := netsim.New(77)
	net.SetDefaultLink(netsim.LinkProfile{Latency: ReplicaLatency})
	origin := trader.New("origin", repo)
	var servers []*channel.Server
	var remotes []*trader.Remote
	for i := 0; i < links; i++ {
		rt := trader.New(fmt.Sprintf("fed%d", i), repo)
		for j := 0; j < 5; j++ {
			_, err := rt.Export("BankTeller", naming.InterfaceRef{
				ID:       naming.InterfaceID{Nonce: uint64(100*i + j + 1)},
				TypeName: "BankTeller",
				Endpoint: "sim://x",
			}, values.Record(values.F("queue", values.Int(int64(j)))))
			must(err)
		}
		host := fmt.Sprintf("fed%d", i)
		l, err := net.Listen(naming.Endpoint("sim://" + host))
		must(err)
		srv := channel.NewServer(l, channel.ServerConfig{})
		id := naming.InterfaceID{Nonce: uint64(2000 + i)}
		must(srv.Register(id, trader.InterfaceType(), &trader.Servant{T: rt}))
		srv.Start()
		servers = append(servers, srv)
		b, err := channel.Bind(naming.InterfaceRef{
			ID: id, TypeName: "odp.Trader", Endpoint: l.Endpoint(),
		}, channel.BindConfig{Transport: net.From("client")})
		must(err)
		remote := trader.NewRemote(b)
		remotes = append(remotes, remote)
		origin.Link(host, remote)
	}
	srvs, rems := servers, remotes
	return []Scenario{{
		Name: fmt.Sprintf("import/federated-latent/links=%d", links),
		Run: func() error {
			got, err := origin.Import(trader.ImportRequest{
				ServiceType: "BankTeller",
				MaxHops:     1,
			})
			if err != nil || len(got) != links*5 {
				return fmt.Errorf("federated import: %d offers, %v", len(got), err)
			}
			return nil
		},
		Close: func() {
			for _, r := range rems {
				r.Close()
			}
			for _, s := range srvs {
				s.Close()
			}
		},
	}}
}
