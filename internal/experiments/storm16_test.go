package experiments

import (
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// TestE16Smoke is the CI gate on the self-healing layer: with recovery
// on, a chaos-crashed trader replica is failed over (standby promoted,
// offers re-replicated, zero lost lookups) and a crashed victim host's
// objects are rescued onto the spare node — availability through the
// whole storm stays above 99% and no object is left dark. With recovery
// off, the same script leaves the victims permanently dead: the
// degradation must be measurable, or the recovery controller isn't
// buying anything. The run must also wind down cleanly — detector
// loops, controller worker, chaos driver, servers, sessions.
func TestE16Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("storm run takes ~1s of wall clock")
	}
	if raceEnabled {
		// Every gate below is a timing claim (availability through a
		// wall-clock window, time-to-recover); the race scheduler slows
		// execution ~10x and distorts them all. The health machinery
		// itself is race-covered in internal/health and internal/odp.
		t.Skip("E16 gates wall-clock timing; skipped under the race detector")
	}
	defer leakcheck.Guard(t, 2, 5*time.Second)()

	res, err := E16(true)
	if err != nil {
		t.Fatal(err)
	}
	on, off := res.On, res.Off

	// Recovery on: the self-healing claims.
	if on.Availability < 0.99 {
		t.Fatalf("recovery-on availability = %.4f, want >= 0.99 (%d probes, %d failures)",
			on.Availability, on.Probes, on.Failures)
	}
	if on.LostLookups != 0 {
		t.Fatalf("recovery-on lost lookups = %d, want 0 (shard failover must be invisible)", on.LostLookups)
	}
	if on.DeadObjects != 0 {
		t.Fatalf("recovery-on dead objects = %d, want 0 (victims must be rescued)", on.DeadObjects)
	}
	if on.Rescues == 0 {
		t.Fatal("recovery-on performed no rescues — the victim host was never failed over")
	}
	if on.GroupSize != 2 {
		t.Fatalf("trader replica group size = %d, want 2 (standby promotion failed)", on.GroupSize)
	}
	if on.RecoveryFailures != 0 {
		t.Fatalf("recovery actions failed %d times", on.RecoveryFailures)
	}
	if on.Readmissions == 0 {
		t.Fatal("no breaker-gated readmission — the restart path never ran")
	}
	if on.TimeToDead <= 0 || on.TimeToRecover <= 0 {
		t.Fatalf("detection/recovery never timed: ttDead=%v ttRecover=%v", on.TimeToDead, on.TimeToRecover)
	}
	if on.Migrations < 100 {
		t.Fatalf("only %d live relocations — not a storm", on.Migrations)
	}
	if on.RingRebalances < 2 {
		t.Fatalf("ring rebalances = %d, want >= 2 (mid-storm shard churn)", on.RingRebalances)
	}

	// Recovery off: the control. Same script, no acting half — the
	// victims stay dark and availability visibly degrades.
	if off.DeadObjects == 0 {
		t.Fatal("recovery-off left no dead objects — the storm isn't lethal enough to need recovery")
	}
	if off.Rescues != 0 {
		t.Fatalf("recovery-off performed %d rescues", off.Rescues)
	}
	if off.Availability >= on.Availability {
		t.Fatalf("recovery-off availability %.4f >= recovery-on %.4f — recovery bought nothing",
			off.Availability, on.Availability)
	}
	if off.TimeToRecover >= 0 {
		t.Fatalf("recovery-off reported a recovery at %v", off.TimeToRecover)
	}
}
