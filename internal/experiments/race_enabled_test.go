//go:build race

package experiments

// raceEnabled reports that the race detector is instrumenting this test
// binary; timing-sensitive experiment gates consult it.
const raceEnabled = true
