package experiments

// Record is the unified machine-readable shape every experiment can
// flatten into: one measurement, identified by experiment and scenario,
// with numeric parameters and headline metrics. odpbench -json emits a
// single array of these so BENCH files for any PR can be generated (and
// gated with line-oriented tools) without per-experiment parsers.
type Record struct {
	Experiment string             `json:"experiment"`
	Scenario   string             `json:"scenario"`
	Params     map[string]float64 `json:"params,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}
