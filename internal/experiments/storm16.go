// E16: the migration storm — the self-healing layer under WAN chaos.
// PR 10 added the sensing/acting split (internal/health: failure
// detector + recovery controller) and the WAN vocabulary (composable
// link profiles, federated domains in the chaos harness). E16 turns
// both on at once and measures whether the §9 failure and migration
// transparencies actually hold end to end:
//
//   - a fleet of live objects is relocated hundreds of times across an
//     asymmetric, lossy WAN link while client traffic flows — the
//     migration path (checkpoint, install-before-withdraw, relocator
//     epoch fencing, binding re-resolution) under the worst network the
//     sim can produce;
//   - a trader shard backed by a ReplicaGroup loses one replica to a
//     scripted crash; the recovery controller notices (detector →
//     transition → plan) and promotes a standby: drop the dead member,
//     re-replicate its offers from the survivor through the same
//     Import/Install enumeration the live rebalance uses, re-admit.
//     Zero lost lookups is the gate — the failover must be invisible;
//   - a whole victim host dies with live objects on it; recovery
//     re-instantiates its clusters from stashed checkpoints on a spare
//     node, and the victims' bindings re-resolve — availability through
//     the storm stays above the gate. The same script with recovery
//     off leaves the victims permanently dark: the contrast is the
//     point (failure transparency is a prescribed property, and this
//     is the machinery the prescription buys);
//   - mid-storm the trader ring itself rebalances (a shard joins, a
//     shard drains away) so the epoch-fenced migration path runs
//     concurrently with the health-driven failover.
//
// Blackout is measured per object: the longest gap between consecutive
// successful probes that overlaps the storm. Time-to-suspect /
// time-to-dead / time-to-recover are measured from the chaos harness's
// crash instant to the detector's transition and the recovery plan's
// completion.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/coordination"
	"repro/internal/engineering"
	"repro/internal/health"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/relocator"
	"repro/internal/trader"
	"repro/internal/values"
)

// E16Config parameterises one storm run.
type E16Config struct {
	Objects    int           // live objects in the migration storm (w1/e0/e1)
	Victims    int           // live objects pinned to the victim host w0
	Migrations int           // storm relocations across the WAN
	Services   int           // trader service types under probe
	WANScale   float64       // scales the composed WAN profile's delays
	Unit       time.Duration // chaos timeline unit (faults at small multiples)
	Tail       time.Duration // post-storm probe window (closes trailing gaps)
	Recovery   bool          // wire the controller (false = sense but never act)
	Seed       int64
}

func (c E16Config) withDefaults() E16Config {
	if c.Objects < 1 {
		c.Objects = 24
	}
	if c.Victims < 1 {
		c.Victims = 3
	}
	if c.Migrations < 1 {
		c.Migrations = 120
	}
	if c.Services < 1 {
		c.Services = 24
	}
	if c.WANScale <= 0 {
		c.WANScale = 0.05
	}
	if c.Unit <= 0 {
		c.Unit = 4 * time.Millisecond
	}
	if c.Tail <= 0 {
		c.Tail = 120 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 16777
	}
	return c
}

// E16Report is one mode's measurement.
type E16Report struct {
	Mode       string // "recovery-on" or "recovery-off"
	Objects    int    // probed objects (storm pool + victims)
	Migrations uint64 // storm relocations completed
	Rescues    uint64 // victim clusters re-instantiated by recovery

	Probes       uint64  // successful object probes in the window
	Failures     uint64  // failed object probes in the window
	Availability float64 // Probes / (Probes + Failures)
	MaxBlackout  time.Duration
	MeanBlackout time.Duration // mean of per-object worst gaps
	DeadObjects  int           // objects with no success in the final tail

	TraderLookups uint64 // trader imports attempted in the window
	LostLookups   uint64 // imports that errored or found nothing

	TimeToSuspect time.Duration // worst across the crashed endpoints
	TimeToDead    time.Duration
	TimeToRecover time.Duration // crash → recovery plan completed (-1 if never)

	RecoveryActions  uint64
	RecoveryFailures uint64
	Readmissions     uint64 // breaker-gated heal actions (the restart path)
	GroupSize        int    // trader replica group members at the end
	RingRebalances   uint64 // trader ring epoch changes during the storm
	ChaosEvents      int
	Window           time.Duration
}

// E16Result pairs the two modes of one storm.
type E16Result struct {
	On  E16Report
	Off E16Report
}

// E16 runs the storm twice — recovery on, then the same script with the
// controller disconnected — so the report carries its own control.
func E16(smoke bool) (E16Result, error) {
	cfg := E16Config{}
	if !smoke {
		cfg = E16Config{Objects: 48, Victims: 6, Migrations: 400, Services: 32,
			WANScale: 0.1, Unit: 6 * time.Millisecond, Tail: 200 * time.Millisecond}
	}
	var res E16Result
	var err error
	cfg.Recovery = true
	if res.On, err = E16MigrationStorm(cfg); err != nil {
		return res, fmt.Errorf("e16 recovery-on: %w", err)
	}
	cfg.Recovery = false
	if res.Off, err = E16MigrationStorm(cfg); err != nil {
		return res, fmt.Errorf("e16 recovery-off: %w", err)
	}
	return res, nil
}

// e16Object is one probed live object.
type e16Object struct {
	name    string
	binding *channel.Binding
	cluster *engineering.Cluster // current engineering realisation (storm pool)
	at      int                  // index into the storm capsule ring
}

// E16MigrationStorm runs one mode of the storm.
func E16MigrationStorm(cfg E16Config) (E16Report, error) {
	cfg = cfg.withDefaults()
	rep := E16Report{Mode: "recovery-off", TimeToRecover: -1,
		TimeToSuspect: -1, TimeToDead: -1}
	if cfg.Recovery {
		rep.Mode = "recovery-on"
	}

	net := netsim.New(cfg.Seed)
	reloc := relocator.New()

	// --- engineering fleet: two WAN domains plus a standby spare -------
	var nodes []*engineering.Node
	mkNode := func(host string) (*engineering.Node, error) {
		n, err := engineering.NewNode(engineering.NodeConfig{
			ID:        naming.NodeID(host),
			Endpoint:  naming.Endpoint("sim://" + host),
			Transport: net.From(host),
			Locations: reloc,
		})
		if err != nil {
			return nil, err
		}
		n.Behaviors().Register("counter", func(values.Value) (engineering.Behavior, error) {
			return &e6Counter{}, nil
		})
		nodes = append(nodes, n)
		return n, nil
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	hosts := []string{"w0", "w1", "e0", "e1", "spare"}
	capsules := make(map[string]*engineering.Capsule, len(hosts))
	for _, h := range hosts {
		n, err := mkNode(h)
		if err != nil {
			return rep, err
		}
		c, err := n.CreateCapsule()
		if err != nil {
			return rep, err
		}
		capsules[h] = c
	}
	// The storm pool migrates around this ring; w0 is never a member —
	// its objects are the victims, owned by recovery alone.
	ring := []string{"w1", "e0", "e1"}

	deploy := func(host, name string) (*engineering.Cluster, naming.InterfaceRef, error) {
		cl, err := capsules[host].CreateCluster(engineering.ClusterOptions{})
		if err != nil {
			return nil, naming.InterfaceRef{}, err
		}
		obj, err := cl.CreateObject("counter", values.Null())
		if err != nil {
			return nil, naming.InterfaceRef{}, err
		}
		ref, err := obj.AddInterface(e6CounterType())
		if err != nil {
			return nil, naming.InterfaceRef{}, err
		}
		return cl, ref, nil
	}

	var bindings []*channel.Binding
	defer func() {
		for _, b := range bindings {
			b.Close()
		}
	}()
	bind := func(ref naming.InterfaceRef) (*channel.Binding, error) {
		b, err := channel.Bind(ref, channel.BindConfig{
			Transport:   net.From("client"),
			Locator:     reloc,
			MaxRetries:  3,
			CallTimeout: 20 * time.Millisecond,
		})
		if err == nil {
			bindings = append(bindings, b)
		}
		return b, err
	}

	var objects []*e16Object // storm pool first, then victims
	for i := 0; i < cfg.Objects; i++ {
		at := i % len(ring)
		cl, ref, err := deploy(ring[at], fmt.Sprintf("obj%02d", i))
		if err != nil {
			return rep, err
		}
		b, err := bind(ref)
		if err != nil {
			return rep, err
		}
		objects = append(objects, &e16Object{name: fmt.Sprintf("obj%02d", i), binding: b, cluster: cl, at: at})
	}
	var victimClusters []*engineering.Cluster
	for i := 0; i < cfg.Victims; i++ {
		cl, ref, err := deploy("w0", fmt.Sprintf("vic%02d", i))
		if err != nil {
			return rep, err
		}
		b, err := bind(ref)
		if err != nil {
			return rep, err
		}
		objects = append(objects, &e16Object{name: fmt.Sprintf("vic%02d", i), binding: b})
		victimClusters = append(victimClusters, cl)
	}
	rep.Objects = len(objects)

	// --- trader fleet: plain shards + one replica-group shard ----------
	repo := e13Repo(cfg.Services)
	fe := trader.NewSharded("fe", repo, 0)
	var srvs []*channel.Server
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
		for _, s := range srvs {
			s.Close()
		}
	}()
	newTraderNode := func(host, traderName string, nonce uint64) (*channel.Binding, error) {
		l, err := net.Listen(naming.Endpoint("sim://" + host))
		if err != nil {
			return nil, err
		}
		srv := channel.NewServer(l, channel.ServerConfig{})
		id := naming.InterfaceID{Nonce: nonce}
		if err := srv.Register(id, nil, &trader.Servant{T: trader.New(traderName, repo)}); err != nil {
			return nil, err
		}
		srv.Start()
		srvs = append(srvs, srv)
		b, err := channel.Bind(naming.InterfaceRef{ID: id, Endpoint: naming.Endpoint("sim://" + host)},
			channel.BindConfig{Transport: net.From("fe")})
		if err == nil {
			closers = append(closers, func() { b.Close() })
		}
		return b, err
	}
	addPlainShard := func(i int) error {
		b, err := newTraderNode(fmt.Sprintf("t%d", i), fmt.Sprintf("s%d", i), uint64(100+i))
		if err != nil {
			return err
		}
		return fe.AddShard(fmt.Sprintf("s%d", i), trader.NewRemote(b))
	}
	if err := addPlainShard(0); err != nil {
		return rep, err
	}
	if err := addPlainShard(2); err != nil {
		return rep, err
	}
	// Shard s1 is a replica group: rep0 + rep1 serving, rep2 a warm
	// standby outside the group (same trader name, so re-replicated
	// offers keep their ids). The chaos script kills rep0.
	group := coordination.NewReplicaGroup()
	for r := 0; r < 2; r++ {
		b, err := newTraderNode(fmt.Sprintf("rep%d", r), "sg", uint64(200+r))
		if err != nil {
			return rep, err
		}
		if err := group.Add(fmt.Sprintf("rep%d", r), b); err != nil {
			return rep, err
		}
	}
	tg := coordination.NewTradingGroup(group)
	if err := fe.AddShard("s1", tg); err != nil {
		return rep, err
	}
	standbyBinding, err := newTraderNode("rep2", "sg", 202)
	if err != nil {
		return rep, err
	}
	standby := trader.NewRemote(standbyBinding)

	for i := 0; i < cfg.Services; i++ {
		if _, err := fe.Export(e13TypeName(i),
			e13Ref(uint64(5000+i), e13TypeName(i), "sim://nowhere"), values.Null()); err != nil {
			return rep, err
		}
	}

	// --- self-healing layer --------------------------------------------
	crashMu := sync.Mutex{}
	crashAt := map[string]time.Time{}
	suspectAt := map[string]time.Time{}
	deadAt := map[string]time.Time{}
	recoveredAt := map[string]time.Time{}
	stamp := func(m map[string]time.Time, ep string) {
		crashMu.Lock()
		if _, dup := m[ep]; !dup {
			m[ep] = time.Now()
		}
		crashMu.Unlock()
	}

	breakers := policy.NewBreakerSet(policy.BreakerConfig{
		ConsecutiveFailures: 1,
		OpenFor:             4 * cfg.Unit,
	})
	ctl := health.NewController(health.ControllerConfig{
		Breakers:   breakers,
		RetryDelay: time.Millisecond,
	})
	defer ctl.Close()

	// rep0's plan: the automatic shard failover. Drop the dead member,
	// re-replicate the shard's offers from the survivor through the same
	// Import/Install path the live rebalance uses, promote the standby.
	ctl.SetPlan("rep0", health.Plan{
		OnDead: func(ctx context.Context, ep string) error {
			breakers.For(ep).Record(false)
			// The group's default member policy may already have dropped
			// the dead member when a fanned-out call failed; the plan's
			// removal only has to make sure it is gone.
			if err := group.Remove("rep0"); err != nil && !errors.Is(err, coordination.ErrNoSuchGroup) {
				return err
			}
			for i := 0; i < cfg.Services; i++ {
				offers, err := tg.Import(trader.ImportRequest{ServiceType: e13TypeName(i)})
				if err != nil {
					return fmt.Errorf("re-replicate %s: %w", e13TypeName(i), err)
				}
				for _, o := range offers {
					if err := standby.Install(o); err != nil {
						return fmt.Errorf("install %s on standby: %w", o.ID, err)
					}
				}
			}
			if err := group.Add("rep2", standbyBinding); err != nil {
				return err
			}
			stamp(recoveredAt, ep)
			return nil
		},
	})
	// w0's plan: the victim rescue. Re-instantiate each stashed cluster
	// checkpoint on the spare node — interface identities survive, the
	// relocator fences a new epoch, and the victims' bindings re-resolve.
	var stash []*engineering.ClusterCheckpoint
	var rescues atomic.Uint64
	ctl.SetPlan("w0", health.Plan{
		OnDead: func(ctx context.Context, ep string) error {
			breakers.For(ep).Record(false)
			crashMu.Lock()
			cks := stash
			stash = nil
			crashMu.Unlock()
			for _, ck := range cks {
				if _, err := capsules["spare"].Instantiate(ck, engineering.ClusterOptions{}); err != nil {
					return err
				}
				rescues.Add(1)
			}
			stamp(recoveredAt, ep)
			return nil
		},
		// The host comes back near the end of the script; re-admission is
		// an administrative acknowledgement, gated by the breaker so a
		// flapping host is re-admitted at most once per open interval.
		OnAlive: func(ctx context.Context, ep string) error { return nil },
	})
	ctl.SetFallbackPlan(health.Plan{})

	det := health.New(health.Config{
		Interval:     cfg.Unit / 4,
		MinTimeout:   cfg.Unit,
		SuspectAfter: 2,
		DeadAfter:    4,
		OnTransition: func(t health.Transition) {
			switch t.To {
			case health.Suspect:
				stamp(suspectAt, t.Endpoint)
			case health.Dead:
				stamp(deadAt, t.Endpoint)
			}
			if cfg.Recovery {
				ctl.Handle(t)
			}
		},
	})
	defer det.Close()
	for _, h := range []string{"w0", "w1", "e0", "e1", "spare", "t0", "t2", "rep0", "rep1", "rep2"} {
		host := h
		ep := naming.Endpoint("sim://" + host)
		err := det.Watch(host, func(ctx context.Context) (time.Duration, error) {
			start := time.Now()
			conn, err := net.DialFrom(ctx, "healthd", ep)
			if err != nil {
				return 0, err
			}
			conn.Close()
			return time.Since(start), nil
		})
		if err != nil {
			return rep, err
		}
	}

	// --- probers ---------------------------------------------------------
	var (
		gapMu    sync.Mutex
		lastSeen = make([]time.Time, len(objects))
		maxGap   = make([]time.Duration, len(objects))
		probes   atomic.Uint64
		failures atomic.Uint64
		stop     atomic.Bool
	)
	ctx := context.Background()
	arg := []values.Value{values.Int(1)}
	var wg sync.WaitGroup
	for i := range objects {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := objects[i].binding
			for !stop.Load() {
				_, _, err := b.Invoke(ctx, "Inc", arg)
				if err != nil {
					failures.Add(1)
					time.Sleep(time.Millisecond) // pace fast-fails
					continue
				}
				probes.Add(1)
				now := time.Now()
				gapMu.Lock()
				if !lastSeen[i].IsZero() {
					if gap := now.Sub(lastSeen[i]); gap > maxGap[i] {
						maxGap[i] = gap
					}
				}
				lastSeen[i] = now
				gapMu.Unlock()
				runtime.Gosched()
			}
		}(i)
	}
	var lookups, lost atomic.Uint64
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; !stop.Load(); i++ {
				lookups.Add(1)
				got, err := fe.Import(trader.ImportRequest{
					ServiceType: e13TypeName(i % cfg.Services), MaxMatches: 1})
				if err != nil || len(got) == 0 {
					lost.Add(1)
				}
				runtime.Gosched()
			}
		}(p)
	}

	// Warm up: every object answered once, every counter is live.
	for warm := false; !warm; {
		gapMu.Lock()
		warm = true
		for i := range lastSeen {
			if lastSeen[i].IsZero() {
				warm = false
				break
			}
		}
		gapMu.Unlock()
		runtime.Gosched()
	}
	// Stash the victim checkpoints recovery will rescue from, then zero
	// the window counters: only the storm counts.
	crashMu.Lock()
	for _, cl := range victimClusters {
		ck, err := cl.Checkpoint()
		if err != nil {
			crashMu.Unlock()
			stop.Store(true)
			wg.Wait()
			return rep, err
		}
		stash = append(stash, ck)
	}
	crashMu.Unlock()
	gapMu.Lock()
	for i := range maxGap {
		maxGap[i] = 0
	}
	gapMu.Unlock()
	probes.Store(0)
	failures.Store(0)
	lookups.Store(0)
	lost.Store(0)
	windowStart := time.Now()

	// --- the storm -------------------------------------------------------
	u := cfg.Unit
	wan := netsim.Scale(netsim.Compose(netsim.WANMetro, netsim.WANContinental,
		netsim.LinkProfile{DropRate: 0.004}), cfg.WANScale)
	wanBack := netsim.Scale(wan, 0.5) // asymmetric: the return path is faster
	chaos := netsim.NewChaos(net, netsim.ChaosConfig{
		Seed: cfg.Seed,
		Domains: map[string][]string{
			"west":    {"w0", "w1", "client"},
			"east":    {"e0", "e1"},
			"standby": {"spare"},
		},
		Crash: func(h string) error { stamp(crashAt, h); return nil },
		Restart: func(h string) error {
			l, err := net.Listen(naming.Endpoint("sim://" + h))
			if err != nil {
				return err
			}
			closers = append(closers, func() { l.Close() })
			go func() {
				for {
					c, err := l.Accept()
					if err != nil {
						return
					}
					c.Close()
				}
			}()
			return nil
		},
	}, netsim.Script{
		{At: 1 * u, Fault: netsim.Fault{Kind: netsim.FaultLink, A: "dom:west", B: "dom:east",
			Profile: wan, Reverse: &wanBack}},
		{At: 2 * u, Fault: netsim.Fault{Kind: netsim.FaultCrash, A: "rep0"}},
		{At: 5 * u, Fault: netsim.Fault{Kind: netsim.FaultCrash, A: "w0"}},
		{At: 8 * u, Fault: netsim.Fault{Kind: netsim.FaultPartition, A: "dom:standby", B: "dom:east"}},
		{At: 11 * u, Fault: netsim.Fault{Kind: netsim.FaultHeal, A: "dom:standby", B: "dom:east"}},
		{At: 14 * u, Fault: netsim.Fault{Kind: netsim.FaultRestart, A: "w0"}},
		{At: 16 * u, Fault: netsim.Fault{Kind: netsim.FaultLinkClear, A: "dom:west", B: "dom:east"}},
	})
	chaos.Start()

	// The relocation storm: every object in the pool keeps moving around
	// the ring, across the degraded WAN link, while its binding serves.
	pause := 16 * u / time.Duration(cfg.Migrations+1)
	var migrated uint64
	for m := 0; m < cfg.Migrations; m++ {
		o := objects[m%cfg.Objects]
		next := (o.at + 1) % len(ring)
		nk, err := o.cluster.MigrateTo(capsules[ring[next]])
		if err != nil {
			chaos.Stop()
			stop.Store(true)
			wg.Wait()
			return rep, fmt.Errorf("migration %d (%s): %w", m, o.name, err)
		}
		o.cluster, o.at = nk, next
		migrated++
		if m == cfg.Migrations/2 {
			// Mid-storm ring churn: a shard joins, a shard drains away
			// through the install-before-withdraw path — two ring epochs
			// on top of the health-driven failover.
			if err := addPlainShard(3); err != nil {
				chaos.Stop()
				stop.Store(true)
				wg.Wait()
				return rep, err
			}
			if err := fe.RemoveShard("s0"); err != nil {
				chaos.Stop()
				stop.Store(true)
				wg.Wait()
				return rep, err
			}
		}
		time.Sleep(pause)
	}
	for !chaos.Done() {
		time.Sleep(time.Millisecond)
	}
	chaos.Stop()

	// The tail: keep probing so trailing gaps close and dead objects show.
	tailStart := time.Now()
	time.Sleep(cfg.Tail)
	stop.Store(true)
	wg.Wait()
	rep.Window = time.Since(windowStart)

	// --- report ----------------------------------------------------------
	rep.Migrations = migrated
	rep.Rescues = rescues.Load()
	rep.Probes = probes.Load()
	rep.Failures = failures.Load()
	if rep.Probes+rep.Failures > 0 {
		rep.Availability = float64(rep.Probes) / float64(rep.Probes+rep.Failures)
	}
	gapMu.Lock()
	var sum time.Duration
	for i, g := range maxGap {
		if g > rep.MaxBlackout {
			rep.MaxBlackout = g
		}
		sum += g
		if lastSeen[i].Before(tailStart) {
			rep.DeadObjects++
		}
	}
	gapMu.Unlock()
	rep.MeanBlackout = sum / time.Duration(len(maxGap))
	rep.TraderLookups = lookups.Load()
	rep.LostLookups = lost.Load()

	// End-to-end check: every service type must still be importable.
	for i := 0; i < cfg.Services; i++ {
		got, err := fe.Import(trader.ImportRequest{ServiceType: e13TypeName(i), MaxMatches: 1})
		if err != nil || len(got) == 0 {
			rep.LostLookups++
		}
	}

	crashMu.Lock()
	for _, ep := range []string{"rep0", "w0"} {
		c, ok := crashAt[ep]
		if !ok {
			continue
		}
		if s, ok := suspectAt[ep]; ok && s.Sub(c) > rep.TimeToSuspect {
			rep.TimeToSuspect = s.Sub(c)
		}
		if d, ok := deadAt[ep]; ok && d.Sub(c) > rep.TimeToDead {
			rep.TimeToDead = d.Sub(c)
		}
		if r, ok := recoveredAt[ep]; ok && r.Sub(c) > rep.TimeToRecover {
			rep.TimeToRecover = r.Sub(c)
		}
	}
	crashMu.Unlock()

	st := ctl.Stats()
	rep.RecoveryActions = st.Actions
	rep.RecoveryFailures = st.Failures
	rep.Readmissions = st.Readmissions
	rep.GroupSize = group.Size()
	rep.RingRebalances = fe.ShardStats().Rebalances
	rep.ChaosEvents = len(chaos.Events())
	return rep, nil
}

// Records flattens the result into the unified benchmark-record shape.
func (r E16Result) Records() []Record {
	var out []Record
	for _, m := range []E16Report{r.On, r.Off} {
		out = append(out, Record{
			Experiment: "e16",
			Scenario:   m.Mode,
			Params: map[string]float64{
				"objects": float64(m.Objects),
			},
			Metrics: map[string]float64{
				"migrations":        float64(m.Migrations),
				"rescues":           float64(m.Rescues),
				"probes":            float64(m.Probes),
				"failures":          float64(m.Failures),
				"availability":      m.Availability,
				"max_blackout_us":   float64(m.MaxBlackout.Microseconds()),
				"mean_blackout_us":  float64(m.MeanBlackout.Microseconds()),
				"dead_objects":      float64(m.DeadObjects),
				"trader_lookups":    float64(m.TraderLookups),
				"lost_lookups":      float64(m.LostLookups),
				"tt_suspect_us":     float64(m.TimeToSuspect.Microseconds()),
				"tt_dead_us":        float64(m.TimeToDead.Microseconds()),
				"tt_recover_us":     float64(m.TimeToRecover.Microseconds()),
				"recovery_actions":  float64(m.RecoveryActions),
				"recovery_failures": float64(m.RecoveryFailures),
				"readmissions":      float64(m.Readmissions),
				"group_size":        float64(m.GroupSize),
				"ring_rebalances":   float64(m.RingRebalances),
				"chaos_events":      float64(m.ChaosEvents),
				"window_us":         float64(m.Window.Microseconds()),
			},
		})
	}
	return out
}
