// E12: invocation pipelining + adaptive frame batching. The session data
// plane claims that once many interrogations are in flight on one shared
// connection, the per-call cost should be dominated by the work, not the
// writes: the per-session sender goroutine coalesces whatever its queue
// holds into one vectored write, so syscalls per invocation fall as load
// rises while an isolated call still departs immediately (no delay
// timer). This experiment measures invocation throughput and latency
// across a (bindings × in-flight-per-binding) grid, with the batched data
// plane against the unbatched baseline (one write per frame, the
// pre-batching shape), on both transports.
//
// The two transports answer different questions. Real loopback TCP is
// where batching pays: a vectored write replaces N length-prefix +
// payload write pairs with one writev, so the batched/unbatched ratio at
// high concurrency is the headline number (and the CI gate). The
// simulated transport has no vectored path and its Send is a cheap
// in-memory enqueue, so E12/sim isolates just the pipelining change —
// decoupling callers from the wire via the send queue — and its ratio is
// expected to sit near 1×, not 2×.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/values"
)

// E12PipelineRow is one (transport, mode, bindings, in-flight) measurement.
// Modes:
//
//	batched    the full data plane of this PR: pipelined bindings
//	           (MaxInFlight=k) over the per-session sender goroutine.
//	unbatched  pipelined bindings, one write per frame — isolates the
//	           batching contribution.
//	serial     the unpipelined baseline: the same k workers per binding
//	           forced through MaxInFlight=1, one write per frame. This is
//	           the pre-pipelining shape a caller saw if it serialised its
//	           own calls per binding; the CI gate compares batched
//	           against it.
type E12PipelineRow struct {
	Transport string `json:"transport"` // "sim" or "tcp"
	Mode      string `json:"mode"`      // "batched", "unbatched" or "serial"
	Bindings  int    `json:"bindings"`
	InFlight  int    `json:"inflight"` // concurrent interrogations per binding
	Calls     int    `json:"calls"`    // total invocations measured
	// Throughput is invocations completed per second across the whole
	// fleet (the fleet shares one connection, so this is also the
	// per-connection rate).
	Throughput float64       `json:"throughput"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
}

// E12Pipeline measures the grid bindings × inflight in both data-plane
// modes on one transport. totalCalls is the per-cell invocation budget:
// each cell runs ~totalCalls invocations however many workers it has, so
// big cells do not take quadratically longer than small ones.
func E12Pipeline(transport string, bindings, inflight []int, totalCalls int) ([]E12PipelineRow, error) {
	if totalCalls < 1 {
		totalCalls = 1
	}
	var rows []E12PipelineRow
	for _, n := range bindings {
		for _, k := range inflight {
			modes := []string{"unbatched", "batched"}
			if k > 1 {
				// With one worker per binding "serial" measures the same
				// thing as "unbatched"; only a multi-worker cell has a
				// serialisation to remove.
				modes = []string{"serial", "unbatched", "batched"}
			}
			for _, mode := range modes {
				row, err := e12Cell(transport, mode, n, k, totalCalls)
				if err != nil {
					return rows, fmt.Errorf("e12 %s/%s n=%d k=%d: %w", transport, mode, n, k, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

func e12Cell(transport, mode string, n, k, totalCalls int) (E12PipelineRow, error) {
	unbatched := mode != "batched"
	maxInFlight := k
	if mode == "serial" {
		maxInFlight = 1
	}

	var (
		listener netsim.Listener
		clientT  netsim.Transport
		err      error
	)
	switch transport {
	case "sim":
		net := netsim.New(int64(12000 + n*100 + k))
		net.SetAcceptBacklog(2 * n)
		listener, err = net.Listen("sim://server")
		if err != nil {
			return E12PipelineRow{}, err
		}
		clientT = net.From("client")
	case "tcp":
		t := netsim.NewTCP()
		listener, err = t.Listen("tcp://127.0.0.1:0")
		if err != nil {
			return E12PipelineRow{}, err
		}
		clientT = t
	default:
		return E12PipelineRow{}, fmt.Errorf("unknown transport %q", transport)
	}

	srv := channel.NewServer(listener, channel.ServerConfig{Unbatched: unbatched})
	defer srv.Close()
	id := naming.InterfaceID{Nonce: 12}
	err = srv.Register(id, nil, channel.HandlerFunc(
		func(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
			return "OK", args, nil
		}))
	if err != nil {
		return E12PipelineRow{}, err
	}
	srv.Start()
	ref := naming.InterfaceRef{ID: id, Endpoint: listener.Endpoint()}

	mgr := channel.NewSessionManagerWithConfig(clientT, channel.SessionConfig{Unbatched: unbatched})
	defer mgr.Close()
	fleet := make([]*channel.Binding, n)
	for i := range fleet {
		// The in-flight cap equals the worker count (serial mode pins it to
		// 1), so the semaphore is exercised without ever rejecting (queue
		// mode, not FailFast).
		b, err := channel.Bind(ref, channel.BindConfig{Sessions: mgr, MaxInFlight: maxInFlight})
		if err != nil {
			return E12PipelineRow{}, err
		}
		defer b.Close()
		fleet[i] = b
	}

	arg := []values.Value{values.Int(1)}
	ctx := context.Background()
	// Attach every binding to the shared session before the clock starts.
	for _, b := range fleet {
		if _, _, err := b.Invoke(ctx, "Echo", arg); err != nil {
			return E12PipelineRow{}, err
		}
	}

	workers := n * k
	perWorker := totalCalls / workers
	if perWorker < 1 {
		perWorker = 1
	}
	calls := workers * perWorker
	durs := make([][]time.Duration, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := fleet[w%n]
			lat := make([]time.Duration, 0, perWorker)
			for j := 0; j < perWorker; j++ {
				t0 := time.Now()
				if _, _, err := b.Invoke(ctx, "Echo", arg); err != nil {
					errs <- err
					return
				}
				lat = append(lat, time.Since(t0))
			}
			durs[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return E12PipelineRow{}, err
	}

	all := make([]time.Duration, 0, calls)
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return E12PipelineRow{
		Transport:  transport,
		Mode:       mode,
		Bindings:   n,
		InFlight:   k,
		Calls:      calls,
		Throughput: float64(calls) / elapsed.Seconds(),
		P50:        all[len(all)/2],
		P99:        all[len(all)*99/100],
	}, nil
}
