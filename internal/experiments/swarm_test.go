package experiments

import (
	"testing"
	"time"
)

// TestE13GridRuns exercises the gated grid harness at a tiny scale: the
// point here is that every shard answers over channels and no import is
// lost, not the scaling ratio (that is the CI smoke gate's job).
func TestE13GridRuns(t *testing.T) {
	rows, err := E13Grid(E13GridConfig{
		ShardCounts:   []int{1, 2},
		Workers:       8,
		Tau:           50 * time.Microsecond,
		Types:         16,
		CallsBase:     100,
		CallsPerShard: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 || r.P99 <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
}

func TestE13SwarmSmall(t *testing.T) {
	rep, err := E13Swarm(E13SwarmConfig{
		Bindings: 4000, Hosts: 4, Nodes: 8, Services: 16, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bindings != 4000 {
		t.Fatalf("established %d of 4000 bindings", rep.Bindings)
	}
	if rep.LostLookups != 0 {
		t.Fatalf("%d lost lookups", rep.LostLookups)
	}
	// Each host dials at most one connection per server node; the swarm
	// must not scale connections with bindings.
	if rep.Conns == 0 || rep.Conns > 4*8 {
		t.Fatalf("conns = %d, want (0, 32]", rep.Conns)
	}
	if rep.CacheHitRate < 0.9 {
		t.Fatalf("cache hit rate = %.3f", rep.CacheHitRate)
	}
}

func TestE13BlackoutZeroMisses(t *testing.T) {
	rep, err := E13Blackout(32)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misses != 0 {
		t.Fatalf("%d probe misses during rebalance", rep.Misses)
	}
	if rep.Probes == 0 {
		t.Fatal("no probes ran")
	}
	// 3 setup AddShards plus the measured add + remove.
	if rep.Rebalances < 5 {
		t.Fatalf("rebalances = %d, want >= 5", rep.Rebalances)
	}
	if rep.Migrated == 0 {
		t.Fatal("ring changes migrated nothing")
	}
	if recs := (E13Report{Blackout: rep}).Records(); len(recs) != 2 {
		// grid empty -> swarm + blackout records
		t.Fatalf("records = %d", len(recs))
	}
}
