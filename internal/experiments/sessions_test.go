package experiments

import "testing"

func TestE10SessionScaling(t *testing.T) {
	rows, err := E10SessionScaling([]int{1, 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		switch r.Mode {
		case "shared":
			if r.Conns != 1 || r.Dials != 1 {
				t.Errorf("shared n=%d: conns=%d dials=%d, want 1/1", r.Bindings, r.Conns, r.Dials)
			}
		case "per-binding":
			if r.Conns != uint64(r.Bindings) || r.Dials != uint64(r.Bindings) {
				t.Errorf("per-binding n=%d: conns=%d dials=%d, want n/n", r.Bindings, r.Conns, r.Dials)
			}
		default:
			t.Errorf("unknown mode %q", r.Mode)
		}
		if r.P99 <= 0 || r.P50 <= 0 {
			t.Errorf("%s n=%d: zero latency percentiles", r.Mode, r.Bindings)
		}
	}
}
