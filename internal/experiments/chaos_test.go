package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// TestE11ChaosSmoke is the CI gate on the chaos experiment: a short run
// in policy-on mode must keep the bank available after the faults heal,
// must show the failure-policy machinery actually engaging (breakers
// opened, a degraded read was flagged and traced), and must not leak
// goroutines — every delivery loop, server and session the fault script
// churned through has to wind down.
func TestE11ChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes ~3s of wall clock")
	}
	// Everything the run spins up — servers, sessions, chaos driver,
	// delayed-delivery loops — must be gone by the end.
	defer leakcheck.Guard(t, 2, 5*time.Second)()

	rep, err := E11Chaos(3*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops < 100 {
		t.Fatalf("only %d ops in %v; workload stalled", rep.Ops, rep.Duration)
	}
	if rep.AvailabilityHealed < 0.99 {
		t.Fatalf("availability after heal = %.4f, want ≥0.99\nerrors: %v\ntimeline:\n%s",
			rep.AvailabilityHealed, rep.Errors, rep.Timeline)
	}
	if rep.TimeToRecover < 0 {
		t.Fatalf("system never recovered after the heal\nerrors: %v", rep.Errors)
	}
	if rep.BreakerOpens == 0 {
		t.Fatal("no breaker ever opened under a two-node crash script")
	}
	if rep.MembersEnd != len(e11Hosts) {
		t.Fatalf("members at end = %d, want %d (Retain+rejoin must restore the full group)",
			rep.MembersEnd, len(e11Hosts))
	}
	if rep.DegradedReads == 0 {
		t.Fatal("no read was ever flagged stale during the outage")
	}
	if !strings.Contains(rep.StaleTrace, "replica.read.stale:") {
		t.Fatalf("stale-read trace missing its marker span:\n%s", rep.StaleTrace)
	}
	if !strings.Contains(rep.Timeline, "crash n1") || !strings.Contains(rep.Timeline, "restart n3") {
		t.Fatalf("timeline missing scripted faults:\n%s", rep.Timeline)
	}
}

// TestE11PolicyOffRuns checks the baseline mode stays runnable (its
// numbers are allowed to be bad — that contrast is the experiment).
func TestE11PolicyOffRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes ~2s of wall clock")
	}
	rep, err := E11Chaos(2*time.Second, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatal("no operations attempted")
	}
	if rep.Mode != "policy-off" {
		t.Fatalf("mode = %q", rep.Mode)
	}
	if rep.BreakerOpens != 0 || rep.Retries != 0 {
		t.Fatalf("legacy mode used policy machinery: opens=%d retries=%d",
			rep.BreakerOpens, rep.Retries)
	}
}
