// E13: the sharded-infrastructure swarm. Three measurements of the
// sharded trader + sharded relocator + client relocation cache stack:
//
//   - grid: import throughput and latency against shard count, with each
//     shard an ordinary ODP object reached over channels. Every shard
//     node sits behind a capacity gate (a single-server queue with a
//     fixed service time), so on any host — including a single-core CI
//     box — throughput is bounded by shard capacity, not by how many
//     local goroutines the scheduler happens to run: adding shards adds
//     servers, and the measured scaling is the sharding's, not the
//     machine's.
//   - swarm: hundreds of thousands of client bindings (target one
//     million across runs) fan out from a few dozen client hosts to a
//     few dozen server nodes on the simulated network, every binding
//     resolved through the sharded trader, located through a per-host
//     relocation cache, attached over shared transport sessions, and
//     exercised with one invocation. The claim under test is ODP's
//     scale story end to end: no lookup may be lost, connections stay
//     O(hosts×nodes) rather than O(bindings), and the cache absorbs
//     nearly all location traffic.
//   - blackout: per-offer availability while the ring changes. Probes
//     import every offer continuously while a shard is added and
//     another removed; the migration protocol (install on the new
//     owner before withdrawing from the old, two-phase old-before-new
//     reads) promises zero misses, and the probe log turns that promise
//     into a measured per-offer blackout figure.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/relocator"
	"repro/internal/trader"
	"repro/internal/typerepo"
	"repro/internal/types"
	"repro/internal/values"
)

// capacityGate models a shard node with a fixed service capacity: a
// single-server queue with service time tau. Holding the mutex across
// the sleep serialises requests, so one gated node completes at most
// 1/tau operations per second no matter how many clients pile on — the
// property that makes shard-count scaling measurable on a small host.
type capacityGate struct {
	mu    sync.Mutex
	tau   time.Duration
	inner channel.Handler
}

func (g *capacityGate) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(g.tau)
	return g.inner.Invoke(ctx, op, args)
}

func e13TypeName(i int) string { return fmt.Sprintf("SwarmSvc%02d", i) }

// e13Repo registers n disjoint operational service types. Subtyping here
// is structural, so every type carries a marker operation of its own —
// without it the n "different" services would all substitute for each
// other and every import would fan out to every shard.
func e13Repo(n int) typerepo.Repository {
	repo := typerepo.New()
	for i := 0; i < n; i++ {
		must(repo.RegisterInterface(types.OpInterface(e13TypeName(i),
			types.Op("Echo", types.Params(types.P("x", values.TString())),
				types.Term("OK", types.P("x", values.TString()))),
			types.Op(fmt.Sprintf("Mark%02d", i), types.Params(), types.Term("OK")),
		)))
	}
	return repo
}

func e13Ref(nonce uint64, typeName string, ep naming.Endpoint) naming.InterfaceRef {
	return naming.InterfaceRef{
		ID:       naming.InterfaceID{Nonce: nonce},
		TypeName: typeName,
		Endpoint: ep,
	}
}

// E13GridConfig parameterises the shard-count sweep.
type E13GridConfig struct {
	ShardCounts   []int
	Workers       int           // concurrent importers driving the front-end
	Tau           time.Duration // per-shard service time (capacity 1/tau)
	Types         int           // service types spread over the ring
	CallsBase     int           // per-cell invocation budget: base + perShard*k
	CallsPerShard int
}

// E13GridRow is one shard-count measurement.
type E13GridRow struct {
	Shards     int
	Workers    int
	Calls      int
	Throughput float64 // imports completed per second across the fleet
	P50, P99   time.Duration
}

// E13Grid measures import throughput through the sharded trader for each
// shard count, shards reached over channels and capacity-gated at 1/tau.
func E13Grid(cfg E13GridConfig) ([]E13GridRow, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 48
	}
	if cfg.Tau <= 0 {
		cfg.Tau = 800 * time.Microsecond
	}
	if cfg.Types < 1 {
		cfg.Types = 64
	}
	if cfg.CallsBase < 1 {
		cfg.CallsBase = 750
	}
	var rows []E13GridRow
	for _, k := range cfg.ShardCounts {
		row, err := e13GridRow(k, cfg)
		if err != nil {
			return rows, fmt.Errorf("e13 grid shards=%d: %w", k, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func e13GridRow(shards int, cfg E13GridConfig) (E13GridRow, error) {
	net := netsim.New(int64(13000 + shards))
	net.SetAcceptBacklog(4 * shards)
	repo := e13Repo(cfg.Types)
	fe := trader.NewSharded("fe", repo, 0)
	type leg struct {
		srv *channel.Server
		rem *trader.Remote
	}
	var legs []leg
	defer func() {
		for _, l := range legs {
			l.rem.Close()
			l.srv.Close()
		}
	}()
	for i := 0; i < shards; i++ {
		ep := naming.Endpoint(fmt.Sprintf("sim://shard%d", i))
		l, err := net.Listen(ep)
		if err != nil {
			return E13GridRow{}, err
		}
		srv := channel.NewServer(l, channel.ServerConfig{})
		leaf := trader.New(fmt.Sprintf("s%d", i), repo)
		id := naming.InterfaceID{Nonce: uint64(100 + i)}
		err = srv.Register(id, nil, &capacityGate{tau: cfg.Tau, inner: &trader.Servant{T: leaf}})
		if err != nil {
			return E13GridRow{}, err
		}
		srv.Start()
		b, err := channel.Bind(naming.InterfaceRef{ID: id, Endpoint: ep}, channel.BindConfig{Transport: net})
		if err != nil {
			return E13GridRow{}, err
		}
		rem := trader.NewRemote(b)
		legs = append(legs, leg{srv, rem})
		if err := fe.AddShard(fmt.Sprintf("s%d", i), rem); err != nil {
			return E13GridRow{}, err
		}
	}
	for i := 0; i < cfg.Types; i++ {
		_, err := fe.Export(e13TypeName(i),
			e13Ref(uint64(1000+i), e13TypeName(i), "sim://nowhere"),
			values.Record(values.F("slot", values.Int(int64(i)))))
		if err != nil {
			return E13GridRow{}, err
		}
	}

	calls := cfg.CallsBase + cfg.CallsPerShard*shards
	var next atomic.Int64
	durs := make([][]time.Duration, cfg.Workers)
	errs := make(chan error, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(calls) {
					return
				}
				svc := e13TypeName(int(n) % cfg.Types)
				t0 := time.Now()
				got, err := fe.Import(trader.ImportRequest{ServiceType: svc, MaxMatches: 1})
				if err != nil {
					errs <- err
					return
				}
				if len(got) == 0 {
					errs <- fmt.Errorf("import %s: no offer", svc)
					return
				}
				durs[w] = append(durs[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return E13GridRow{}, err
	}
	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return E13GridRow{
		Shards:     shards,
		Workers:    cfg.Workers,
		Calls:      calls,
		Throughput: float64(calls) / elapsed.Seconds(),
		P50:        all[len(all)/2],
		P99:        all[len(all)*99/100],
	}, nil
}

// E13SwarmConfig parameterises the binding swarm.
type E13SwarmConfig struct {
	Bindings int // total client bindings to establish
	Hosts    int // client hosts (one shared session manager + cache each)
	Nodes    int // server nodes hosting the service interfaces
	Services int // distinct service types (spread over the nodes)
	Shards   int // trader and relocator shard count

	// TypeReplicas, when positive, fronts the type repository with that
	// many gen-fenced read replicas (typerepo.NewReplicated) — the E15
	// configuration, where the million-binding swarm's subtype and lookup
	// traffic is served replica-local instead of from one shared store.
	TypeReplicas int
}

// E13SwarmReport is the swarm measurement.
type E13SwarmReport struct {
	Config         E13SwarmConfig
	Bindings       int           // bindings actually established
	LostLookups    int           // imports or location lookups that found nothing
	Conns          uint64        // connections accepted across all server nodes
	Dials          uint64        // dials performed across all client hosts
	CacheHitRate   float64       // relocation-cache hits / lookups
	HeapPerBinding uint64        // heap growth per binding, bytes (rough: both ends)
	P50, P99       time.Duration // first-invocation latency per binding
	Elapsed        time.Duration
	PerSec         float64 // bindings established (incl. one invoke) per second
}

// E13Swarm establishes cfg.Bindings client bindings: each one imports its
// service from the sharded trader, resolves the location through its
// host's relocation cache, binds over the host's shared session manager,
// and performs one invocation. All bindings stay open until the end, so
// the connection and heap numbers describe the steady swarm, not churn.
func E13Swarm(cfg E13SwarmConfig) (E13SwarmReport, error) {
	if cfg.Hosts < 1 || cfg.Nodes < 1 || cfg.Shards < 1 {
		return E13SwarmReport{}, fmt.Errorf("e13 swarm: bad config %+v", cfg)
	}
	if cfg.Services < 1 {
		cfg.Services = 64
	}
	net := netsim.New(13999)
	net.SetAcceptBacklog(4 * cfg.Hosts * cfg.Nodes)
	repo := e13Repo(cfg.Services)
	if cfg.TypeReplicas > 0 {
		repo = typerepo.NewReplicated(repo, cfg.TypeReplicas)
	}

	// Server nodes: each hosts the echo servants for its share of the
	// service types.
	servers := make([]*channel.Server, cfg.Nodes)
	for i := range servers {
		l, err := net.Listen(naming.Endpoint(fmt.Sprintf("sim://node%d", i)))
		if err != nil {
			return E13SwarmReport{}, err
		}
		servers[i] = channel.NewServer(l, channel.ServerConfig{})
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// The infrastructure functions: a sharded trader and a sharded
	// relocator (the over-channels shape is measured by the grid phase;
	// here they are in-process so the swarm numbers isolate the binding
	// fan-out itself).
	fe := trader.NewSharded("swarm", repo, 0)
	for i := 0; i < cfg.Shards; i++ {
		if err := fe.AddShard(fmt.Sprintf("t%d", i), trader.New(fmt.Sprintf("t%d", i), repo)); err != nil {
			return E13SwarmReport{}, err
		}
	}
	wp := relocator.NewSharded(0)
	for i := 0; i < cfg.Shards; i++ {
		if err := wp.AddShard(fmt.Sprintf("r%d", i), relocator.New()); err != nil {
			return E13SwarmReport{}, err
		}
	}

	echo := channel.HandlerFunc(func(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
		return "OK", args, nil
	})
	for i := 0; i < cfg.Services; i++ {
		node := i % cfg.Nodes
		ref := e13Ref(uint64(2000+i), e13TypeName(i), naming.Endpoint(fmt.Sprintf("sim://node%d", node)))
		if err := servers[node].Register(ref.ID, nil, echo); err != nil {
			return E13SwarmReport{}, err
		}
		if _, err := fe.Export(e13TypeName(i), ref, values.Record(values.F("node", values.Int(int64(node))))); err != nil {
			return E13SwarmReport{}, err
		}
		if err := wp.Register(ref); err != nil {
			return E13SwarmReport{}, err
		}
	}
	for _, s := range servers {
		s.Start()
	}

	// Client hosts: one shared session manager and one relocation cache
	// each — the cache capacity comfortably covers the service
	// population, so after warm-up location traffic stays client-side.
	mgrs := make([]*channel.SessionManager, cfg.Hosts)
	caches := make([]*relocator.Cache, cfg.Hosts)
	for h := range mgrs {
		mgrs[h] = channel.NewSessionManager(net.From(fmt.Sprintf("client%d", h)))
		caches[h] = relocator.NewCache(wp, 2*cfg.Services)
	}
	defer func() {
		for _, m := range mgrs {
			m.Close()
		}
	}()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Two workers per host keep a couple of invocations in flight per
	// connection — far below the simulator's frame window, so zero lost
	// lookups is an assertion about the protocol, not about luck.
	const workersPerHost = 2
	nWorkers := cfg.Hosts * workersPerHost
	perWorker := cfg.Bindings / nWorkers
	bindings := make([][]*channel.Binding, nWorkers)
	durs := make([][]time.Duration, nWorkers)
	var lost atomic.Int64
	errs := make(chan error, nWorkers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := w / workersPerHost
			bindings[w] = make([]*channel.Binding, 0, perWorker)
			durs[w] = make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				gi := w*perWorker + i
				svc := e13TypeName(gi % cfg.Services)
				t0 := time.Now()
				offers, err := fe.Import(trader.ImportRequest{ServiceType: svc, MaxMatches: 1})
				if err != nil || len(offers) == 0 {
					lost.Add(1)
					continue
				}
				ref, err := caches[host].Lookup(offers[0].Ref.ID)
				if err != nil {
					lost.Add(1)
					continue
				}
				b, err := channel.Bind(ref, channel.BindConfig{
					Sessions: mgrs[host],
					Locator:  caches[host],
				})
				if err != nil {
					errs <- err
					return
				}
				if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); err != nil {
					errs <- err
					return
				}
				bindings[w] = append(bindings[w], b)
				durs[w] = append(durs[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return E13SwarmReport{}, err
	}

	established := 0
	for _, bs := range bindings {
		established += len(bs)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	var heapPerB uint64
	if after.HeapAlloc > before.HeapAlloc && established > 0 {
		heapPerB = (after.HeapAlloc - before.HeapAlloc) / uint64(established)
	}

	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := E13SwarmReport{
		Config:         cfg,
		Bindings:       established,
		LostLookups:    int(lost.Load()),
		HeapPerBinding: heapPerB,
		Elapsed:        elapsed,
		PerSec:         float64(established) / elapsed.Seconds(),
	}
	if len(all) > 0 {
		rep.P50, rep.P99 = all[len(all)/2], all[len(all)*99/100]
	}
	for _, s := range servers {
		rep.Conns += s.Stats().Sessions
	}
	var hits, misses uint64
	for h := range mgrs {
		rep.Dials += mgrs[h].Stats().Dials
		cs := caches[h].Stats()
		hits += cs.Hits
		misses += cs.Misses
	}
	if hits+misses > 0 {
		rep.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	for _, bs := range bindings {
		for _, b := range bs {
			b.Close()
		}
	}
	return rep, nil
}

// E13BlackoutReport is the rebalance-availability measurement.
type E13BlackoutReport struct {
	Offers      int
	Probes      uint64        // successful per-offer imports during the window
	Misses      uint64        // probes that found nothing (the blackout count)
	MaxBlackout time.Duration // worst gap between successive finds of one offer
	Migrated    uint64        // offers moved live by the ring changes
	Rebalances  uint64
}

// E13Blackout probes every offer continuously — over channels, against
// remote shard traders — while the ring gains one shard and loses
// another. A miss is an import of a live offer that returns nothing; the
// migration protocol is supposed to make that impossible, and the
// per-offer gap bounds how long any single offer went unobserved.
func E13Blackout(offers int) (E13BlackoutReport, error) {
	if offers < 1 {
		offers = 64
	}
	const initialShards = 3
	net := netsim.New(13777)
	net.SetAcceptBacklog(16)
	repo := e13Repo(offers)
	fe := trader.NewSharded("fe", repo, 0)

	var srvs []*channel.Server
	var rems []*trader.Remote
	defer func() {
		for _, r := range rems {
			r.Close()
		}
		for _, s := range srvs {
			s.Close()
		}
	}()
	newShardNode := func(i int) (*trader.Remote, error) {
		ep := naming.Endpoint(fmt.Sprintf("sim://shard%d", i))
		l, err := net.Listen(ep)
		if err != nil {
			return nil, err
		}
		srv := channel.NewServer(l, channel.ServerConfig{})
		leaf := trader.New(fmt.Sprintf("s%d", i), repo)
		id := naming.InterfaceID{Nonce: uint64(100 + i)}
		if err := srv.Register(id, nil, &trader.Servant{T: leaf}); err != nil {
			return nil, err
		}
		srv.Start()
		srvs = append(srvs, srv)
		b, err := channel.Bind(naming.InterfaceRef{ID: id, Endpoint: ep}, channel.BindConfig{Transport: net})
		if err != nil {
			return nil, err
		}
		rem := trader.NewRemote(b)
		rems = append(rems, rem)
		return rem, nil
	}
	for i := 0; i < initialShards; i++ {
		rem, err := newShardNode(i)
		if err != nil {
			return E13BlackoutReport{}, err
		}
		if err := fe.AddShard(fmt.Sprintf("s%d", i), rem); err != nil {
			return E13BlackoutReport{}, err
		}
	}
	for i := 0; i < offers; i++ {
		_, err := fe.Export(e13TypeName(i),
			e13Ref(uint64(3000+i), e13TypeName(i), "sim://nowhere"),
			values.Null())
		if err != nil {
			return E13BlackoutReport{}, err
		}
	}

	var (
		mu       sync.Mutex
		lastSeen = make([]time.Time, offers)
		maxGap   = make([]time.Duration, offers)
		seen     int
		probes   atomic.Uint64
		misses   atomic.Uint64
		stop     atomic.Bool
	)
	record := func(i int, ok bool) {
		if !ok {
			misses.Add(1)
			return
		}
		probes.Add(1)
		now := time.Now()
		mu.Lock()
		if lastSeen[i].IsZero() {
			seen++
		} else if gap := now.Sub(lastSeen[i]); gap > maxGap[i] {
			maxGap[i] = gap
		}
		lastSeen[i] = now
		mu.Unlock()
	}
	const probers = 4
	errs := make(chan error, probers)
	var wg sync.WaitGroup
	for p := 0; p < probers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; !stop.Load(); i++ {
				idx := i % offers
				got, err := fe.Import(trader.ImportRequest{ServiceType: e13TypeName(idx), MaxMatches: 1})
				if err != nil {
					errs <- err
					return
				}
				record(idx, len(got) == 1)
				runtime.Gosched() // single-CPU hosts: let migration interleave
			}
		}(p)
	}
	// Wait until the probes have observed every offer once, so the gap
	// log covers the whole population before the ring starts moving.
	for {
		mu.Lock()
		warm := seen == offers
		mu.Unlock()
		if warm {
			break
		}
		runtime.Gosched()
	}
	// Reset the gap log: only gaps overlapping the rebalance window count.
	mu.Lock()
	for i := range maxGap {
		maxGap[i] = 0
	}
	mu.Unlock()

	rem, err := newShardNode(initialShards)
	if err != nil {
		stop.Store(true)
		wg.Wait()
		return E13BlackoutReport{}, err
	}
	if err := fe.AddShard(fmt.Sprintf("s%d", initialShards), rem); err != nil {
		stop.Store(true)
		wg.Wait()
		return E13BlackoutReport{}, err
	}
	if err := fe.RemoveShard("s0"); err != nil {
		stop.Store(true)
		wg.Wait()
		return E13BlackoutReport{}, err
	}
	// Keep probing a little past the flips so trailing gaps close.
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return E13BlackoutReport{}, err
	}

	rep := E13BlackoutReport{
		Offers: offers,
		Probes: probes.Load(),
		Misses: misses.Load(),
	}
	mu.Lock()
	for _, g := range maxGap {
		if g > rep.MaxBlackout {
			rep.MaxBlackout = g
		}
	}
	mu.Unlock()
	st := fe.ShardStats()
	rep.Migrated, rep.Rebalances = st.Migrated, st.Rebalances
	return rep, nil
}

// E13Report bundles the three phases for odpbench.
type E13Report struct {
	Grid     []E13GridRow
	Swarm    E13SwarmReport
	Blackout E13BlackoutReport
}

// E13 runs the full experiment (or the CI smoke slice: a 1-vs-8 grid and
// a 100k-binding swarm instead of the 1/2/4/8/16 sweep over 600k).
func E13(smoke bool) (E13Report, error) {
	grid := E13GridConfig{ShardCounts: []int{1, 2, 4, 8, 16}, CallsBase: 750, CallsPerShard: 250}
	swarm := E13SwarmConfig{Bindings: 600_000, Hosts: 16, Nodes: 32, Services: 64, Shards: 4}
	if smoke {
		grid.ShardCounts = []int{1, 8}
		grid.CallsBase, grid.CallsPerShard = 600, 250
		swarm = E13SwarmConfig{Bindings: 100_000, Hosts: 8, Nodes: 16, Services: 64, Shards: 4}
	}
	var rep E13Report
	var err error
	if rep.Grid, err = E13Grid(grid); err != nil {
		return rep, err
	}
	if rep.Swarm, err = E13Swarm(swarm); err != nil {
		return rep, err
	}
	if rep.Blackout, err = E13Blackout(64); err != nil {
		return rep, err
	}
	return rep, nil
}

// Records flattens the report into the unified benchmark-record shape.
func (r E13Report) Records() []Record {
	var out []Record
	for _, g := range r.Grid {
		out = append(out, Record{
			Experiment: "e13",
			Scenario:   "grid",
			Params: map[string]float64{
				"shards":  float64(g.Shards),
				"workers": float64(g.Workers),
			},
			Metrics: map[string]float64{
				"calls":      float64(g.Calls),
				"throughput": g.Throughput,
				"p50_us":     float64(g.P50.Microseconds()),
				"p99_us":     float64(g.P99.Microseconds()),
			},
		})
	}
	s := r.Swarm
	out = append(out, Record{
		Experiment: "e13",
		Scenario:   "swarm",
		Params: map[string]float64{
			"hosts":    float64(s.Config.Hosts),
			"nodes":    float64(s.Config.Nodes),
			"services": float64(s.Config.Services),
			"shards":   float64(s.Config.Shards),
		},
		Metrics: map[string]float64{
			"bindings":         float64(s.Bindings),
			"lost_lookups":     float64(s.LostLookups),
			"conns":            float64(s.Conns),
			"dials":            float64(s.Dials),
			"cache_hit_rate":   s.CacheHitRate,
			"heap_per_binding": float64(s.HeapPerBinding),
			"p50_us":           float64(s.P50.Microseconds()),
			"p99_us":           float64(s.P99.Microseconds()),
			"bindings_per_sec": s.PerSec,
		},
	})
	b := r.Blackout
	out = append(out, Record{
		Experiment: "e13",
		Scenario:   "rebalance-blackout",
		Params:     map[string]float64{"offers": float64(b.Offers)},
		Metrics: map[string]float64{
			"probes":          float64(b.Probes),
			"misses":          float64(b.Misses),
			"max_blackout_us": float64(b.MaxBlackout.Microseconds()),
			"migrated":        float64(b.Migrated),
			"rebalances":      float64(b.Rebalances),
		},
	})
	return out
}
