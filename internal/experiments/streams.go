// E14: the streaming data plane — credit-window isolation of one slow
// consumer. The claim under test is the heart of PR 8: every flow stream
// multiplexed over a shared session has its own credit window, so a
// consumer that stops draining stalls exactly its own producer at the
// window edge while the sibling streams on the same connection keep their
// throughput; and memory stays bounded at both ends (the consumer queues
// at most its window, the producer buffers at most its local batch) no
// matter how long the stall lasts. The experiment runs N producers — each
// on its own binding, all multiplexed over one session to one consumer
// endpoint — in two scenarios, all-fast and one-slow (the consumer drains
// one designated stream with a fixed per-element delay), on the simulated
// network and on real loopback TCP. Head-of-line isolation is the ratio
// of fast-stream throughput between the two scenarios; the memory ceiling
// is the slow stream's high-water queue depth against its window.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/stream"
	"repro/internal/types"
	"repro/internal/values"
)

// E14Config is one streaming cell.
type E14Config struct {
	Transport string        // "sim" or "tcp"
	Streams   int           // producers, one binding each, one shared session
	Elems     int           // elements each fast producer sends
	Window    int           // consumer element window per stream
	SlowOne   bool          // one-slow scenario: stream 0 drains slowly
	SlowDelay time.Duration // per-element drain delay of the slow stream
}

// E14Row is one cell's measurement. Fast* fields cover the sibling
// streams (all streams in the all-fast scenario, all but stream 0 in
// one-slow); Slow* fields always describe stream 0.
type E14Row struct {
	Transport string `json:"transport"`
	Scenario  string `json:"scenario"` // "all-fast" or "one-slow"
	Streams   int    `json:"streams"`
	Elems     int    `json:"elems"`
	Window    int    `json:"window"`
	// FastThroughput is elements delivered per second aggregated across
	// the fast streams — the head-of-line-isolation headline.
	FastThroughput float64       `json:"fast_throughput"`
	SendP50        time.Duration `json:"send_p50_ns"` // fast producers' Send latency
	SendP99        time.Duration `json:"send_p99_ns"`
	SlowDelivered  uint64        `json:"slow_delivered"`  // elements stream 0 got through
	SlowMaxQueued  uint64        `json:"slow_max_queued"` // stream 0 consumer high-water (<= window)
	SlowStalls     uint64        `json:"slow_stalls"`     // credit stalls of producer 0
	MaxBuffered    uint64        `json:"max_buffered"`    // producer-side high-water, max over fleet
	SeqGaps        uint64        `json:"seq_gaps"`
	FlowTypeErrors uint64        `json:"flow_type_errors"`
	Elapsed        time.Duration `json:"elapsed_ns"`
}

const e14Stride = 1 << 32 // element = streamIdx*stride + seq

// e14Type is the stream service type, written — as everywhere in this
// repo — from the producing client's viewpoint.
func e14Type() *types.Interface {
	return types.StreamInterface("E14Feed",
		types.FlowOf("elems", types.Producer, values.TInt()))
}

// E14Cell runs one scenario cell: cfg.Streams producers over one shared
// session, each sending cfg.Elems elements (stream 0 sends until the fast
// fleet finishes when it is the slow one), one consumer endpoint draining
// them all concurrently.
func E14Cell(cfg E14Config) (E14Row, error) {
	var (
		listener netsim.Listener
		clientT  netsim.Transport
		err      error
	)
	switch cfg.Transport {
	case "sim":
		net := netsim.New(int64(14000 + cfg.Streams))
		net.SetAcceptBacklog(2 * cfg.Streams)
		listener, err = net.Listen("sim://server")
		if err != nil {
			return E14Row{}, err
		}
		clientT = net.From("client")
	case "tcp":
		t := netsim.NewTCP()
		listener, err = t.Listen("tcp://127.0.0.1:0")
		if err != nil {
			return E14Row{}, err
		}
		clientT = t
	default:
		return E14Row{}, fmt.Errorf("unknown transport %q", cfg.Transport)
	}

	srv := channel.NewServer(listener, channel.ServerConfig{})
	defer srv.Close()
	cons := stream.NewConsumer(stream.ConsumerConfig{Window: cfg.Window})
	defer cons.Close()
	id := naming.InterfaceID{Nonce: 14}
	if err := srv.Register(id, e14Type(), cons); err != nil {
		return E14Row{}, err
	}
	srv.Start()
	ref := naming.InterfaceRef{ID: id, TypeName: "E14Feed", Endpoint: listener.Endpoint()}

	mgr := channel.NewSessionManager(clientT)
	defer mgr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// The slow producer gets its own cancel: when it is the designated
	// victim it keeps sending until the fast fleet finishes, then is cut
	// off (a blocked Send wakes on context cancellation).
	slowCtx, slowCancel := context.WithCancel(ctx)
	defer slowCancel()

	producers := make([]*stream.Producer, cfg.Streams)
	for i := 0; i < cfg.Streams; i++ {
		b, err := channel.Bind(ref, channel.BindConfig{
			Sessions: mgr, Type: e14Type(), Transport: clientT,
		})
		if err != nil {
			return E14Row{}, err
		}
		defer b.Close()
		p, err := stream.Open(ctx, b, "elems", stream.ProducerConfig{})
		if err != nil {
			return E14Row{}, err
		}
		producers[i] = p
	}

	// Consumer side: accept every stream; each drains in its own
	// goroutine. The slow stream identifies itself by its first element's
	// stream index — streams are symmetric until then, so no delay is lost.
	type inboundDone struct {
		owner     int
		delivered uint64
		maxQueued uint64
		seqGaps   uint64
		err       error
	}
	doneCh := make(chan inboundDone, cfg.Streams)
	var cwg sync.WaitGroup
	for k := 0; k < cfg.Streams; k++ {
		in, err := cons.Accept(ctx)
		if err != nil {
			return E14Row{}, err
		}
		cwg.Add(1)
		go func(in *stream.Inbound) {
			defer cwg.Done()
			d := inboundDone{owner: -1}
			for {
				v, err := in.Recv(ctx)
				if err != nil {
					if err != io.EOF {
						d.err = err
					}
					break
				}
				n, _ := v.AsInt()
				if d.owner == -1 {
					d.owner = int(n / e14Stride)
				}
				d.delivered++
				if cfg.SlowOne && d.owner == 0 {
					time.Sleep(cfg.SlowDelay)
				}
			}
			st := in.Stats()
			d.maxQueued, d.seqGaps = st.MaxQueued, st.SeqGaps
			doneCh <- d
		}(in)
	}

	// Producer side. Fast producers send cfg.Elems and record per-Send
	// latency; the slow producer (one-slow scenario) sends until cancelled.
	errs := make(chan error, cfg.Streams)
	durs := make([][]time.Duration, cfg.Streams)
	var pwg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Streams; i++ {
		pwg.Add(1)
		go func(idx int, p *stream.Producer) {
			defer pwg.Done()
			pctx := ctx
			elems := cfg.Elems
			if cfg.SlowOne && idx == 0 {
				pctx, elems = slowCtx, 1<<31
			}
			lat := make([]time.Duration, 0, cfg.Elems)
			for seq := 0; seq < elems; seq++ {
				t0 := time.Now()
				if err := p.Send(pctx, values.Int(int64(idx)*e14Stride+int64(seq))); err != nil {
					if pctx.Err() == nil {
						errs <- fmt.Errorf("producer %d send %d: %w", idx, seq, err)
					}
					break
				}
				lat = append(lat, time.Since(t0))
			}
			durs[idx] = lat
			if err := p.Close(); err != nil && pctx.Err() == nil {
				errs <- fmt.Errorf("producer %d close: %w", idx, err)
			}
		}(i, producers[i])
	}

	// Completion accounting: the clock stops when the last fast stream
	// finishes; in the one-slow scenario producer 0 is then cut off and
	// its stream drains out (at most a window of queued elements).
	var (
		fastDelivered uint64
		slow          inboundDone
		seqGaps       uint64
		fastElapsed   time.Duration
	)
	fastStreams := cfg.Streams
	if cfg.SlowOne {
		fastStreams--
	}
	finished := 0
	for received := 0; received < cfg.Streams; received++ {
		d := <-doneCh
		if d.err != nil {
			return E14Row{}, d.err
		}
		seqGaps += d.seqGaps
		if d.owner == 0 {
			slow = d // stream 0: the victim in one-slow, representative otherwise
		}
		if cfg.SlowOne && d.owner == 0 {
			continue
		}
		fastDelivered += d.delivered
		finished++
		if finished == fastStreams {
			fastElapsed = time.Since(start)
			slowCancel() // one-slow: cut the victim off; no-op otherwise
		}
	}

	pwg.Wait()
	cwg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return E14Row{}, err
	}

	row := E14Row{
		Transport: cfg.Transport,
		Scenario:  "all-fast",
		Streams:   cfg.Streams,
		Elems:     cfg.Elems,
		Window:    cfg.Window,
		Elapsed:   fastElapsed,
	}
	if cfg.SlowOne {
		row.Scenario = "one-slow"
	}
	row.FastThroughput = float64(fastDelivered) / fastElapsed.Seconds()

	var all []time.Duration
	for i, d := range durs {
		if cfg.SlowOne && i == 0 {
			continue
		}
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		row.SendP50 = all[len(all)/2]
		row.SendP99 = all[len(all)*99/100]
	}

	slowStats := producers[0].Stats()
	row.SlowDelivered = slow.delivered
	row.SlowMaxQueued = slow.maxQueued
	row.SlowStalls = slowStats.Stalls
	row.SeqGaps = seqGaps
	for _, p := range producers {
		if ps := p.Stats(); ps.MaxBuffered > row.MaxBuffered {
			row.MaxBuffered = ps.MaxBuffered
		}
	}
	row.FlowTypeErrors = srv.Stats().FlowTypeErrors
	return row, nil
}

// E14Report bundles the scenario × transport grid for odpbench.
type E14Report struct {
	Rows []E14Row
}

// E14 runs the full grid (or the CI smoke slice: fewer elements, sim plus
// one TCP cell pair).
func E14(smoke bool) (E14Report, error) {
	streams, elems, window := 64, 2000, 32
	delay := time.Millisecond
	if smoke {
		elems = 400
	}
	var rep E14Report
	for _, transport := range []string{"sim", "tcp"} {
		for _, slow := range []bool{false, true} {
			row, err := E14Cell(E14Config{
				Transport: transport,
				Streams:   streams,
				Elems:     elems,
				Window:    window,
				SlowOne:   slow,
				SlowDelay: delay,
			})
			if err != nil {
				return rep, fmt.Errorf("e14 %s slow=%v: %w", transport, slow, err)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// Records flattens the report into the unified benchmark-record shape.
func (r E14Report) Records() []Record {
	var out []Record
	for _, row := range r.Rows {
		out = append(out, Record{
			Experiment: "e14",
			Scenario:   row.Scenario + "/" + row.Transport,
			Params: map[string]float64{
				"streams": float64(row.Streams),
				"elems":   float64(row.Elems),
				"window":  float64(row.Window),
			},
			Metrics: map[string]float64{
				"fast_throughput":  row.FastThroughput,
				"send_p50_us":      float64(row.SendP50.Microseconds()),
				"send_p99_us":      float64(row.SendP99.Microseconds()),
				"slow_delivered":   float64(row.SlowDelivered),
				"slow_max_queued":  float64(row.SlowMaxQueued),
				"slow_stalls":      float64(row.SlowStalls),
				"max_buffered":     float64(row.MaxBuffered),
				"seq_gaps":         float64(row.SeqGaps),
				"flow_type_errors": float64(row.FlowTypeErrors),
			},
		})
	}
	return out
}
