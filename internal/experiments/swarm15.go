// E15: the de-singletoned control plane under swarm load. PR 9 split the
// two remaining process-wide singletons — the type repository and the
// coordination event bus — into a replicated read front-end
// (typerepo.NewReplicated) and a topic-sharded bus
// (coordination.NewShardedBus). Four measurements test that the split
// actually buys what it claims:
//
//   - typerepo: import throughput through a 16-shard trader whose type
//     repository is a capacity-gated authority (a 1/tau single-server
//     queue, the same construction the E13 grid applies to shard
//     nodes), singleton vs fronted by 16 gen-fenced read replicas. The
//     gate makes the result a property of where reads are served, not
//     of the host's core count: singleton throughput is bounded by
//     1/tau, replica-served reads are not.
//   - bus: publish throughput with every bus shard behind the same
//     kind of capacity gate (one broker node per shard, service time
//     tau), for a singleton bus and 1/4/16-shard front-ends.
//   - swarm: the E13 binding swarm raised to one million bindings with
//     the replicated type repository serving the import path — zero
//     lost lookups at 1M is the scale gate.
//   - crash storm: the E13 rebalance-blackout probe with one trader
//     shard served by a coordination.ReplicaGroup of two trader
//     replicas, and a chaos script that crashes one replica host while
//     the ring gains a shard and loses another. Zero probe misses
//     means the migration protocol and the group's failover combine:
//     neither the rebalance nor the member crash is observable.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/coordination"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/trader"
	"repro/internal/typerepo"
	"repro/internal/types"
	"repro/internal/values"
)

// e15GatedRepo models the type-repository authority as a service with
// fixed capacity: content reads acquire one mutex and sleep tau, so the
// authority serves at most 1/tau reads per second no matter how many
// clients pile on — the capacityGate construction applied at the
// Repository interface. Writes are not gated (both modes funnel writes
// to the authority and the measured phase is read-only), and Gen is not
// gated either: the generation fence is an atomic version counter, not
// a content read, so both modes observe it for free and the comparison
// isolates where LookupInterface/IsSubtype traffic lands.
type e15GatedRepo struct {
	mu    sync.Mutex
	tau   time.Duration
	inner typerepo.Repository
	reads atomic.Uint64 // gated content reads that reached the authority
}

var _ typerepo.Repository = (*e15GatedRepo)(nil)

func (g *e15GatedRepo) gate() {
	g.mu.Lock()
	g.reads.Add(1)
	time.Sleep(g.tau)
	g.mu.Unlock()
}

func (g *e15GatedRepo) LookupInterface(name string) (*types.Interface, error) {
	g.gate()
	return g.inner.LookupInterface(name)
}

func (g *e15GatedRepo) Interfaces() []string {
	g.gate()
	return g.inner.Interfaces()
}

func (g *e15GatedRepo) IsSubtype(sub, super string) (bool, error) {
	g.gate()
	return g.inner.IsSubtype(sub, super)
}

func (g *e15GatedRepo) Supertypes(name string) ([]string, error) {
	g.gate()
	return g.inner.Supertypes(name)
}

func (g *e15GatedRepo) Subtypes(name string) ([]string, error) {
	g.gate()
	return g.inner.Subtypes(name)
}

func (g *e15GatedRepo) DeclaredSupertypes(name string) []string {
	g.gate()
	return g.inner.DeclaredSupertypes(name)
}

func (g *e15GatedRepo) LookupData(name string) (*values.DataType, error) {
	g.gate()
	return g.inner.LookupData(name)
}

func (g *e15GatedRepo) Related(relation, from string) []string {
	g.gate()
	return g.inner.Related(relation, from)
}

func (g *e15GatedRepo) Gen() uint64 { return g.inner.Gen() }

func (g *e15GatedRepo) RegisterInterface(it *types.Interface) error {
	return g.inner.RegisterInterface(it)
}

func (g *e15GatedRepo) RegisterData(name string, dt *values.DataType) error {
	return g.inner.RegisterData(name, dt)
}

func (g *e15GatedRepo) DeclareSubtype(sub, super string) error {
	return g.inner.DeclareSubtype(sub, super)
}

func (g *e15GatedRepo) Relate(relation, from, to string) error {
	return g.inner.Relate(relation, from, to)
}

// E15TypeRepoConfig parameterises the singleton-vs-replicated read
// throughput comparison.
type E15TypeRepoConfig struct {
	Shards   int           // trader shards driving repository reads
	Replicas int           // read replicas in the replicated mode
	Workers  int           // concurrent importers
	Calls    int           // timed imports per mode
	Tau      time.Duration // authority service time (capacity 1/tau)
	Services int           // distinct service types
}

// E15TypeRepoRow is one mode's measurement.
type E15TypeRepoRow struct {
	Mode           string // "singleton" or "replicated"
	Replicas       int    // 0 for the singleton
	Calls          int
	Throughput     float64 // imports per second
	AuthorityReads uint64  // gated content reads that reached the authority (timed phase)
	ReplicaReads   uint64  // reads served from replica copies (replicated mode)
}

// E15TypeRepo measures trader-import throughput against the gated
// authority, first with every shard reading the singleton directly,
// then with reads served by gen-fenced local replicas.
func E15TypeRepo(cfg E15TypeRepoConfig) ([]E15TypeRepoRow, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 16
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 16
	}
	if cfg.Workers < 1 {
		cfg.Workers = 8
	}
	if cfg.Calls < 1 {
		cfg.Calls = 4000
	}
	if cfg.Tau <= 0 {
		cfg.Tau = 100 * time.Microsecond
	}
	if cfg.Services < 1 {
		cfg.Services = 64
	}
	var rows []E15TypeRepoRow
	for _, replicated := range []bool{false, true} {
		row, err := e15TypeRepoRow(cfg, replicated)
		if err != nil {
			return rows, fmt.Errorf("e15 typerepo (replicated=%v): %w", replicated, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func e15TypeRepoRow(cfg E15TypeRepoConfig, replicated bool) (E15TypeRepoRow, error) {
	gated := &e15GatedRepo{tau: cfg.Tau, inner: e13Repo(cfg.Services)}
	var repo typerepo.Repository = gated
	var rep *typerepo.Replicated
	if replicated {
		rep = typerepo.NewReplicated(gated, cfg.Replicas)
		repo = rep
	}
	fe := trader.NewSharded("e15", repo, 0)
	for i := 0; i < cfg.Shards; i++ {
		if err := fe.AddShard(fmt.Sprintf("t%d", i), trader.New(fmt.Sprintf("t%d", i), repo)); err != nil {
			return E15TypeRepoRow{}, err
		}
	}
	for i := 0; i < cfg.Services; i++ {
		_, err := fe.Export(e13TypeName(i),
			e13Ref(uint64(4000+i), e13TypeName(i), "sim://nowhere"),
			values.Null())
		if err != nil {
			return E15TypeRepoRow{}, err
		}
	}
	// Warm-up: one import per service type builds every shard's subtype
	// closure (no writes run during the timed phase, so the closures stay
	// valid), and in replicated mode syncs every replica copy.
	warm := cfg.Services
	if replicated && warm < cfg.Replicas {
		warm = cfg.Replicas
	}
	for i := 0; i < warm; i++ {
		svc := e13TypeName(i % cfg.Services)
		if got, err := fe.Import(trader.ImportRequest{ServiceType: svc, MaxMatches: 1}); err != nil || len(got) == 0 {
			return E15TypeRepoRow{}, fmt.Errorf("warm-up import %s: %d offers, %v", svc, len(got), err)
		}
	}

	readsBefore := gated.reads.Load()
	var next atomic.Int64
	errs := make(chan error, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(cfg.Calls) {
					return
				}
				svc := e13TypeName(int(n) % cfg.Services)
				got, err := fe.Import(trader.ImportRequest{ServiceType: svc, MaxMatches: 1})
				if err != nil {
					errs <- err
					return
				}
				if len(got) == 0 {
					errs <- fmt.Errorf("import %s: no offer", svc)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return E15TypeRepoRow{}, err
	}
	row := E15TypeRepoRow{
		Mode:           "singleton",
		Calls:          cfg.Calls,
		Throughput:     float64(cfg.Calls) / elapsed.Seconds(),
		AuthorityReads: gated.reads.Load() - readsBefore,
	}
	if replicated {
		row.Mode = "replicated"
		row.Replicas = cfg.Replicas
		row.ReplicaReads = rep.Stats().Reads
	}
	return row, nil
}

// E15BusConfig parameterises the bus publish-throughput sweep.
type E15BusConfig struct {
	ShardCounts []int         // sharded front-end sizes to sweep (singleton always runs)
	Workers     int           // concurrent publishers
	Events      int           // timed publishes per mode
	Topics      int           // distinct topics spread over the ring
	Tau         time.Duration // per-shard broker service time (capacity 1/tau)
}

// E15BusRow is one bus mode's measurement.
type E15BusRow struct {
	Mode       string // "singleton" or "sharded"
	Shards     int    // 0 for the singleton
	Events     int
	Throughput float64 // publishes per second
}

// E15Bus measures publish throughput with every shard behind a capacity
// gate (one broker node per shard, service time tau): the singleton is
// one gated broker, a k-shard front-end is k of them, and topics spread
// over the ring keep the gates busy in proportion to the shard count.
func E15Bus(cfg E15BusConfig) ([]E15BusRow, error) {
	if len(cfg.ShardCounts) == 0 {
		cfg.ShardCounts = []int{1, 4, 16}
	}
	if cfg.Workers < 1 {
		cfg.Workers = 32
	}
	if cfg.Events < 1 {
		cfg.Events = 4000
	}
	if cfg.Topics < 1 {
		cfg.Topics = 64
	}
	if cfg.Tau <= 0 {
		cfg.Tau = 100 * time.Microsecond
	}

	var rows []E15BusRow
	{
		b := coordination.NewBus()
		row := e15BusRow("singleton", 0, b, func(string) string { return "b0" }, []string{"b0"}, cfg)
		rows = append(rows, row)
	}
	for _, k := range cfg.ShardCounts {
		sb := coordination.NewShardedBus(k)
		rows = append(rows, e15BusRow("sharded", k, sb, sb.ShardFor, sb.ShardNames(), cfg))
	}
	return rows, nil
}

func e15BusRow(mode string, shards int, bus coordination.EventBus, shardFor func(string) string, names []string, cfg E15BusConfig) E15BusRow {
	// One gate per shard: the broker node's single-server queue. The
	// publish runs inside the gate — it is the broker's work.
	gates := make(map[string]*sync.Mutex, len(names))
	for _, n := range names {
		gates[n] = &sync.Mutex{}
	}
	var delivered atomic.Uint64
	cancel := bus.Subscribe("", nil, func(coordination.Event) { delivered.Add(1) })
	defer cancel()

	topics := make([]string, cfg.Topics)
	for i := range topics {
		topics[i] = fmt.Sprintf("e15.topic-%02d", i)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(cfg.Events) {
					return
				}
				topic := topics[int(n)%len(topics)]
				g := gates[shardFor(topic)]
				g.Lock()
				time.Sleep(cfg.Tau)
				bus.Publish(topic, values.Int(n))
				g.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return E15BusRow{
		Mode:       mode,
		Shards:     shards,
		Events:     cfg.Events,
		Throughput: float64(cfg.Events) / elapsed.Seconds(),
	}
}

// E15CrashReport is the crash-storm rebalance measurement.
type E15CrashReport struct {
	Offers      int
	Probes      uint64        // successful per-offer imports during the window
	Misses      uint64        // probes that found nothing (must be zero)
	MaxBlackout time.Duration // worst per-offer gap overlapping the storm
	Migrated    uint64        // offers moved live by the ring changes
	Rebalances  uint64
	CrashEvents int // chaos faults actually applied (must be >= 1)
	GroupSize   int // surviving members of the replicated shard
}

// E15CrashStorm is the E13 blackout probe with two twists: one trader
// shard is a coordination.ReplicaGroup of two replicas on separate
// simulated hosts, and a chaos script crashes one of those hosts while
// the ring gains a shard and loses another. The probes must observe
// zero misses: the migration protocol masks the rebalance and the
// group's sequenced fan-out + read failover mask the member crash.
func E15CrashStorm(offers int) (E15CrashReport, error) {
	if offers < 1 {
		offers = 64
	}
	net := netsim.New(15777)
	net.SetAcceptBacklog(16)
	repo := e13Repo(offers)
	fe := trader.NewSharded("fe", repo, 0)

	var srvs []*channel.Server
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
		for _, s := range srvs {
			s.Close()
		}
	}()
	newTraderNode := func(host, traderName string, nonce uint64) (*channel.Binding, error) {
		ep := naming.Endpoint("sim://" + host)
		l, err := net.Listen(ep)
		if err != nil {
			return nil, err
		}
		srv := channel.NewServer(l, channel.ServerConfig{})
		id := naming.InterfaceID{Nonce: nonce}
		if err := srv.Register(id, nil, &trader.Servant{T: trader.New(traderName, repo)}); err != nil {
			return nil, err
		}
		srv.Start()
		srvs = append(srvs, srv)
		return channel.Bind(naming.InterfaceRef{ID: id, Endpoint: ep}, channel.BindConfig{Transport: net})
	}
	addPlainShard := func(i int) error {
		b, err := newTraderNode(fmt.Sprintf("shard%d", i), fmt.Sprintf("s%d", i), uint64(100+i))
		if err != nil {
			return err
		}
		rem := trader.NewRemote(b)
		closers = append(closers, func() { rem.Close() })
		return fe.AddShard(fmt.Sprintf("s%d", i), rem)
	}

	// Shards s0 and s2 are plain remote traders; s1 is a replica group of
	// two trader replicas on hosts rep0 and rep1. The replicas share the
	// trader name "sg": offer ids are minted from the name and a local
	// counter, so the group's sequenced update stream yields identical ids
	// on both members.
	if err := addPlainShard(0); err != nil {
		return E15CrashReport{}, err
	}
	group := coordination.NewReplicaGroup()
	for r := 0; r < 2; r++ {
		b, err := newTraderNode(fmt.Sprintf("rep%d", r), "sg", uint64(200+r))
		if err != nil {
			return E15CrashReport{}, err
		}
		if err := group.Add(fmt.Sprintf("rep%d", r), b); err != nil {
			return E15CrashReport{}, err
		}
	}
	if err := fe.AddShard("s1", coordination.NewTradingGroup(group)); err != nil {
		return E15CrashReport{}, err
	}
	if err := addPlainShard(2); err != nil {
		return E15CrashReport{}, err
	}

	for i := 0; i < offers; i++ {
		_, err := fe.Export(e13TypeName(i),
			e13Ref(uint64(5000+i), e13TypeName(i), "sim://nowhere"),
			values.Null())
		if err != nil {
			return E15CrashReport{}, err
		}
	}

	var (
		mu       sync.Mutex
		lastSeen = make([]time.Time, offers)
		maxGap   = make([]time.Duration, offers)
		seen     int
		probes   atomic.Uint64
		misses   atomic.Uint64
		stop     atomic.Bool
	)
	record := func(i int, ok bool) {
		if !ok {
			misses.Add(1)
			return
		}
		probes.Add(1)
		now := time.Now()
		mu.Lock()
		if lastSeen[i].IsZero() {
			seen++
		} else if gap := now.Sub(lastSeen[i]); gap > maxGap[i] {
			maxGap[i] = gap
		}
		lastSeen[i] = now
		mu.Unlock()
	}
	const probers = 4
	errs := make(chan error, probers)
	var wg sync.WaitGroup
	for p := 0; p < probers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; !stop.Load(); i++ {
				idx := i % offers
				got, err := fe.Import(trader.ImportRequest{ServiceType: e13TypeName(idx), MaxMatches: 1})
				if err != nil {
					errs <- err
					return
				}
				record(idx, len(got) == 1)
				runtime.Gosched() // single-CPU hosts: let migration interleave
			}
		}(p)
	}
	fail := func(err error) (E15CrashReport, error) {
		stop.Store(true)
		wg.Wait()
		return E15CrashReport{}, err
	}
	for {
		mu.Lock()
		warm := seen == offers
		mu.Unlock()
		if warm {
			break
		}
		runtime.Gosched() // single-CPU hosts: let migration interleave
	}
	// Only gaps overlapping the storm window count.
	mu.Lock()
	for i := range maxGap {
		maxGap[i] = 0
	}
	mu.Unlock()

	// The storm: rep0 dies 2ms in, while the ring gains s3 and loses s0.
	chaos := netsim.NewChaos(net, netsim.ChaosConfig{}, netsim.Script{
		{At: 2 * time.Millisecond, Fault: netsim.Fault{Kind: netsim.FaultCrash, A: "rep0"}},
	})
	chaos.Start()
	if err := addPlainShard(3); err != nil {
		chaos.Stop()
		return fail(err)
	}
	if err := fe.RemoveShard("s0"); err != nil {
		chaos.Stop()
		return fail(err)
	}
	// Keep probing past the flips and the crash so trailing gaps close
	// and the dead member is actually exercised (and failed over).
	time.Sleep(25 * time.Millisecond)
	chaos.Stop()
	stop.Store(true)
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return E15CrashReport{}, err
	}

	rep := E15CrashReport{
		Offers:      offers,
		Probes:      probes.Load(),
		Misses:      misses.Load(),
		CrashEvents: len(chaos.Events()),
		GroupSize:   group.Size(),
	}
	mu.Lock()
	for _, g := range maxGap {
		if g > rep.MaxBlackout {
			rep.MaxBlackout = g
		}
	}
	mu.Unlock()
	st := fe.ShardStats()
	rep.Migrated, rep.Rebalances = st.Migrated, st.Rebalances
	return rep, nil
}

// E15Report bundles the four phases for odpbench.
type E15Report struct {
	TypeRepo []E15TypeRepoRow
	Bus      []E15BusRow
	Swarm    E13SwarmReport
	Crash    E15CrashReport
}

// E15 runs the de-singleton experiment. smoke trims the typerepo and bus
// sample counts for CI; the swarm stays at one million bindings in both
// modes — the scale claim is the point, and the CI gate asserts it.
func E15(smoke bool) (E15Report, error) {
	tr := E15TypeRepoConfig{Shards: 16, Replicas: 16, Workers: 8, Calls: 4000,
		Tau: 100 * time.Microsecond, Services: 64}
	bus := E15BusConfig{ShardCounts: []int{1, 4, 16}, Workers: 32, Events: 4000,
		Topics: 64, Tau: 100 * time.Microsecond}
	swarm := E13SwarmConfig{Bindings: 1_000_000, Hosts: 16, Nodes: 32,
		Services: 64, Shards: 4, TypeReplicas: 4}
	if smoke {
		tr.Calls = 2000
		bus.Events = 2000
	}
	var rep E15Report
	var err error
	if rep.TypeRepo, err = E15TypeRepo(tr); err != nil {
		return rep, err
	}
	if rep.Bus, err = E15Bus(bus); err != nil {
		return rep, err
	}
	if rep.Swarm, err = E13Swarm(swarm); err != nil {
		return rep, err
	}
	if rep.Crash, err = E15CrashStorm(64); err != nil {
		return rep, err
	}
	return rep, nil
}

// Records flattens the report into the unified benchmark-record shape.
func (r E15Report) Records() []Record {
	var out []Record
	for _, t := range r.TypeRepo {
		out = append(out, Record{
			Experiment: "e15",
			Scenario:   "typerepo-" + t.Mode,
			Params: map[string]float64{
				"replicas": float64(t.Replicas),
			},
			Metrics: map[string]float64{
				"calls":           float64(t.Calls),
				"throughput":      t.Throughput,
				"authority_reads": float64(t.AuthorityReads),
				"replica_reads":   float64(t.ReplicaReads),
			},
		})
	}
	for _, b := range r.Bus {
		out = append(out, Record{
			Experiment: "e15",
			Scenario:   "bus-" + b.Mode,
			Params:     map[string]float64{"shards": float64(b.Shards)},
			Metrics: map[string]float64{
				"events":     float64(b.Events),
				"throughput": b.Throughput,
			},
		})
	}
	s := r.Swarm
	out = append(out, Record{
		Experiment: "e15",
		Scenario:   "swarm",
		Params: map[string]float64{
			"hosts":         float64(s.Config.Hosts),
			"nodes":         float64(s.Config.Nodes),
			"services":      float64(s.Config.Services),
			"shards":        float64(s.Config.Shards),
			"type_replicas": float64(s.Config.TypeReplicas),
		},
		Metrics: map[string]float64{
			"bindings":         float64(s.Bindings),
			"lost_lookups":     float64(s.LostLookups),
			"conns":            float64(s.Conns),
			"dials":            float64(s.Dials),
			"cache_hit_rate":   s.CacheHitRate,
			"heap_per_binding": float64(s.HeapPerBinding),
			"p50_us":           float64(s.P50.Microseconds()),
			"p99_us":           float64(s.P99.Microseconds()),
			"bindings_per_sec": s.PerSec,
		},
	})
	c := r.Crash
	out = append(out, Record{
		Experiment: "e15",
		Scenario:   "crash-rebalance",
		Params:     map[string]float64{"offers": float64(c.Offers)},
		Metrics: map[string]float64{
			"probes":          float64(c.Probes),
			"misses":          float64(c.Misses),
			"max_blackout_us": float64(c.MaxBlackout.Microseconds()),
			"migrated":        float64(c.Migrated),
			"rebalances":      float64(c.Rebalances),
			"crash_events":    float64(c.CrashEvents),
			"group_size":      float64(c.GroupSize),
		},
	})
	return out
}
