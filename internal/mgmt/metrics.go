package mgmt

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter
// no-ops, so instrumented code never branches on configuration.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (zero for nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, live bindings).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (zero for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i). Fixed
// log-spaced buckets make histograms lock-free to record into and
// trivially mergeable across shards — the properties the observability
// layer needs to sit inside hot paths.
const histBuckets = 65 // bits.Len64 ranges over 0..64

// Histogram is a lock-cheap latency/size histogram: recording is two
// atomic adds and one atomic increment, with no locks and no allocation.
// Values are dimensionless uint64s; latency users record nanoseconds.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Snapshot returns a point-in-time copy of the histogram. Because
// recording is not atomic across the three fields, a snapshot taken under
// concurrent writes may be torn by a in-flight observation; counts and
// buckets are each individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram, the unit of
// merging and quantile estimation.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Merge returns the combination of two snapshots: the histogram that
// would have resulted from observing both inputs' samples. Because the
// buckets are fixed and aligned, merge is exact — merging per-shard
// histograms equals the histogram of the whole population.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound of the
// bucket containing the target rank — a conservative estimate with
// bounded relative error 2x, which is what log-spaced buckets buy.
// An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest value with at least ceil(q*N) samples at
	// or below it, so p99 of 10 samples is the slowest one, not the 9th.
	r := int64(math.Ceil(q*float64(s.Count))) - 1
	if r < 0 {
		r = 0
	}
	rank := uint64(r)
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if n > 0 && seen > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Mean returns the exact mean of the observed values (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketUpper returns the largest value falling in bucket i.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// ---------------------------------------------------------------------------
// Registry

// Registry names and owns instruments. Components resolve their
// instruments once at configuration time (the returned pointers are
// stable), so the per-operation path never touches the registry's lock.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil, which is itself a valid disabled counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Dump renders every instrument as sorted text, the form served by the
// management interface and printed by odpstat.
func (r *Registry) Dump() string {
	if r == nil {
		return "(metrics disabled)\n"
	}
	r.mu.Lock()
	counterNames := sortedKeys(r.counters)
	gaugeNames := sortedKeys(r.gauges)
	histNames := sortedKeys(r.hists)
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, name := range counterNames {
		fmt.Fprintf(&b, "counter   %-44s %d\n", name, counters[name].Load())
	}
	for _, name := range gaugeNames {
		fmt.Fprintf(&b, "gauge     %-44s %d\n", name, gauges[name].Load())
	}
	for _, name := range histNames {
		s := hists[name].Snapshot()
		fmt.Fprintf(&b, "histogram %-44s n=%d mean=%s p50=%s p99=%s max≤%s\n",
			name, s.Count,
			time.Duration(s.Mean()).Round(time.Microsecond),
			time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(s.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(s.Quantile(1)).Round(time.Microsecond))
	}
	if b.Len() == 0 {
		return "(no instruments)\n"
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
