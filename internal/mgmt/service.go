package mgmt

import (
	"context"
	"fmt"

	"repro/internal/types"
	"repro/internal/values"
)

// The management interface: the subsystem exposed as an ordinary ODP
// operational interface, so a node's observability is reached through the
// same channel machinery it observes. cmd/odpnode registers it beside the
// application interfaces; cmd/odpstat binds to it and renders the text.

// InterfaceTypeName is the declared type name of the management interface.
const InterfaceTypeName = "Management"

// InterfaceType returns the operational interface type of the management
// service.
func InterfaceType() *types.Interface {
	return types.OpInterface(InterfaceTypeName,
		types.Op("Dump", nil,
			types.Term("OK", types.P("text", values.TString()))),
		types.Op("Metrics", nil,
			types.Term("OK", types.P("text", values.TString()))),
		types.Op("Traces", nil,
			types.Term("OK", types.P("text", values.TString()))),
		types.Op("Trace", types.Params(types.P("id", values.TUint())),
			types.Term("OK", types.P("text", values.TString())),
			types.Term("Error", types.P("reason", values.TString()))),
	)
}

// ServeInvoke is the servant body of the management interface. It has the
// channel Handler signature without importing package channel (which
// imports mgmt); wrap it with channel.HandlerFunc at registration.
func (m *Management) ServeInvoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	if m == nil {
		return "OK", []values.Value{values.Str("(management disabled)\n")}, nil
	}
	switch op {
	case "Dump":
		return "OK", []values.Value{values.Str(m.Dump())}, nil
	case "Metrics":
		return "OK", []values.Value{values.Str(m.Registry.Dump())}, nil
	case "Traces":
		return "OK", []values.Value{values.Str(m.dumpTraceIndex())}, nil
	case "Trace":
		if len(args) != 1 {
			return "Error", []values.Value{values.Str("Trace expects one id argument")}, nil
		}
		id, ok := args[0].AsUint()
		if !ok {
			if n, okInt := args[0].AsInt(); okInt {
				id, ok = uint64(n), true
			}
		}
		if !ok {
			return "Error", []values.Value{values.Str("Trace id must be an unsigned integer")}, nil
		}
		spans := m.Tracer.Trace(TraceID(id))
		if len(spans) == 0 {
			return "Error", []values.Value{values.Str(fmt.Sprintf("no retained spans for trace %016x", id))}, nil
		}
		return "OK", []values.Value{values.Str(RenderTrace(spans))}, nil
	default:
		return "Error", []values.Value{values.Str("unknown management operation " + op)}, nil
	}
}

// dumpTraceIndex lists retained traces, one line each, newest last.
func (m *Management) dumpTraceIndex() string {
	if m == nil {
		return "(management disabled)\n"
	}
	ids := m.Tracer.TraceIDs()
	if len(ids) == 0 {
		return "(no traces retained)\n"
	}
	out := ""
	for _, id := range ids {
		spans := m.Tracer.Trace(id)
		var total int64
		for _, s := range spans {
			if s.Parent == 0 {
				total = int64(s.Duration)
			}
		}
		out += fmt.Sprintf("%016x  spans=%-3d root=%-30q total=%dns\n",
			uint64(id), len(spans), rootName(spans), total)
	}
	return out
}
