package mgmt

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilAndBasic(t *testing.T) {
	var nc *Counter
	nc.Inc()
	nc.Add(7)
	if nc.Load() != 0 {
		t.Fatalf("nil counter Load = %d", nc.Load())
	}
	c := &Counter{}
	c.Inc()
	c.Add(2)
	if c.Load() != 3 {
		t.Fatalf("counter = %d, want 3", c.Load())
	}

	var ng *Gauge
	ng.Set(5)
	ng.Add(1)
	if ng.Load() != 0 {
		t.Fatalf("nil gauge Load = %d", ng.Load())
	}
	g := &Gauge{}
	g.Set(5)
	g.Add(-2)
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Load())
	}
}

// TestHistogramMergeEqualsWhole is the merge property: observing a
// population into one histogram gives exactly the same snapshot as
// sharding the same population across several histograms and merging.
// Buckets are fixed and aligned, so this holds exactly, not
// approximately.
func TestHistogramMergeEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		nShards := 1 + rng.Intn(8)
		shards := make([]*Histogram, nShards)
		for i := range shards {
			shards[i] = &Histogram{}
		}
		whole := &Histogram{}
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Spread over the full bucket range, including 0 and huge values.
			v := uint64(rng.Int63()) >> uint(rng.Intn(63))
			whole.Observe(v)
			shards[rng.Intn(nShards)].Observe(v)
		}
		merged := HistogramSnapshot{}
		for _, s := range shards {
			merged = merged.Merge(s.Snapshot())
		}
		if merged != whole.Snapshot() {
			t.Fatalf("round %d: merged shards != whole population", round)
		}
	}
}

// TestHistogramQuantileBound checks the quantile estimate's contract: it
// is an upper bound on the true quantile, within the 2x relative error
// the log-spaced buckets allow.
func TestHistogramQuantileBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 10; round++ {
		h := &Histogram{}
		vals := make([]uint64, 500)
		for i := range vals {
			vals[i] = uint64(rng.Intn(1_000_000)) + 1
			h.Observe(vals[i])
		}
		s := h.Snapshot()
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			est := s.Quantile(q)
			// True quantile by sorting a copy.
			sorted := append([]uint64(nil), vals...)
			for i := 1; i < len(sorted); i++ {
				for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
					sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
				}
			}
			truth := sorted[int(q*float64(len(sorted)-1))]
			if est < truth {
				t.Fatalf("q%.2f estimate %d below true value %d", q, est, truth)
			}
			if est > 2*truth {
				t.Fatalf("q%.2f estimate %d beyond 2x true value %d", q, est, truth)
			}
		}
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var nh *Histogram
	nh.Observe(5)
	nh.ObserveDuration(time.Second)
	s := nh.Snapshot()
	if s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("nil histogram snapshot not empty: %+v", s)
	}
	h := &Histogram{}
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	h.ObserveDuration(-time.Second) // clamps to 0
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("count after clamped observation = %d", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(uint64(rng.Intn(1 << 20)))
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestRegistryResolvesAndDumps(t *testing.T) {
	r := NewRegistry()
	if c1, c2 := r.Counter("a"), r.Counter("a"); c1 != c2 {
		t.Fatal("same name resolved to different counters")
	}
	r.Counter("z.count").Add(3)
	r.Gauge("depth").Set(-4)
	r.Histogram("lat").Observe(1000)
	dump := r.Dump()
	for _, want := range []string{"z.count", "depth", "lat", "counter", "gauge", "histogram"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}

	var nr *Registry
	if nr.Counter("x") != nil || nr.Gauge("x") != nil || nr.Histogram("x") != nil {
		t.Fatal("nil registry must resolve nil instruments")
	}
	if nr.Dump() == "" {
		t.Fatal("nil registry dump empty")
	}
}
