package mgmt

import (
	"testing"
	"time"

	"repro/internal/values"
)

// fakeClock is a settable time source for window tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) time() time.Time { return c.now }

type capturePub struct {
	topics   []string
	payloads []values.Value
}

func (p *capturePub) Publish(topic string, payload values.Value) int {
	p.topics = append(p.topics, topic)
	p.payloads = append(p.payloads, payload)
	return 1
}

func TestMonitorNil(t *testing.T) {
	var m *Monitor
	if v := m.Observe(time.Second, true); v != nil {
		t.Fatal("nil monitor observed")
	}
	if v := m.Evaluate(); v != nil {
		t.Fatal("nil monitor evaluated")
	}
	if n, _ := m.Violations(); n != 0 {
		t.Fatal("nil monitor has violations")
	}
}

// TestMonitorEmptyWindow: with no samples at all, every check is silent —
// including staleness, because a never-observed flow has no freshest
// sample to age.
func TestMonitorEmptyWindow(t *testing.T) {
	m := NewMonitor(Envelope{
		Name: "e", Window: time.Second,
		MaxP99: time.Millisecond, MaxErrorRate: 0.01, MaxStaleness: 10 * time.Millisecond,
	}, nil)
	clock := &fakeClock{now: time.Unix(1000, 0)}
	m.SetClock(clock.time)
	if v := m.Evaluate(); v != nil {
		t.Fatalf("empty window produced violations: %v", v)
	}
	// Samples age fully out of the window: back to silent, even though
	// the flow is by now very stale.
	m.Observe(time.Microsecond, false)
	clock.now = clock.now.Add(time.Hour)
	if v := m.Evaluate(); v != nil {
		t.Fatalf("aged-out window produced violations: %v", v)
	}
	if m.WindowSize() != 0 {
		t.Fatalf("window not pruned: %d", m.WindowSize())
	}
}

func TestMonitorP99AndErrorRate(t *testing.T) {
	pub := &capturePub{}
	m := NewMonitor(Envelope{
		Name: "teller", Window: time.Minute, MinSamples: 10,
		MaxP99: time.Millisecond, MaxErrorRate: 0.2,
	}, pub)
	clock := &fakeClock{now: time.Unix(1000, 0)}
	m.SetClock(clock.time)

	// Nine fast, clean samples: below MinSamples, no claims yet.
	for i := 0; i < 9; i++ {
		if v := m.Observe(10*time.Microsecond, false); v != nil {
			t.Fatalf("violation below MinSamples: %v", v)
		}
	}
	// Tenth sample is slow and failed: p99 blows the envelope, and 1/10
	// failures is within the error budget — latency violates alone.
	viols := m.Observe(100*time.Millisecond, true)
	if len(viols) != 1 || viols[0].Kind != "p99" {
		t.Fatalf("want one p99 violation, got %v", viols)
	}
	// Two more failures: 3/12 > 0.2 — now the error rate violates too.
	m.Observe(10*time.Microsecond, true)
	viols = m.Observe(10*time.Microsecond, true)
	foundRate := false
	for _, v := range viols {
		if v.Kind == "error-rate" {
			foundRate = true
		}
	}
	if !foundRate {
		t.Fatalf("want error-rate violation, got %v", viols)
	}
	if len(pub.topics) == 0 || pub.topics[0] != ViolationTopic {
		t.Fatalf("violations not published: %v", pub.topics)
	}
	total, last := m.Violations()
	if total == 0 || len(last) == 0 {
		t.Fatalf("violations not recorded: total=%d last=%v", total, last)
	}
}

// TestMonitorStaleness: an idle flow violates staleness once its freshest
// sample ages past MaxStaleness (declared below Window so the samples are
// still in the window when it happens).
func TestMonitorStaleness(t *testing.T) {
	m := NewMonitor(Envelope{
		Name: "feed", Window: time.Minute, MaxStaleness: time.Second,
	}, nil)
	clock := &fakeClock{now: time.Unix(1000, 0)}
	m.SetClock(clock.time)
	m.Observe(time.Microsecond, false)
	if v := m.Evaluate(); v != nil {
		t.Fatalf("fresh flow violated: %v", v)
	}
	clock.now = clock.now.Add(5 * time.Second)
	viols := m.Evaluate()
	if len(viols) != 1 || viols[0].Kind != "staleness" {
		t.Fatalf("want staleness violation, got %v", viols)
	}
}

// TestMonitorClockRegression: a clock jumping backwards (simulated time,
// NTP step) must not discard window samples or panic; the evaluation
// simply carries on with the data it has.
func TestMonitorClockRegression(t *testing.T) {
	m := NewMonitor(Envelope{
		Name: "r", Window: time.Second, MaxErrorRate: 0.5, MinSamples: 1,
	}, nil)
	clock := &fakeClock{now: time.Unix(1000, 0)}
	m.SetClock(clock.time)
	m.Observe(time.Microsecond, true)
	m.Observe(time.Microsecond, true)
	if m.WindowSize() != 2 {
		t.Fatalf("window = %d", m.WindowSize())
	}
	// The clock regresses by an hour: both samples are now future-dated.
	clock.now = clock.now.Add(-time.Hour)
	viols := m.Evaluate()
	if m.WindowSize() != 2 {
		t.Fatalf("regressed clock discarded samples: window = %d", m.WindowSize())
	}
	// The all-failed window still violates the error budget.
	if len(viols) != 1 || viols[0].Kind != "error-rate" {
		t.Fatalf("want error-rate violation after regression, got %v", viols)
	}
	// Once the clock passes the samples again, they age out normally.
	clock.now = clock.now.Add(2 * time.Hour)
	m.Evaluate()
	if m.WindowSize() != 0 {
		t.Fatalf("samples did not age out after clock recovered: %d", m.WindowSize())
	}
}

func TestMonitorDefaultsAndDump(t *testing.T) {
	m := NewMonitor(Envelope{Name: "d"}, nil)
	if env := m.Envelope(); env.Window != 10*time.Second || env.MinSamples != 1 {
		t.Fatalf("defaults not applied: %+v", env)
	}
	m.Observe(time.Millisecond, false)
	if d := m.Dump(); d == "" {
		t.Fatal("empty dump")
	}
}
