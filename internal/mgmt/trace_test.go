package mgmt

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	if _, ok := FromContext(ctx); ok {
		t.Fatal("nil tracer injected a span context")
	}
	sp.Fail(errors.New("boom"))
	sp.FailTermination("Error")
	if sp.End() != 0 {
		t.Fatal("nil span has a duration")
	}
	if !sp.Context().IsZero() {
		t.Fatal("nil span has a context")
	}
	if tr.Spans() != nil || tr.Trace(1) != nil || tr.TraceIDs() != nil {
		t.Fatal("nil tracer retained spans")
	}
}

func TestSpanNestingAndTraceAssembly(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "root")
	sc := root.Context()
	if sc.IsZero() {
		t.Fatal("root has zero context")
	}
	cctx, child := tr.Start(ctx, "child")
	if child.Context().Trace != sc.Trace {
		t.Fatal("child left the trace")
	}
	_, grand := tr.Start(cctx, "grandchild")
	grand.Fail(errors.New("leaf failed"))
	grand.End()
	child.End()
	root.End()

	spans := tr.Trace(sc.Trace)
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	text := RenderTrace(spans)
	for _, want := range []string{"root", "child", "grandchild", "leaf failed"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, text)
		}
	}
	// The grandchild must be indented deeper than the child.
	if strings.Index(text, "    child") < 0 || strings.Index(text, "      grandchild") < 0 {
		t.Fatalf("tree not indented by depth:\n%s", text)
	}
}

func TestStartRemoteParentsAcrossTheWire(t *testing.T) {
	client := NewTracer(16)
	server := NewTracer(16)
	_, csp := client.Start(context.Background(), "transport")
	wire := csp.Context() // what the trace extension carries

	_, ssp := server.StartRemote(context.Background(), "dispatch",
		SpanContext{Trace: wire.Trace, Span: wire.Span})
	if ssp.Context().Trace != wire.Trace {
		t.Fatal("remote span did not join the caller's trace")
	}
	ssp.End()
	got := server.Trace(wire.Trace)
	if len(got) != 1 || got[0].Parent != wire.Span {
		t.Fatalf("dispatch span not parented under transport: %+v", got)
	}

	// A zero parent (untraced peer) still yields a local root span.
	_, orphan := server.StartRemote(context.Background(), "dispatch", SpanContext{})
	if orphan.Context().IsZero() {
		t.Fatal("untraced remote call produced no span")
	}
}

func TestTracerRingBoundsAndStats(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(context.Background(), "s")
		sp.End()
	}
	if n := len(tr.Spans()); n != 4 {
		t.Fatalf("ring retained %d spans, want 4", n)
	}
	st := tr.Stats()
	if st.Started != 10 || st.Finished != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", st.Dropped)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.Start(context.Background(), "root")
				_, child := tr.Start(ctx, "child")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	if st := tr.Stats(); st.Finished != 8*200*2 {
		t.Fatalf("finished = %d", st.Finished)
	}
}

func TestManagementDomainAndService(t *testing.T) {
	var disabled *Management
	if disabled.ChannelClient("x") != nil || disabled.ChannelServer("x") != nil ||
		disabled.Group("x") != nil || disabled.Tx("x") != nil ||
		disabled.TraderInstr("x") != nil || disabled.Net("x") != nil {
		t.Fatal("disabled domain handed out instruments")
	}
	if !strings.Contains(disabled.Dump(), "disabled") {
		t.Fatal("disabled dump")
	}
	term, res, err := disabled.ServeInvoke(context.Background(), "Dump", nil)
	if err != nil || term != "OK" || len(res) != 1 {
		t.Fatalf("disabled ServeInvoke = %s %v %v", term, res, err)
	}

	m := New()
	cc := m.ChannelClient("teller")
	cc.Invocations.Inc()
	cc.InvokeLatency.Observe(1500)
	ctx, sp := m.Tracer.Start(context.Background(), "op")
	_, child := m.Tracer.Start(ctx, "inner")
	child.End()
	sp.End()

	term, res, err = m.ServeInvoke(context.Background(), "Dump", nil)
	if err != nil || term != "OK" {
		t.Fatalf("Dump: %s %v", term, err)
	}
	text, _ := res[0].AsString()
	if !strings.Contains(text, "channel.client.teller.invocations") {
		t.Fatalf("dump missing metric:\n%s", text)
	}
	if !strings.Contains(text, "== traces ==") {
		t.Fatalf("dump missing trace section:\n%s", text)
	}
}
