package mgmt

import (
	"fmt"
	"strings"
	"sync"
)

// This file defines the per-component instrument bundles. Each
// instrumented package (channel, coordination, transactions, trader,
// netsim) takes exactly one optional pointer to its bundle; a nil bundle
// disables that component's instrumentation at the cost of one nil check,
// which is what lets the hooks ship permanently inside the hot paths that
// earlier perf work tuned.

// ChannelClientInstruments instrument the client end of a channel: the
// stub, binder and protocol stages of one binding (or a family of
// bindings sharing a name).
type ChannelClientInstruments struct {
	Tracer *Tracer

	Invocations   *Counter   // interrogations + announcements started
	Failures      *Counter   // invocations returning infrastructure errors
	Retries       *Counter   // failure-transparency retries
	Relocations   *Counter   // relocation-transparency refreshes
	InvokeLatency *Histogram // end-to-end interrogation latency, ns

	QoS *Monitor // optional envelope over invocation latency/errors
}

// ChannelServerInstruments instrument the server end: dispatch of inbound
// calls to servants, and the transport sessions those calls arrive on
// (each accepted connection is one multi-binding session).
type ChannelServerInstruments struct {
	Tracer *Tracer

	Dispatches      *Counter   // calls dispatched to servants
	Errors          *Counter   // error replies sent
	BadFrames       *Counter   // undecodable inbound frames
	FlowTypeErrors  *Counter   // flow traffic rejected by the server stub's type checks
	DispatchLatency *Histogram // servant execution latency, ns

	SessionsOpen       *Gauge     // live inbound sessions (accepted conns)
	SessionsTotal      *Counter   // sessions accepted over the server's lifetime
	BindingsPerSession *Histogram // distinct binding ids seen, observed at session close

	// Reply batching: concurrent replies to one inbound session coalesce
	// into vectored writes, mirroring the client-side session sender.
	ReplyFramesPerWrite *Histogram // reply frames per transport write
	ReplyBatchBytes     *Histogram // bytes per batched reply write
	ReplyQueueDepth     *Gauge     // reply frames queued awaiting the writer
}

// SessionInstruments instrument the client-side session layer: the
// per-(transport, endpoint) shared connections that bindings multiplex
// over.
type SessionInstruments struct {
	SessionsOpen    *Gauge     // live outbound sessions
	Dials           *Counter   // transport dials (single-flight: one per session establishment)
	Reconnects      *Counter   // session deaths — every binding on the session failed over at once
	BindingsAtDeath *Histogram // bindings attached when a session died or was released
	Probes          *Counter   // liveness probes actually sent on the wire
	ProbesCoalesced *Counter   // probes answered by an already in-flight probe

	// Adaptive frame batching: the per-session sender goroutine drains
	// whatever is queued into one vectored write, so these show the batch
	// sizes the workload actually achieves (1 frame/write when idle,
	// growing under concurrent load).
	FramesPerWrite *Histogram // frames per transport write
	BatchBytes     *Histogram // bytes per transport write
	SendQueueDepth *Gauge     // frames queued awaiting the sender
}

// StreamInstruments instrument one end of the streaming data plane: a
// producer's credit window and stall behaviour, or a consumer's delivery
// rate and queue ceiling. One bundle per stream family (producer and
// consumer ends resolve distinct names, so their gauges never collide).
type StreamInstruments struct {
	ElementsSent *Counter   // elements handed to the wire (producer end)
	ElementsRecv *Counter   // elements delivered to the application (consumer end)
	Batches      *Counter   // flow-batch frames sent or delivered
	CreditElems  *Gauge     // credit remaining, elements (producer: granted-used; consumer: granted-consumed)
	CreditBytes  *Gauge     // credit remaining, bytes
	Stalls       *Counter   // producer sends that blocked at zero credit
	StallNs      *Histogram // time spent blocked per stall, ns
	ElemsPerSec  *Histogram // consumer delivery rate sampled per grant cycle
	QueuedElems  *Gauge     // consumer elements buffered awaiting Recv
}

// GroupInstruments instrument a replica group (coordination).
type GroupInstruments struct {
	Tracer *Tracer

	Updates       *Counter
	Failovers     *Counter
	DegradedReads *Counter   // reads served with the staleness flag set
	UpdateLatency *Histogram // full fan-out latency, ns
}

// TxInstruments instrument a transaction coordinator.
type TxInstruments struct {
	Tracer *Tracer

	Commits       *Counter
	Aborts        *Counter
	Vetoes        *Counter
	CommitLatency *Histogram // two-phase commit latency, ns
}

// TraderInstruments instrument a trader's import (lookup) path.
type TraderInstruments struct {
	Imports       *Counter
	Matched       *Counter
	ImportLatency *Histogram // import latency, ns
}

// ShardInstruments instrument a sharded-trader (or sharded-relocator)
// front-end: the ring shape and the routing work per import.
type ShardInstruments struct {
	Shards          *Gauge     // shards currently on the ring
	RingEpoch       *Gauge     // ring generation (bumps on flip and on settle)
	Rebalances      *Counter   // completed ring changes
	MigratedOffers  *Counter   // offers moved live during rebalances
	Imports         *Counter   // imports answered by the front-end
	Matched         *Counter   // offers returned
	ShardsPerImport *Histogram // shard queries issued per import
	ImportLatency   *Histogram // front-end import latency, ns
}

// ShardLegInstruments instrument one shard as seen from a front-end: the
// per-shard gauges that show whether the ring is balanced.
type ShardLegInstruments struct {
	Offers        *Gauge   // offers currently homed on this shard
	RoutedExports *Counter // exports (and installs) routed here
	RoutedImports *Counter // shard queries routed here
}

// PolicyInstruments instrument the failure-policy layer: circuit-breaker
// state transitions and retry/backoff activity. One bundle is shared by
// every breaker in a BreakerSet and by the bindings applying a
// RetryPolicy, so odpstat shows breaker state and retry pressure live.
type PolicyInstruments struct {
	BreakerOpens  *Counter // transitions into the open state
	BreakerCloses *Counter // successful half-open probes re-closing a breaker
	BreakersOpen  *Gauge   // breakers currently open
	Probes        *Counter // half-open probes admitted
	Rejected      *Counter // calls refused while a breaker was open
	Retries       *Counter // policy-paced retries performed
	BackoffNs     *Counter // total nanoseconds slept in retry backoff
}

// NetInstruments instrument a transport/network: frame-level counters.
type NetInstruments struct {
	Sent        *Counter
	Delivered   *Counter
	Dropped     *Counter
	Partitioned *Counter // drops caused specifically by a partition
}

// HealthInstruments instrument one endpoint monitored by the failure
// detector: its liveness state and suspicion level as gauges (what the
// odpstat health table renders), plus probe activity.
type HealthInstruments struct {
	State       *Gauge     // 0=alive 1=suspect 2=dead
	Suspicion   *Gauge     // suspicion level, per-mille (0..1000)
	Probes      *Counter   // probes completed (active and passive samples)
	Misses      *Counter   // probes that failed or exceeded the adaptive timeout
	Transitions *Counter   // liveness transitions
	RTT         *Histogram // successful probe round trips, ns
}

// BusInstruments instrument one event-bus shard: the depth of its bounded
// subscriber queues plus publish/drop counters.
type BusInstruments struct {
	QueueDepth *Gauge   // events sitting in bounded subscriber queues
	Published  *Counter // events published on this shard
	Dropped    *Counter // events dropped at full subscriber queues
}

// ---------------------------------------------------------------------------
// Management: the per-node (or per-system) aggregate

// Management bundles one observability domain: a tracer, a metrics
// registry and the QoS monitors, with the constructors that wire them to
// components and the text dumps that the management interface serves.
type Management struct {
	Registry *Registry
	Tracer   *Tracer

	mu       sync.Mutex
	monitors []*Monitor
}

// New creates an enabled management domain with a default-capacity
// tracer. (A nil *Management is the disabled domain: all its instrument
// constructors return nil bundles.)
func New() *Management {
	return &Management{
		Registry: NewRegistry(),
		Tracer:   NewTracer(0),
	}
}

// Monitor creates and registers a QoS monitor under this domain.
func (m *Management) Monitor(env Envelope, pub Publisher) *Monitor {
	if m == nil {
		return nil
	}
	mon := NewMonitor(env, pub)
	m.mu.Lock()
	m.monitors = append(m.monitors, mon)
	m.mu.Unlock()
	return mon
}

// Monitors returns the registered QoS monitors.
func (m *Management) Monitors() []*Monitor {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Monitor, len(m.monitors))
	copy(out, m.monitors)
	return out
}

// ChannelClient resolves a client-channel bundle named name (e.g. the
// bound interface's type). Metrics land under channel.client.<name>.*.
func (m *Management) ChannelClient(name string) *ChannelClientInstruments {
	if m == nil {
		return nil
	}
	p := "channel.client." + name + "."
	return &ChannelClientInstruments{
		Tracer:        m.Tracer,
		Invocations:   m.Registry.Counter(p + "invocations"),
		Failures:      m.Registry.Counter(p + "failures"),
		Retries:       m.Registry.Counter(p + "retries"),
		Relocations:   m.Registry.Counter(p + "relocations"),
		InvokeLatency: m.Registry.Histogram(p + "invoke_latency_ns"),
	}
}

// ChannelServer resolves a server-channel bundle named name (e.g. the
// node id).
func (m *Management) ChannelServer(name string) *ChannelServerInstruments {
	if m == nil {
		return nil
	}
	p := "channel.server." + name + "."
	return &ChannelServerInstruments{
		Tracer:              m.Tracer,
		Dispatches:          m.Registry.Counter(p + "dispatches"),
		Errors:              m.Registry.Counter(p + "errors"),
		BadFrames:           m.Registry.Counter(p + "bad_frames"),
		FlowTypeErrors:      m.Registry.Counter(p + "flow_type_errors"),
		DispatchLatency:     m.Registry.Histogram(p + "dispatch_latency_ns"),
		SessionsOpen:        m.Registry.Gauge(p + "sessions_open"),
		SessionsTotal:       m.Registry.Counter(p + "sessions_total"),
		BindingsPerSession:  m.Registry.Histogram(p + "bindings_per_session"),
		ReplyFramesPerWrite: m.Registry.Histogram(p + "reply_frames_per_write"),
		ReplyBatchBytes:     m.Registry.Histogram(p + "reply_batch_bytes"),
		ReplyQueueDepth:     m.Registry.Gauge(p + "reply_queue_depth"),
	}
}

// Sessions resolves a client-side session-layer bundle named name (e.g.
// the client host). Metrics land under session.<name>.*.
func (m *Management) Sessions(name string) *SessionInstruments {
	if m == nil {
		return nil
	}
	p := "session." + name + "."
	return &SessionInstruments{
		SessionsOpen:    m.Registry.Gauge(p + "open"),
		Dials:           m.Registry.Counter(p + "dials"),
		Reconnects:      m.Registry.Counter(p + "reconnects"),
		BindingsAtDeath: m.Registry.Histogram(p + "bindings_at_death"),
		Probes:          m.Registry.Counter(p + "probes"),
		ProbesCoalesced: m.Registry.Counter(p + "probes_coalesced"),
		FramesPerWrite:  m.Registry.Histogram(p + "frames_per_write"),
		BatchBytes:      m.Registry.Histogram(p + "batch_bytes"),
		SendQueueDepth:  m.Registry.Gauge(p + "send_queue_depth"),
	}
}

// Stream resolves a streaming bundle named name (e.g. "<flow>.producer"
// or "<flow>.consumer"). Metrics land under stream.<name>.*.
func (m *Management) Stream(name string) *StreamInstruments {
	if m == nil {
		return nil
	}
	p := "stream." + name + "."
	return &StreamInstruments{
		ElementsSent: m.Registry.Counter(p + "elements_sent"),
		ElementsRecv: m.Registry.Counter(p + "elements_recv"),
		Batches:      m.Registry.Counter(p + "batches"),
		CreditElems:  m.Registry.Gauge(p + "credit_elems"),
		CreditBytes:  m.Registry.Gauge(p + "credit_bytes"),
		Stalls:       m.Registry.Counter(p + "stalls"),
		StallNs:      m.Registry.Histogram(p + "stall_ns"),
		ElemsPerSec:  m.Registry.Histogram(p + "elements_per_sec"),
		QueuedElems:  m.Registry.Gauge(p + "queued_elems"),
	}
}

// Group resolves a replica-group bundle.
func (m *Management) Group(name string) *GroupInstruments {
	if m == nil {
		return nil
	}
	p := "replica." + name + "."
	return &GroupInstruments{
		Tracer:        m.Tracer,
		Updates:       m.Registry.Counter(p + "updates"),
		Failovers:     m.Registry.Counter(p + "failovers"),
		DegradedReads: m.Registry.Counter(p + "degraded_reads"),
		UpdateLatency: m.Registry.Histogram(p + "update_latency_ns"),
	}
}

// Tx resolves a transaction-coordinator bundle.
func (m *Management) Tx(name string) *TxInstruments {
	if m == nil {
		return nil
	}
	p := "tx." + name + "."
	return &TxInstruments{
		Tracer:        m.Tracer,
		Commits:       m.Registry.Counter(p + "commits"),
		Aborts:        m.Registry.Counter(p + "aborts"),
		Vetoes:        m.Registry.Counter(p + "vetoes"),
		CommitLatency: m.Registry.Histogram(p + "commit_latency_ns"),
	}
}

// Trader resolves a trader bundle.
func (m *Management) TraderInstr(name string) *TraderInstruments {
	if m == nil {
		return nil
	}
	p := "trader." + name + "."
	return &TraderInstruments{
		Imports:       m.Registry.Counter(p + "imports"),
		Matched:       m.Registry.Counter(p + "matched"),
		ImportLatency: m.Registry.Histogram(p + "import_latency_ns"),
	}
}

// TraderShards resolves a sharded front-end bundle. Metrics land under
// trader.<name>.shards.*.
func (m *Management) TraderShards(name string) *ShardInstruments {
	if m == nil {
		return nil
	}
	p := "trader." + name + ".shards."
	return &ShardInstruments{
		Shards:          m.Registry.Gauge(p + "count"),
		RingEpoch:       m.Registry.Gauge(p + "ring_epoch"),
		Rebalances:      m.Registry.Counter(p + "rebalances"),
		MigratedOffers:  m.Registry.Counter(p + "migrated_offers"),
		Imports:         m.Registry.Counter(p + "imports"),
		Matched:         m.Registry.Counter(p + "matched"),
		ShardsPerImport: m.Registry.Histogram(p + "shards_per_import"),
		ImportLatency:   m.Registry.Histogram(p + "import_latency_ns"),
	}
}

// TraderShardLeg resolves the per-shard gauges of one shard leg. Metrics
// land under trader.<name>.shard.<shard>.*.
func (m *Management) TraderShardLeg(name, shard string) *ShardLegInstruments {
	if m == nil {
		return nil
	}
	p := "trader." + name + ".shard." + shard + "."
	return &ShardLegInstruments{
		Offers:        m.Registry.Gauge(p + "offers"),
		RoutedExports: m.Registry.Counter(p + "routed_exports"),
		RoutedImports: m.Registry.Counter(p + "routed_imports"),
	}
}

// Policy resolves a failure-policy bundle. Metrics land under
// policy.<name>.* — or directly under policy.* when name is empty — so
// the breaker counters the chaos experiment watches are
// policy.breaker.open and policy.retry.backoff_ns.
func (m *Management) Policy(name string) *PolicyInstruments {
	if m == nil {
		return nil
	}
	p := "policy."
	if name != "" {
		p += name + "."
	}
	return &PolicyInstruments{
		BreakerOpens:  m.Registry.Counter(p + "breaker.open"),
		BreakerCloses: m.Registry.Counter(p + "breaker.close"),
		BreakersOpen:  m.Registry.Gauge(p + "breaker.open_now"),
		Probes:        m.Registry.Counter(p + "breaker.probes"),
		Rejected:      m.Registry.Counter(p + "breaker.rejected"),
		Retries:       m.Registry.Counter(p + "retry.attempts"),
		BackoffNs:     m.Registry.Counter(p + "retry.backoff_ns"),
	}
}

// Net resolves a network bundle.
func (m *Management) Net(name string) *NetInstruments {
	if m == nil {
		return nil
	}
	p := "net." + name + "."
	return &NetInstruments{
		Sent:        m.Registry.Counter(p + "sent"),
		Delivered:   m.Registry.Counter(p + "delivered"),
		Dropped:     m.Registry.Counter(p + "dropped"),
		Partitioned: m.Registry.Counter(p + "partitioned"),
	}
}

// Bus resolves an event-bus shard bundle. Metric names follow the
// bus.<shard>.* convention ("bus.b3.queue_depth", "bus.b3.dropped"); a
// sharded bus resolves one bundle per shard.
func (m *Management) Bus(shard string) *BusInstruments {
	if m == nil {
		return nil
	}
	p := "bus." + shard + "."
	return &BusInstruments{
		QueueDepth: m.Registry.Gauge(p + "queue_depth"),
		Published:  m.Registry.Counter(p + "published"),
		Dropped:    m.Registry.Counter(p + "dropped"),
	}
}

// Health resolves the failure-detector bundle of one monitored endpoint.
// Metrics land under health.<endpoint>.* ("health.m0.state",
// "health.m0.suspicion"), which is what odpstat's health table reads.
func (m *Management) Health(endpoint string) *HealthInstruments {
	if m == nil {
		return nil
	}
	p := "health." + endpoint + "."
	return &HealthInstruments{
		State:       m.Registry.Gauge(p + "state"),
		Suspicion:   m.Registry.Gauge(p + "suspicion"),
		Probes:      m.Registry.Counter(p + "probes"),
		Misses:      m.Registry.Counter(p + "misses"),
		Transitions: m.Registry.Counter(p + "transitions"),
		RTT:         m.Registry.Histogram(p + "rtt_ns"),
	}
}

// Dump renders the whole domain — metrics, QoS monitors, tracer stats and
// recent traces — as text.
func (m *Management) Dump() string {
	if m == nil {
		return "(management disabled)\n"
	}
	var b strings.Builder
	b.WriteString("== metrics ==\n")
	b.WriteString(m.Registry.Dump())
	if mons := m.Monitors(); len(mons) > 0 {
		b.WriteString("== qos ==\n")
		for _, mon := range mons {
			b.WriteString(mon.Dump())
		}
	}
	ts := m.Tracer.Stats()
	fmt.Fprintf(&b, "== traces ==\nspans started=%d finished=%d dropped=%d\n",
		ts.Started, ts.Finished, ts.Dropped)
	ids := m.Tracer.TraceIDs()
	const maxListed = 10
	if len(ids) > maxListed {
		fmt.Fprintf(&b, "(%d traces retained, newest %d listed)\n", len(ids), maxListed)
		ids = ids[len(ids)-maxListed:]
	}
	for _, id := range ids {
		spans := m.Tracer.Trace(id)
		fmt.Fprintf(&b, "trace %016x: %d spans, root %q\n", uint64(id), len(spans), rootName(spans))
	}
	return b.String()
}

func rootName(spans []Span) string {
	byID := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	for _, s := range spans {
		if s.Parent == 0 || !byID[s.Parent] {
			return s.Name
		}
	}
	return "?"
}
