package mgmt

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/values"
)

// Envelope declares the QoS requirements of the engineering viewpoint for
// one monitored flow: the tutorial requires environment contracts to
// capture "quality of service" terms, and this is their runtime form.
// Zero fields are unconstrained.
type Envelope struct {
	Name         string        // what is being monitored ("teller.invoke")
	Window       time.Duration // sliding evaluation window (default 10s)
	MinSamples   int           // evaluations need at least this many samples (default 1)
	MaxP99       time.Duration // p99 latency ceiling
	MaxErrorRate float64       // failed fraction ceiling, 0..1
	MaxStaleness time.Duration // max age of the freshest sample
}

// Violation is one envelope breach at one evaluation.
type Violation struct {
	Envelope string
	Kind     string // "p99", "error-rate", "staleness"
	Value    float64
	Limit    float64
	At       time.Time
}

// String renders the violation for logs and dumps.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s %.4g exceeds %.4g", v.Envelope, v.Kind, v.Value, v.Limit)
}

// Publisher is where violation events go: the coordination event
// notification function. *coordination.Bus satisfies it (mgmt cannot
// import coordination, which imports mgmt).
type Publisher interface {
	Publish(topic string, payload values.Value) int
}

// ViolationTopic is the event-bus topic QoS violations publish under.
const ViolationTopic = "mgmt.qos.violation"

// qosSample is one observation in the sliding window.
type qosSample struct {
	at     time.Time
	lat    time.Duration
	failed bool
}

// Monitor evaluates one Envelope over a sliding window of observations.
// A nil *Monitor no-ops. Observations are mutex-guarded (QoS monitoring
// sits beside, not inside, the per-message hot path: one Observe per
// invocation, not per frame).
type Monitor struct {
	env   Envelope
	clock func() time.Time
	pub   Publisher

	mu         sync.Mutex
	samples    []qosSample // window, in arrival order
	violations uint64
	lastViol   []Violation
}

// NewMonitor creates a monitor for the envelope. pub may be nil (monitor
// still evaluates, violations are only recorded, not published).
func NewMonitor(env Envelope, pub Publisher) *Monitor {
	if env.Window <= 0 {
		env.Window = 10 * time.Second
	}
	if env.MinSamples <= 0 {
		env.MinSamples = 1
	}
	return &Monitor{env: env, clock: time.Now, pub: pub}
}

// SetClock replaces the monitor's time source (simulated time in tests).
// Not safe to call concurrently with Observe.
func (m *Monitor) SetClock(clock func() time.Time) {
	if m == nil || clock == nil {
		return
	}
	m.clock = clock
}

// Envelope returns the declared envelope.
func (m *Monitor) Envelope() Envelope {
	if m == nil {
		return Envelope{}
	}
	return m.env
}

// Observe records one interaction outcome and evaluates the envelope,
// publishing any violations. It returns the violations found (nil when
// inside the envelope).
func (m *Monitor) Observe(lat time.Duration, failed bool) []Violation {
	if m == nil {
		return nil
	}
	now := m.clock()
	m.mu.Lock()
	m.samples = append(m.samples, qosSample{at: now, lat: lat, failed: failed})
	viols := m.evaluateLocked(now)
	m.mu.Unlock()
	m.publish(viols)
	return viols
}

// Evaluate re-checks the envelope without a new sample — how staleness
// violations surface on an idle flow.
func (m *Monitor) Evaluate() []Violation {
	if m == nil {
		return nil
	}
	now := m.clock()
	m.mu.Lock()
	viols := m.evaluateLocked(now)
	m.mu.Unlock()
	m.publish(viols)
	return viols
}

// evaluateLocked prunes the window and checks every declared ceiling.
func (m *Monitor) evaluateLocked(now time.Time) []Violation {
	// Prune samples older than the window. A regressed clock (now earlier
	// than samples already recorded) prunes nothing: !After covers both
	// in-window and future-dated samples, so a clock jumping backwards —
	// which simulated time and NTP both produce — never discards data or
	// panics; the samples age out when the clock passes them again.
	cutoff := now.Add(-m.env.Window)
	keep := m.samples[:0]
	for _, s := range m.samples {
		if !cutoff.After(s.at) || s.at.After(now) {
			keep = append(keep, s)
		}
	}
	m.samples = keep

	// An empty window makes no latency or error-rate claims, and is
	// silent on staleness too: a never-observed flow has no freshest
	// sample to age. Declare MaxStaleness below Window so an idle flow
	// violates while its last samples are still in the window.
	var viols []Violation
	if m.env.MaxStaleness > 0 && len(m.samples) > 0 {
		freshest := m.samples[0].at
		for _, s := range m.samples[1:] {
			if s.at.After(freshest) {
				freshest = s.at
			}
		}
		if age := now.Sub(freshest); age > m.env.MaxStaleness {
			viols = append(viols, Violation{
				Envelope: m.env.Name, Kind: "staleness",
				Value: age.Seconds(), Limit: m.env.MaxStaleness.Seconds(), At: now,
			})
		}
	}
	if len(m.samples) < m.env.MinSamples {
		// Too few samples for rate/quantile claims; staleness (above) is
		// still meaningful.
		m.noteLocked(viols)
		return viols
	}
	if m.env.MaxP99 > 0 {
		var h Histogram
		for _, s := range m.samples {
			h.ObserveDuration(s.lat)
		}
		if p99 := time.Duration(h.Snapshot().Quantile(0.99)); p99 > m.env.MaxP99 {
			viols = append(viols, Violation{
				Envelope: m.env.Name, Kind: "p99",
				Value: p99.Seconds(), Limit: m.env.MaxP99.Seconds(), At: now,
			})
		}
	}
	if m.env.MaxErrorRate > 0 {
		failed := 0
		for _, s := range m.samples {
			if s.failed {
				failed++
			}
		}
		if rate := float64(failed) / float64(len(m.samples)); rate > m.env.MaxErrorRate {
			viols = append(viols, Violation{
				Envelope: m.env.Name, Kind: "error-rate",
				Value: rate, Limit: m.env.MaxErrorRate, At: now,
			})
		}
	}
	m.noteLocked(viols)
	return viols
}

func (m *Monitor) noteLocked(viols []Violation) {
	if len(viols) > 0 {
		m.violations += uint64(len(viols))
		m.lastViol = viols
	}
}

// publish pushes violations onto the event bus as record values.
func (m *Monitor) publish(viols []Violation) {
	if m.pub == nil {
		return
	}
	for _, v := range viols {
		m.pub.Publish(ViolationTopic, values.Record(
			values.F("envelope", values.Str(v.Envelope)),
			values.F("kind", values.Str(v.Kind)),
			values.F("value", values.Float(v.Value)),
			values.F("limit", values.Float(v.Limit)),
		))
	}
}

// Violations returns the cumulative violation count and the violations of
// the most recent breaching evaluation.
func (m *Monitor) Violations() (uint64, []Violation) {
	if m == nil {
		return 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	last := make([]Violation, len(m.lastViol))
	copy(last, m.lastViol)
	return m.violations, last
}

// WindowSize returns the number of samples currently in the window
// (without re-pruning; diagnostic only).
func (m *Monitor) WindowSize() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.samples)
}

// Dump renders the monitor state as one text line.
func (m *Monitor) Dump() string {
	if m == nil {
		return ""
	}
	m.mu.Lock()
	n := len(m.samples)
	total := m.violations
	last := m.lastViol
	m.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "qos %-30s window=%d violations=%d", m.env.Name, n, total)
	for _, v := range last {
		fmt.Fprintf(&b, " [%s %.4g>%.4g]", v.Kind, v.Value, v.Limit)
	}
	b.WriteByte('\n')
	return b.String()
}
