// Package mgmt implements the ODP management functions of the
// engineering viewpoint: the tutorial names node, object and channel
// management as first-class parts of the infrastructure, and this package
// gives them something to manage with — per-invocation tracing across the
// channel stages (stub, binder, protocol object, server dispatch),
// a metrics registry of atomic counters, gauges and mergeable log-bucketed
// histograms, and QoS monitors that evaluate declared envelopes over
// sliding windows.
//
// Everything here is built to be safe to leave in hot paths permanently:
// every instrument pointer may be nil, and every method on a nil receiver
// is a no-op, so the disabled path costs exactly one nil check. The
// package depends only on internal/values (for QoS event payloads and the
// management service), never on the packages it instruments, so channel,
// coordination, transactions, trader and netsim can all import it without
// cycles.
package mgmt

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end interaction (for the bank: one
// transfer, however many channels, replicas and transaction participants
// it touches). It is minted at the client stub and propagated through the
// wire protocol as an optional message extension.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// SpanContext is the propagated part of a span: enough to parent a remote
// child. The zero SpanContext means "untraced".
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// IsZero reports whether the context carries no trace.
func (c SpanContext) IsZero() bool { return c.Trace == 0 }

// Span is one finished unit of work within a trace: a channel stage, a
// server dispatch, a replica update leg, a transaction participant phase.
type Span struct {
	Trace    TraceID
	ID       SpanID
	Parent   SpanID // zero for a root span
	Name     string
	Start    time.Time
	Duration time.Duration
	Err      string // non-empty when the work failed
}

type traceCtxKey struct{}

// ContextWith returns ctx carrying the span context, so downstream
// components (and remote peers, via the wire extension) can parent their
// spans under it.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, sc)
}

// FromContext extracts the ambient span context, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(traceCtxKey{}).(SpanContext)
	return sc, ok && !sc.IsZero()
}

// Tracer records spans into a bounded ring: the most recent spans win,
// so a long-running node keeps a steady window of recent interactions
// without growing. A nil *Tracer is a valid, disabled tracer — every
// method no-ops — which is how instrumentation ships always-on in hot
// paths.
type Tracer struct {
	nextID atomic.Uint64
	clock  func() time.Time

	started  atomic.Uint64
	finished atomic.Uint64
	dropped  atomic.Uint64 // spans overwritten before being read

	mu   sync.Mutex
	ring []Span
	next int  // ring write cursor
	full bool // ring has wrapped at least once
}

// DefaultSpanCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultSpanCapacity = 4096

// NewTracer returns a tracer retaining up to capacity finished spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{
		ring:  make([]Span, capacity),
		clock: time.Now,
	}
}

// SetClock replaces the tracer's time source (simulated time in tests).
// Not safe to call concurrently with Start.
func (t *Tracer) SetClock(clock func() time.Time) {
	if t == nil || clock == nil {
		return
	}
	t.clock = clock
}

// ActiveSpan is a started, not yet finished span. A nil *ActiveSpan (from
// a nil tracer) is valid: End, Fail and Context all no-op.
type ActiveSpan struct {
	tracer *Tracer
	span   Span
}

// Start begins a span. If ctx already carries a span context the new span
// joins that trace as a child; otherwise it starts a fresh trace. The
// returned context carries the new span, so nested work parents under it.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	parent, _ := FromContext(ctx)
	return t.start(ctx, name, parent)
}

// StartRemote begins a span parented under a context received from a
// remote peer (the trace extension of an inbound message). A zero parent
// starts a fresh trace, so untraced peers still produce local spans.
func (t *Tracer) StartRemote(ctx context.Context, name string, parent SpanContext) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	return t.start(ctx, name, parent)
}

func (t *Tracer) start(ctx context.Context, name string, parent SpanContext) (context.Context, *ActiveSpan) {
	t.started.Add(1)
	id := SpanID(t.nextID.Add(1))
	trace := parent.Trace
	if trace == 0 {
		// A fresh trace: derive the trace id from the span id so ids stay
		// unique per tracer without extra state.
		trace = TraceID(uint64(id)<<16 | 0xa11)
	}
	a := &ActiveSpan{
		tracer: t,
		span: Span{
			Trace:  trace,
			ID:     id,
			Parent: parent.Span,
			Name:   name,
			Start:  t.clock(),
		},
	}
	return ContextWith(ctx, SpanContext{Trace: trace, Span: id}), a
}

// Context returns the span's propagation context (zero for a nil span).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.span.Trace, Span: a.span.ID}
}

// Fail annotates the span with a failure before End.
func (a *ActiveSpan) Fail(err error) {
	if a == nil || err == nil {
		return
	}
	a.span.Err = err.Error()
}

// FailTermination annotates the span with a non-OK application
// termination (which is not an infrastructure error, but worth seeing).
func (a *ActiveSpan) FailTermination(term string) {
	if a == nil {
		return
	}
	a.span.Err = "termination: " + term
}

// End finishes the span and commits it to the tracer's ring. It reports
// the span's duration so callers can feed the same measurement into a
// histogram or QoS monitor without a second clock read.
func (a *ActiveSpan) End() time.Duration {
	if a == nil {
		return 0
	}
	t := a.tracer
	a.span.Duration = t.clock().Sub(a.span.Start)
	t.finished.Add(1)
	t.mu.Lock()
	if t.ring[t.next].Trace != 0 && t.full {
		t.dropped.Add(1)
	}
	t.ring[t.next] = a.span
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
	return a.span.Duration
}

// TracerStats summarises tracer activity.
type TracerStats struct {
	Started  uint64
	Finished uint64
	Dropped  uint64
}

// Stats returns a snapshot of the tracer's counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	return TracerStats{
		Started:  t.started.Load(),
		Finished: t.finished.Load(),
		Dropped:  t.dropped.Load(),
	}
}

// Spans returns the retained finished spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	start := 0
	n := t.next
	if t.full {
		start = t.next
		n = len(t.ring)
	}
	for i := 0; i < n; i++ {
		s := t.ring[(start+i)%len(t.ring)]
		if s.Trace != 0 {
			out = append(out, s)
		}
	}
	return out
}

// Trace returns the retained spans of one trace, in start order.
func (t *Tracer) Trace(id TraceID) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceIDs returns the distinct trace ids with retained spans, most
// recently finished last.
func (t *Tracer) TraceIDs() []TraceID {
	seen := make(map[TraceID]bool)
	var out []TraceID
	for _, s := range t.Spans() {
		if !seen[s.Trace] {
			seen[s.Trace] = true
			out = append(out, s.Trace)
		}
	}
	return out
}

// RenderTrace renders one trace as an indented tree with durations —
// the text form odpstat prints. Orphaned spans (parent not retained)
// appear at the root level.
func RenderTrace(spans []Span) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	children := make(map[SpanID][]Span)
	byID := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	var roots []Span
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x (%d spans)\n", uint64(spans[0].Trace), len(spans))
	var walk func(s Span, depth int)
	walk = func(s Span, depth int) {
		fmt.Fprintf(&b, "%s%-*s %10s", strings.Repeat("  ", depth+1), 40-2*depth, s.Name, s.Duration.Round(time.Microsecond))
		if s.Err != "" {
			fmt.Fprintf(&b, "  !%s", s.Err)
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
