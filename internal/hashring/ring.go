// Package hashring is the consistent-hash ring shared by the sharded
// infrastructure functions. It is a leaf package (no repo imports), so
// both the trader and the relocator can partition over it without
// dependency cycles.
package hashring

// The ring partitions the infrastructure functions
// (trader offer space by service type, relocator entries by interface id).
// Members are mapped onto the ring at `replicas` virtual points each, so
// adding or removing one member moves only ~1/n of the key space — the
// property that makes live shard rebalancing affordable.
//
// A Ring is an immutable-ish value guarded by its owner: the sharded
// trader and relocator mutate it only under their own locks, and every
// mutation bumps the epoch so readers can tell two ring generations
// apart (the same fencing idea the session layer uses for relocation
// epochs).

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultRingReplicas is the virtual-node count per member when the
// caller does not choose one. 64 keeps the load imbalance across shards
// in the few-percent range without making ring rebuilds noticeable.
const defaultRingReplicas = 64

// Ring is a consistent-hash ring over named members. It is NOT safe for
// concurrent mutation; owners guard it with their own lock (reads of a
// snapshot obtained under that lock are safe).
type Ring struct {
	replicas int
	members  map[string]bool
	points   []ringPoint // sorted by hash
	epoch    uint64
}

type ringPoint struct {
	hash   uint64
	member string
}

// New returns an empty ring with the given virtual-node count per
// member (<=0 selects the default).
func New(replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultRingReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]bool)}
}

// Clone returns an independent copy of the ring (same epoch). Owners use
// it to prepare the post-rebalance ring while the old one keeps serving.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		replicas: r.replicas,
		members:  make(map[string]bool, len(r.members)),
		points:   make([]ringPoint, len(r.points)),
		epoch:    r.epoch,
	}
	for m := range r.members {
		c.members[m] = true
	}
	copy(c.points, r.points)
	return c
}

// ringHash is FNV-1a with a 64-bit avalanche finalizer. Raw FNV-1a is
// unusable for ring placement: inputs differing only in a trailing
// character hash to values exactly one FNV-prime apart, so a member's
// virtual points ("m#0".."m#63") — and any family of similar keys —
// collapse into one tight cluster on the ring. The finalizer (the
// 64-bit mix from MurmurHash3) spreads them across the whole space.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add places a member on the ring and bumps the epoch. Adding an existing
// member is an error (the caller's membership bookkeeping is confused).
func (r *Ring) Add(member string) error {
	if r.members[member] {
		return fmt.Errorf("hashring: ring member %q already present", member)
	}
	r.members[member] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash:   ringHash(fmt.Sprintf("%s#%d", member, i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.epoch++
	return nil
}

// Remove takes a member off the ring and bumps the epoch.
func (r *Ring) Remove(member string) error {
	if !r.members[member] {
		return fmt.Errorf("hashring: ring member %q not present", member)
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(r.points); i++ {
		r.points[i] = ringPoint{} // clear vacated slots
	}
	r.points = kept
	r.epoch++
	return nil
}

// Owner returns the member owning key: the first virtual point at or
// after the key's hash, wrapping. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the sorted member names.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Epoch returns the ring generation: it advances on every Add/Remove, so
// two ring views can be ordered and cached routing decisions fenced.
func (r *Ring) Epoch() uint64 { return r.epoch }
