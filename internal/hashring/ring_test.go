package hashring

import (
	"fmt"
	"testing"
)

func TestOwnerStableAndTotal(t *testing.T) {
	r := New(0)
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("empty ring Owner = %q", got)
	}
	for _, m := range []string{"a", "b", "c"} {
		if err := r.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	if r.Size() != 3 {
		t.Fatalf("Size = %d", r.Size())
	}
	// Every key maps to exactly one member, deterministically.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := r.Owner(key), r.Owner(key)
		if o1 != o2 || !r.members[o1] {
			t.Fatalf("Owner(%q) unstable or unknown: %q vs %q", key, o1, o2)
		}
	}
}

func TestAddMovesOnlyAFraction(t *testing.T) {
	r := New(0)
	for _, m := range []string{"s0", "s1", "s2", "s3"} {
		if err := r.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	const keys = 2000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Owner(k)
	}
	next := r.Clone()
	if err := next.Add("s4"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k, old := range before {
		now := next.Owner(k)
		if now != old {
			if now != "s4" {
				t.Fatalf("key %q moved %s -> %s, not to the new member", k, old, now)
			}
			moved++
		}
	}
	// Consistent hashing: ~1/5 of the space moves, and only to the newcomer.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("moved %d of %d keys on add", moved, keys)
	}
	// Clone left the original untouched.
	for k, old := range before {
		if r.Owner(k) != old {
			t.Fatalf("original ring disturbed for %q", k)
		}
	}
}

func TestRemoveRedistributesToSurvivors(t *testing.T) {
	r := New(0)
	for _, m := range []string{"s0", "s1", "s2"} {
		if err := r.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	before := make(map[string]string)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Owner(k)
	}
	if err := r.Remove("s1"); err != nil {
		t.Fatal(err)
	}
	for k, old := range before {
		now := r.Owner(k)
		if now == "s1" {
			t.Fatalf("removed member still owns %q", k)
		}
		if old != "s1" && now != old {
			t.Fatalf("key %q not owned by s1 moved %s -> %s on remove", k, old, now)
		}
	}
}

func TestEpochAndErrors(t *testing.T) {
	r := New(8)
	e0 := r.Epoch()
	if err := r.Add("a"); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != e0+1 {
		t.Fatalf("epoch after add = %d", r.Epoch())
	}
	if err := r.Add("a"); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := r.Remove("ghost"); err == nil {
		t.Fatal("removing absent member accepted")
	}
	c := r.Clone()
	if err := c.Add("b"); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != r.Epoch()+1 {
		t.Fatalf("clone epoch = %d, base = %d", c.Epoch(), r.Epoch())
	}
	if got := r.Members(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("base members disturbed: %v", got)
	}
}
