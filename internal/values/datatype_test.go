package values

import (
	"errors"
	"testing"
)

func dollars() *DataType { return TInt() }

func accountRecord() *DataType {
	return TRecord("Account",
		FT("balance", dollars()),
		FT("withdrawn_today", dollars()),
	)
}

func TestDataTypeEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b *DataType
		want bool
	}{
		{"same-scalar", TInt(), TInt(), true},
		{"diff-scalar", TInt(), TUint(), false},
		{"enum-same", TEnum("E", "a", "b"), TEnum("F", "a", "b"), true}, // names ignored
		{"enum-order", TEnum("E", "a", "b"), TEnum("E", "b", "a"), false},
		{"enum-arity", TEnum("E", "a"), TEnum("E", "a", "b"), false},
		{"record-same", accountRecord(), accountRecord(), true},
		{"record-field-name", TRecord("R", FT("x", TInt())), TRecord("R", FT("y", TInt())), false},
		{"record-field-type", TRecord("R", FT("x", TInt())), TRecord("R", FT("x", TFloat())), false},
		{"record-arity", TRecord("R", FT("x", TInt())), TRecord("R"), false},
		{"seq-same", TSeq(TInt()), TSeq(TInt()), true},
		{"seq-diff", TSeq(TInt()), TSeq(TString()), false},
		{"nil-right", TInt(), nil, false},
		{"nil-both", nil, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAssignableTo(t *testing.T) {
	wide := TRecord("Wide", FT("a", TInt()), FT("b", TString()), FT("c", TBool()))
	narrow := TRecord("Narrow", FT("a", TInt()), FT("b", TString()))
	tests := []struct {
		name string
		a, b *DataType
		want bool
	}{
		{"scalar-exact", TInt(), TInt(), true},
		{"scalar-no-widening", TInt(), TFloat(), false},
		{"to-any", TInt(), TAny(), true},
		{"record-width", wide, narrow, true},
		{"record-width-reverse", narrow, wide, false},
		{"enum-subset", TEnum("E", "a"), TEnum("F", "a", "b"), true},
		{"enum-superset", TEnum("E", "a", "b"), TEnum("F", "a"), false},
		{"seq-covariant", TSeq(wide), TSeq(narrow), true},
		{"seq-not-contravariant", TSeq(narrow), TSeq(wide), false},
		{"record-depth", TRecord("R", FT("x", TEnum("E", "a"))), TRecord("R", FT("x", TEnum("E", "a", "b"))), true},
		{"nil", nil, TInt(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.AssignableTo(tt.b); got != tt.want {
				t.Errorf("AssignableTo = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAssignableToReflexive(t *testing.T) {
	for _, dt := range []*DataType{
		TBool(), TInt(), TUint(), TFloat(), TString(), TBytes(),
		TEnum("E", "x", "y"), accountRecord(), TSeq(accountRecord()), TAny(),
	} {
		if !dt.AssignableTo(dt) {
			t.Errorf("%s not assignable to itself", dt)
		}
	}
}

func TestCheck(t *testing.T) {
	acct := accountRecord()
	good := Record(F("balance", Int(100)), F("withdrawn_today", Int(0)))
	if err := acct.Check(good); err != nil {
		t.Errorf("Check(good) = %v", err)
	}
	tests := []struct {
		name string
		t    *DataType
		v    Value
	}{
		{"wrong-kind", TInt(), Str("x")},
		{"enum-bad-symbol", TEnum("E", "a", "b"), Enum("z")},
		{"record-arity", acct, Record(F("balance", Int(1)))},
		{"record-field-name", acct, Record(F("balance", Int(1)), F("oops", Int(0)))},
		{"record-field-type", acct, Record(F("balance", Int(1)), F("withdrawn_today", Str("x")))},
		{"seq-elem", TSeq(TInt()), Seq(Int(1), Str("x"))},
		{"any-expected", TAny(), Int(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.t.Check(tt.v)
			if err == nil {
				t.Fatal("Check should fail")
			}
			if !errors.Is(err, ErrTypeMismatch) {
				t.Errorf("error %v should wrap ErrTypeMismatch", err)
			}
		})
	}
	if err := TAny().Check(Any(TInt(), Int(1))); err != nil {
		t.Errorf("Check(any) = %v", err)
	}
	var nilT *DataType
	if err := nilT.Check(Int(1)); err == nil {
		t.Error("nil type Check should fail")
	}
}

func TestCheckEnumOK(t *testing.T) {
	e := TEnum("Result", "OK", "Error")
	if err := e.Check(Enum("Error")); err != nil {
		t.Errorf("Check = %v", err)
	}
}

func TestZeroValue(t *testing.T) {
	tests := []struct {
		t    *DataType
		want Value
	}{
		{TBool(), Bool(false)},
		{TInt(), Int(0)},
		{TUint(), Uint(0)},
		{TFloat(), Float(0)},
		{TString(), Str("")},
		{TEnum("E", "first", "second"), Enum("first")},
		{TSeq(TInt()), Seq()},
		{TNull(), Null()},
	}
	for _, tt := range tests {
		got := tt.t.ZeroValue()
		if !got.Equal(tt.want) {
			t.Errorf("ZeroValue(%s) = %v, want %v", tt.t, got, tt.want)
		}
		if err := tt.t.Check(got); err != nil {
			t.Errorf("zero value of %s fails own check: %v", tt.t, err)
		}
	}
	// Record zero value conforms to its own type.
	acct := accountRecord()
	if err := acct.Check(acct.ZeroValue()); err != nil {
		t.Errorf("record zero value: %v", err)
	}
	// Bytes and any zero values have the right kinds.
	if TBytes().ZeroValue().Kind() != KindBytes {
		t.Error("bytes zero kind")
	}
	if TAny().ZeroValue().Kind() != KindAny {
		t.Error("any zero kind")
	}
	if TEnum("Empty").ZeroValue().Kind() != KindEnum {
		t.Error("empty enum zero kind")
	}
}

func TestDataTypeString(t *testing.T) {
	tests := []struct {
		t    *DataType
		want string
	}{
		{TInt(), "int"},
		{TEnum("E", "a", "b"), "enum E{a,b}"},
		{TSeq(TString()), "seq<string>"},
		{TRecord("R", FT("x", TInt())), "record R{x: int}"},
		{TRecord("", FT("x", TInt()), FT("y", TBool())), "record{x: int, y: bool}"},
		{nil, "<nil>"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
