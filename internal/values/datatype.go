package values

import (
	"errors"
	"fmt"
	"strings"
)

// ErrTypeMismatch is wrapped by all Check failures.
var ErrTypeMismatch = errors.New("values: type mismatch")

// FieldType is a named member of a record data type.
type FieldType struct {
	Name string
	Type *DataType
}

// DataType describes the type of a Value. Data types are structural: two
// data types with the same shape are interchangeable regardless of Name
// (Name is carried for diagnostics and for the type repository's registry).
//
// DataType values are immutable after construction; construct them with
// the TBool, TInt, ... constructors.
type DataType struct {
	Kind    Kind
	Name    string      // optional: declared name for records/enums
	Fields  []FieldType // record members, order-significant
	Elem    *DataType   // sequence element type
	Symbols []string    // enum symbols, order-significant
}

// Scalar data-type singletons.
var (
	tNull   = &DataType{Kind: KindNull}
	tBool   = &DataType{Kind: KindBool}
	tInt    = &DataType{Kind: KindInt}
	tUint   = &DataType{Kind: KindUint}
	tFloat  = &DataType{Kind: KindFloat}
	tString = &DataType{Kind: KindString}
	tBytes  = &DataType{Kind: KindBytes}
	tAny    = &DataType{Kind: KindAny}
)

// TNull returns the null data type.
func TNull() *DataType { return tNull }

// TBool returns the boolean data type.
func TBool() *DataType { return tBool }

// TInt returns the 64-bit signed integer data type.
func TInt() *DataType { return tInt }

// TUint returns the 64-bit unsigned integer data type.
func TUint() *DataType { return tUint }

// TFloat returns the IEEE-754 double data type.
func TFloat() *DataType { return tFloat }

// TString returns the string data type.
func TString() *DataType { return tString }

// TBytes returns the opaque octet-sequence data type.
func TBytes() *DataType { return tBytes }

// TAny returns the dynamically-typed data type.
func TAny() *DataType { return tAny }

// TEnum constructs an enum data type over the given symbols.
func TEnum(name string, symbols ...string) *DataType {
	cp := make([]string, len(symbols))
	copy(cp, symbols)
	return &DataType{Kind: KindEnum, Name: name, Symbols: cp}
}

// TRecord constructs a record data type with the given named fields.
func TRecord(name string, fields ...FieldType) *DataType {
	cp := make([]FieldType, len(fields))
	copy(cp, fields)
	return &DataType{Kind: KindRecord, Name: name, Fields: cp}
}

// FT is shorthand for constructing a record FieldType.
func FT(name string, t *DataType) FieldType { return FieldType{Name: name, Type: t} }

// TSeq constructs a sequence data type with the given element type.
func TSeq(elem *DataType) *DataType { return &DataType{Kind: KindSeq, Elem: elem} }

// Equal reports structural equality of two data types, ignoring Name.
func (t *DataType) Equal(u *DataType) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil {
		return false
	}
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KindEnum:
		if len(t.Symbols) != len(u.Symbols) {
			return false
		}
		for i := range t.Symbols {
			if t.Symbols[i] != u.Symbols[i] {
				return false
			}
		}
		return true
	case KindRecord:
		if len(t.Fields) != len(u.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != u.Fields[i].Name || !t.Fields[i].Type.Equal(u.Fields[i].Type) {
				return false
			}
		}
		return true
	case KindSeq:
		return t.Elem.Equal(u.Elem)
	}
	return true
}

// AssignableTo reports whether a value of type t may be used where a value
// of type u is expected. It is the data-level conformance relation that the
// interface subtype checker (package types) builds on:
//
//   - scalars must match exactly,
//   - an enum is assignable to an enum whose symbol set contains it,
//   - a record is assignable to a record with a (possibly shorter) prefix-free
//     subset of its fields, each field-wise assignable (width and depth
//     subtyping),
//   - a sequence is assignable when its element type is (covariance),
//   - anything is assignable to Any.
func (t *DataType) AssignableTo(u *DataType) bool {
	if t == nil || u == nil {
		return false
	}
	if u.Kind == KindAny {
		return true
	}
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KindEnum:
		// A value of type t is one of t's symbols, so every symbol of t
		// must be a symbol of u.
		uset := make(map[string]bool, len(u.Symbols))
		for _, s := range u.Symbols {
			uset[s] = true
		}
		for _, s := range t.Symbols {
			if !uset[s] {
				return false
			}
		}
		return true
	case KindRecord:
		// u's fields must each exist in t (by name) with assignable types.
		byName := make(map[string]*DataType, len(t.Fields))
		for _, f := range t.Fields {
			byName[f.Name] = f.Type
		}
		for _, uf := range u.Fields {
			tf, ok := byName[uf.Name]
			if !ok || !tf.AssignableTo(uf.Type) {
				return false
			}
		}
		return true
	case KindSeq:
		return t.Elem.AssignableTo(u.Elem)
	}
	return true
}

// Check verifies that v conforms to t, returning a descriptive error
// wrapping ErrTypeMismatch otherwise.
func (t *DataType) Check(v Value) error {
	if t == nil {
		return fmt.Errorf("%w: nil data type", ErrTypeMismatch)
	}
	if t.Kind == KindAny {
		if v.Kind() == KindAny {
			return nil
		}
		return fmt.Errorf("%w: expected any, got %v", ErrTypeMismatch, v.Kind())
	}
	if v.Kind() != t.Kind {
		return fmt.Errorf("%w: expected %v, got %v", ErrTypeMismatch, t.Kind, v.Kind())
	}
	switch t.Kind {
	case KindEnum:
		sym, _ := v.AsEnum()
		for _, s := range t.Symbols {
			if s == sym {
				return nil
			}
		}
		return fmt.Errorf("%w: symbol %q not in enum %s", ErrTypeMismatch, sym, t.describe())
	case KindRecord:
		if v.NumFields() != len(t.Fields) {
			return fmt.Errorf("%w: record %s expects %d fields, got %d",
				ErrTypeMismatch, t.describe(), len(t.Fields), v.NumFields())
		}
		for i, ft := range t.Fields {
			fv := v.FieldAt(i)
			if fv.Name != ft.Name {
				return fmt.Errorf("%w: record %s field %d: expected %q, got %q",
					ErrTypeMismatch, t.describe(), i, ft.Name, fv.Name)
			}
			if err := ft.Type.Check(fv.Value); err != nil {
				return fmt.Errorf("field %q: %w", ft.Name, err)
			}
		}
	case KindSeq:
		for i := 0; i < v.Len(); i++ {
			if err := t.Elem.Check(v.ElemAt(i)); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
	}
	return nil
}

func (t *DataType) describe() string {
	if t.Name != "" {
		return t.Name
	}
	return t.Kind.String()
}

// String renders the data type in a compact notation.
func (t *DataType) String() string {
	if t == nil {
		return "<nil>"
	}
	var sb strings.Builder
	t.format(&sb)
	return sb.String()
}

func (t *DataType) format(sb *strings.Builder) {
	switch t.Kind {
	case KindEnum:
		sb.WriteString("enum")
		if t.Name != "" {
			sb.WriteByte(' ')
			sb.WriteString(t.Name)
		}
		sb.WriteByte('{')
		sb.WriteString(strings.Join(t.Symbols, ","))
		sb.WriteByte('}')
	case KindRecord:
		sb.WriteString("record")
		if t.Name != "" {
			sb.WriteByte(' ')
			sb.WriteString(t.Name)
		}
		sb.WriteByte('{')
		for i, f := range t.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Name)
			sb.WriteString(": ")
			f.Type.format(sb)
		}
		sb.WriteByte('}')
	case KindSeq:
		sb.WriteString("seq<")
		t.Elem.format(sb)
		sb.WriteByte('>')
	default:
		sb.WriteString(t.Kind.String())
	}
}

// TypeOf derives the structural data type of a value — used when a
// dynamically-built value (e.g. a trader property record) must be wrapped
// as an Any for transmission. Empty sequences type as seq<null>.
func TypeOf(v Value) *DataType {
	switch v.Kind() {
	case KindBool:
		return TBool()
	case KindInt:
		return TInt()
	case KindUint:
		return TUint()
	case KindFloat:
		return TFloat()
	case KindString:
		return TString()
	case KindBytes:
		return TBytes()
	case KindEnum:
		sym, _ := v.AsEnum()
		return TEnum("", sym)
	case KindRecord:
		fields := make([]FieldType, v.NumFields())
		for i := 0; i < v.NumFields(); i++ {
			f := v.FieldAt(i)
			fields[i] = FT(f.Name, TypeOf(f.Value))
		}
		return &DataType{Kind: KindRecord, Fields: fields}
	case KindSeq:
		if v.Len() == 0 {
			return TSeq(TNull())
		}
		return TSeq(TypeOf(v.ElemAt(0)))
	case KindAny:
		return TAny()
	}
	return TNull()
}

// ZeroValue returns the canonical zero value of the data type: false, 0,
// "", empty bytes, the first enum symbol, a record of zero fields, or an
// empty sequence.
func (t *DataType) ZeroValue() Value {
	switch t.Kind {
	case KindBool:
		return Bool(false)
	case KindInt:
		return Int(0)
	case KindUint:
		return Uint(0)
	case KindFloat:
		return Float(0)
	case KindString:
		return Str("")
	case KindBytes:
		return BytesVal(nil)
	case KindEnum:
		if len(t.Symbols) > 0 {
			return Enum(t.Symbols[0])
		}
		return Enum("")
	case KindRecord:
		fields := make([]Field, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = F(f.Name, f.Type.ZeroValue())
		}
		return Record(fields...)
	case KindSeq:
		return Seq()
	case KindAny:
		return Any(TNull(), Null())
	}
	return Null()
}
