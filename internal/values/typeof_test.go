package values

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TypeOf soundness: every value conforms to its own derived type, and the
// derived type is assignable to itself.
func TestTypeOfSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		if !homogeneousSeqs(v) {
			// Heterogeneous sequences have no finite derived type in this
			// algebra (TypeOf uses the first element); they are out of the
			// property's scope.
			return true
		}
		dt := TypeOf(v)
		if dt == nil {
			return false
		}
		if err := dt.Check(v); err != nil {
			t.Logf("TypeOf(%v) = %s: %v", v, dt, err)
			return false
		}
		return dt.AssignableTo(dt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTypeOfScalars(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Bool(true), KindBool},
		{Int(1), KindInt},
		{Uint(1), KindUint},
		{Float(1), KindFloat},
		{Str("x"), KindString},
		{BytesVal(nil), KindBytes},
		{Enum("a"), KindEnum},
		{Record(F("a", Int(1))), KindRecord},
		{Seq(Int(1)), KindSeq},
		{Seq(), KindSeq},
		{Any(TInt(), Int(1)), KindAny},
		{Null(), KindNull},
	}
	for _, c := range cases {
		dt := TypeOf(c.v)
		if dt.Kind != c.kind {
			t.Errorf("TypeOf(%v).Kind = %v, want %v", c.v, dt.Kind, c.kind)
		}
		if c.kind != KindSeq || c.v.Len() > 0 {
			if err := dt.Check(c.v); err != nil && c.kind != KindNull {
				t.Errorf("TypeOf(%v) fails own check: %v", c.v, err)
			}
		}
	}
	// Enum type derives a single-symbol set containing the value.
	dt := TypeOf(Enum("NotToday"))
	if len(dt.Symbols) != 1 || dt.Symbols[0] != "NotToday" {
		t.Errorf("enum TypeOf = %v", dt.Symbols)
	}
	// Empty seq derives seq<null>.
	if dt := TypeOf(Seq()); dt.Elem.Kind != KindNull {
		t.Errorf("empty seq elem = %v", dt.Elem.Kind)
	}
	// NaN floats still derive float.
	if dt := TypeOf(Float(math.NaN())); dt.Kind != KindFloat {
		t.Errorf("NaN type = %v", dt.Kind)
	}
}

// homogeneousSeqs reports whether every sequence in v (recursively) has
// elements of one structural type.
func homogeneousSeqs(v Value) bool {
	switch v.Kind() {
	case KindSeq:
		if v.Len() == 0 {
			return true
		}
		first := TypeOf(v.ElemAt(0))
		for i := 0; i < v.Len(); i++ {
			e := v.ElemAt(i)
			if !homogeneousSeqs(e) {
				return false
			}
			if !TypeOf(e).Equal(first) {
				return false
			}
		}
		return true
	case KindRecord:
		for i := 0; i < v.NumFields(); i++ {
			if !homogeneousSeqs(v.FieldAt(i).Value) {
				return false
			}
		}
		return true
	}
	return true
}
