// Package values implements the self-describing typed value model used in
// every ODP interaction.
//
// RM-ODP computational interactions (operation invocations, stream flows,
// signals) carry typed data between objects that may live on heterogeneous
// platforms. The values package provides the platform-neutral value model:
// a small algebra of scalar kinds plus records, sequences, enums, optionals
// and a dynamically-typed Any. Stubs in the engineering channel marshal
// these values into one of several concrete transfer representations (see
// package wire), which is how access transparency is achieved.
//
// The zero Value is the Null value.
package values

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the shape of a Value or DataType.
type Kind int

// The kinds of the ODP value algebra.
const (
	KindNull Kind = iota
	KindBool
	KindInt    // 64-bit signed
	KindUint   // 64-bit unsigned
	KindFloat  // IEEE-754 double
	KindString // UTF-8
	KindBytes  // opaque octets
	KindEnum   // named symbol from a declared set
	KindRecord // ordered named fields
	KindSeq    // homogeneous sequence
	KindAny    // dynamically typed: a value paired with its DataType
)

var kindNames = map[Kind]string{
	KindNull:   "null",
	KindBool:   "bool",
	KindInt:    "int",
	KindUint:   "uint",
	KindFloat:  "float",
	KindString: "string",
	KindBytes:  "bytes",
	KindEnum:   "enum",
	KindRecord: "record",
	KindSeq:    "seq",
	KindAny:    "any",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Valid reports whether k is one of the declared kinds.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// Field is a named member of a record value.
type Field struct {
	Name  string
	Value Value
}

// Value is an immutable tagged union over the ODP value algebra.
// Construct values with the Bool, Int, Uint, Float, Str, Bytes, Enum,
// Record, Seq and Any constructors; the zero Value is Null.
type Value struct {
	kind   Kind
	num    uint64 // bool / int / uint / float payload
	str    string // string payload or enum symbol
	bytes  []byte
	fields []Field // record members
	elems  []Value // sequence elements
	anyTyp *DataType
	anyVal *Value
}

// Null is the null value.
func Null() Value { return Value{} }

// Bool constructs a boolean value.
func Bool(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int constructs a 64-bit signed integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: uint64(v)} }

// Uint constructs a 64-bit unsigned integer value.
func Uint(v uint64) Value { return Value{kind: KindUint, num: v} }

// Float constructs an IEEE-754 double value.
func Float(v float64) Value { return Value{kind: KindFloat, num: math.Float64bits(v)} }

// Str constructs a string value.
func Str(v string) Value { return Value{kind: KindString, str: v} }

// BytesVal constructs an opaque octet-sequence value. The input is copied.
func BytesVal(v []byte) Value {
	cp := make([]byte, len(v))
	copy(cp, v)
	return Value{kind: KindBytes, bytes: cp}
}

// Enum constructs an enumeration value holding the given symbol.
func Enum(symbol string) Value { return Value{kind: KindEnum, str: symbol} }

// Record constructs a record value from the given fields. The slice is
// copied; field order is significant and preserved.
func Record(fields ...Field) Value {
	cp := make([]Field, len(fields))
	copy(cp, fields)
	return Value{kind: KindRecord, fields: cp}
}

// F is shorthand for constructing a record Field.
func F(name string, v Value) Field { return Field{Name: name, Value: v} }

// RecordOwned constructs a record value that takes ownership of fields:
// the slice is not copied, and the caller must neither read nor modify it
// afterwards. Decoders use this to build a record in a single allocation;
// everyone else should prefer Record, whose defensive copy preserves the
// value's immutability no matter what the caller does with the slice.
func RecordOwned(fields []Field) Value { return Value{kind: KindRecord, fields: fields} }

// SeqOwned constructs a sequence value that takes ownership of elems: the
// slice is not copied, and the caller must neither read nor modify it
// afterwards. See RecordOwned.
func SeqOwned(elems []Value) Value { return Value{kind: KindSeq, elems: elems} }

// Seq constructs a sequence value from the given elements. The slice is copied.
func Seq(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{kind: KindSeq, elems: cp}
}

// Any wraps a value together with its data type for dynamically-typed
// transmission (the ODP "any" used e.g. in trader property lists).
func Any(t *DataType, v Value) Value {
	cv := v
	return Value{kind: KindAny, anyTyp: t, anyVal: &cv}
}

// Kind returns the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; ok is false if the kind differs.
func (v Value) AsBool() (b, ok bool) {
	if v.kind != KindBool {
		return false, false
	}
	return v.num != 0, true
}

// AsInt returns the signed integer payload; ok is false if the kind differs.
func (v Value) AsInt() (int64, bool) {
	if v.kind != KindInt {
		return 0, false
	}
	return int64(v.num), true
}

// AsUint returns the unsigned integer payload; ok is false if the kind differs.
func (v Value) AsUint() (uint64, bool) {
	if v.kind != KindUint {
		return 0, false
	}
	return v.num, true
}

// AsFloat returns the float payload; ok is false if the kind differs.
func (v Value) AsFloat() (float64, bool) {
	if v.kind != KindFloat {
		return 0, false
	}
	return math.Float64frombits(v.num), true
}

// AsString returns the string payload; ok is false if the kind differs.
func (v Value) AsString() (string, bool) {
	if v.kind != KindString {
		return "", false
	}
	return v.str, true
}

// AsBytes returns a copy of the octet payload; ok is false if the kind differs.
func (v Value) AsBytes() ([]byte, bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	cp := make([]byte, len(v.bytes))
	copy(cp, v.bytes)
	return cp, true
}

// BytesView returns the octet payload without the defensive copy of
// AsBytes; the caller must not modify the returned slice. Encoders use it
// to marshal bytes values allocation-free. ok is false if the kind differs.
func (v Value) BytesView() ([]byte, bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	return v.bytes, true
}

// AsEnum returns the enum symbol; ok is false if the kind differs.
func (v Value) AsEnum() (string, bool) {
	if v.kind != KindEnum {
		return "", false
	}
	return v.str, true
}

// NumFields returns the number of record fields (0 for non-records).
func (v Value) NumFields() int { return len(v.fields) }

// FieldAt returns the i'th record field.
func (v Value) FieldAt(i int) Field { return v.fields[i] }

// FieldByName returns the named record field's value; ok is false if absent
// or if the value is not a record.
func (v Value) FieldByName(name string) (Value, bool) {
	if v.kind != KindRecord {
		return Value{}, false
	}
	for _, f := range v.fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return Value{}, false
}

// Len returns the number of sequence elements (0 for non-sequences).
func (v Value) Len() int { return len(v.elems) }

// ElemAt returns the i'th sequence element.
func (v Value) ElemAt(i int) Value { return v.elems[i] }

// Elems returns a copy of the sequence elements.
func (v Value) Elems() []Value {
	cp := make([]Value, len(v.elems))
	copy(cp, v.elems)
	return cp
}

// AsAny unwraps a dynamically-typed value; ok is false if the kind differs.
func (v Value) AsAny() (*DataType, Value, bool) {
	if v.kind != KindAny {
		return nil, Value{}, false
	}
	return v.anyTyp, *v.anyVal, true
}

// Equal reports deep structural equality. Float NaN compares unequal to
// everything including itself, matching IEEE semantics.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool, KindInt, KindUint:
		return v.num == w.num
	case KindFloat:
		a, _ := v.AsFloat()
		b, _ := w.AsFloat()
		return a == b
	case KindString, KindEnum:
		return v.str == w.str
	case KindBytes:
		if len(v.bytes) != len(w.bytes) {
			return false
		}
		for i := range v.bytes {
			if v.bytes[i] != w.bytes[i] {
				return false
			}
		}
		return true
	case KindRecord:
		if len(v.fields) != len(w.fields) {
			return false
		}
		for i := range v.fields {
			if v.fields[i].Name != w.fields[i].Name || !v.fields[i].Value.Equal(w.fields[i].Value) {
				return false
			}
		}
		return true
	case KindSeq:
		if len(v.elems) != len(w.elems) {
			return false
		}
		for i := range v.elems {
			if !v.elems[i].Equal(w.elems[i]) {
				return false
			}
		}
		return true
	case KindAny:
		return v.anyTyp.Equal(w.anyTyp) && v.anyVal.Equal(*w.anyVal)
	}
	return false
}

// String renders the value in a compact human-readable notation used in
// logs, audit trails and error messages.
func (v Value) String() string {
	var sb strings.Builder
	v.format(&sb)
	return sb.String()
}

func (v Value) format(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteString("null")
	case KindBool:
		if v.num != 0 {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case KindInt:
		sb.WriteString(strconv.FormatInt(int64(v.num), 10))
	case KindUint:
		sb.WriteString(strconv.FormatUint(v.num, 10))
		sb.WriteByte('u')
	case KindFloat:
		f, _ := v.AsFloat()
		sb.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	case KindString:
		sb.WriteString(strconv.Quote(v.str))
	case KindBytes:
		sb.WriteString(fmt.Sprintf("0x%x", v.bytes))
	case KindEnum:
		sb.WriteByte('#')
		sb.WriteString(v.str)
	case KindRecord:
		sb.WriteByte('{')
		for i, f := range v.fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Name)
			sb.WriteString(": ")
			f.Value.format(sb)
		}
		sb.WriteByte('}')
	case KindSeq:
		sb.WriteByte('[')
		for i, e := range v.elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			e.format(sb)
		}
		sb.WriteByte(']')
	case KindAny:
		sb.WriteString("any<")
		sb.WriteString(v.anyTyp.String())
		sb.WriteString(">(")
		v.anyVal.format(sb)
		sb.WriteByte(')')
	}
}

// Compare orders two values of the same scalar kind: -1, 0 or +1.
// It returns ok=false for kinds without a total order (records, sequences,
// bytes, any, null) or mismatched kinds; the trader constraint language
// relies on this to reject ill-typed comparisons.
func Compare(a, b Value) (c int, ok bool) {
	if a.kind != b.kind {
		// Permit int/uint/float cross-comparison via float widening.
		af, aok := a.numeric()
		bf, bok := b.numeric()
		if aok && bok {
			return cmpFloat(af, bf), true
		}
		return 0, false
	}
	switch a.kind {
	case KindBool:
		return cmpUint(a.num, b.num), true
	case KindInt:
		ai, bi := int64(a.num), int64(b.num)
		switch {
		case ai < bi:
			return -1, true
		case ai > bi:
			return 1, true
		}
		return 0, true
	case KindUint:
		return cmpUint(a.num, b.num), true
	case KindFloat:
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		if math.IsNaN(af) || math.IsNaN(bf) {
			return 0, false
		}
		return cmpFloat(af, bf), true
	case KindString, KindEnum:
		return strings.Compare(a.str, b.str), true
	}
	return 0, false
}

func (v Value) numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(int64(v.num)), true
	case KindUint:
		return float64(v.num), true
	case KindFloat:
		f, _ := v.AsFloat()
		return f, !math.IsNaN(f)
	}
	return 0, false
}

func cmpUint(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// SortFieldsCopy returns a copy of the record with fields sorted by name.
// Useful when a canonical field order is required (e.g. hashing).
func (v Value) SortFieldsCopy() Value {
	if v.kind != KindRecord {
		return v
	}
	cp := make([]Field, len(v.fields))
	copy(cp, v.fields)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Name < cp[j].Name })
	return Value{kind: KindRecord, fields: cp}
}
