package values

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindNull, "null"},
		{KindBool, "bool"},
		{KindInt, "int"},
		{KindUint, "uint"},
		{KindFloat, "float"},
		{KindString, "string"},
		{KindBytes, "bytes"},
		{KindEnum, "enum"},
		{KindRecord, "record"},
		{KindSeq, "seq"},
		{KindAny, "any"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
	if Kind(99).Valid() {
		t.Error("Kind(99).Valid() = true, want false")
	}
	if !KindRecord.Valid() {
		t.Error("KindRecord.Valid() = false, want true")
	}
}

func TestScalarAccessors(t *testing.T) {
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Errorf("Bool(true).AsBool() = %v, %v", b, ok)
	}
	if i, ok := Int(-42).AsInt(); !ok || i != -42 {
		t.Errorf("Int(-42).AsInt() = %v, %v", i, ok)
	}
	if u, ok := Uint(42).AsUint(); !ok || u != 42 {
		t.Errorf("Uint(42).AsUint() = %v, %v", u, ok)
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %v, %v", f, ok)
	}
	if s, ok := Str("x").AsString(); !ok || s != "x" {
		t.Errorf("Str(x).AsString() = %v, %v", s, ok)
	}
	if e, ok := Enum("OK").AsEnum(); !ok || e != "OK" {
		t.Errorf("Enum(OK).AsEnum() = %v, %v", e, ok)
	}
	if b, ok := BytesVal([]byte{1, 2}).AsBytes(); !ok || len(b) != 2 {
		t.Errorf("BytesVal.AsBytes() = %v, %v", b, ok)
	}
}

func TestAccessorKindMismatch(t *testing.T) {
	v := Str("hello")
	if _, ok := v.AsBool(); ok {
		t.Error("AsBool on string should fail")
	}
	if _, ok := v.AsInt(); ok {
		t.Error("AsInt on string should fail")
	}
	if _, ok := v.AsUint(); ok {
		t.Error("AsUint on string should fail")
	}
	if _, ok := v.AsFloat(); ok {
		t.Error("AsFloat on string should fail")
	}
	if _, ok := v.AsBytes(); ok {
		t.Error("AsBytes on string should fail")
	}
	if _, ok := v.AsEnum(); ok {
		t.Error("AsEnum on string should fail")
	}
	if _, ok := Int(1).AsString(); ok {
		t.Error("AsString on int should fail")
	}
	if _, _, ok := v.AsAny(); ok {
		t.Error("AsAny on string should fail")
	}
}

func TestNull(t *testing.T) {
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be null")
	}
	if !Null().Equal(zero) {
		t.Error("Null() should equal zero Value")
	}
	if zero.String() != "null" {
		t.Errorf("zero.String() = %q", zero.String())
	}
}

func TestBytesCopiedOnConstructionAndAccess(t *testing.T) {
	src := []byte{1, 2, 3}
	v := BytesVal(src)
	src[0] = 9
	got, _ := v.AsBytes()
	if got[0] != 1 {
		t.Error("BytesVal must copy its input")
	}
	got[1] = 9
	got2, _ := v.AsBytes()
	if got2[1] != 2 {
		t.Error("AsBytes must return a copy")
	}
}

func TestRecordFields(t *testing.T) {
	v := Record(F("a", Int(1)), F("b", Str("two")))
	if v.NumFields() != 2 {
		t.Fatalf("NumFields = %d", v.NumFields())
	}
	if f := v.FieldAt(0); f.Name != "a" {
		t.Errorf("FieldAt(0).Name = %q", f.Name)
	}
	if got, ok := v.FieldByName("b"); !ok || !got.Equal(Str("two")) {
		t.Errorf("FieldByName(b) = %v, %v", got, ok)
	}
	if _, ok := v.FieldByName("missing"); ok {
		t.Error("FieldByName(missing) should fail")
	}
	if _, ok := Int(1).FieldByName("a"); ok {
		t.Error("FieldByName on non-record should fail")
	}
}

func TestSeq(t *testing.T) {
	v := Seq(Int(1), Int(2), Int(3))
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	if !v.ElemAt(1).Equal(Int(2)) {
		t.Errorf("ElemAt(1) = %v", v.ElemAt(1))
	}
	es := v.Elems()
	es[0] = Int(99)
	if !v.ElemAt(0).Equal(Int(1)) {
		t.Error("Elems must return a copy")
	}
}

func TestAny(t *testing.T) {
	v := Any(TInt(), Int(7))
	ty, inner, ok := v.AsAny()
	if !ok || ty.Kind != KindInt || !inner.Equal(Int(7)) {
		t.Errorf("AsAny = %v, %v, %v", ty, inner, ok)
	}
}

func TestEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"null=null", Null(), Null(), true},
		{"bool", Bool(true), Bool(true), true},
		{"bool-diff", Bool(true), Bool(false), false},
		{"int", Int(5), Int(5), true},
		{"int-diff", Int(5), Int(6), false},
		{"kind-diff", Int(5), Uint(5), false},
		{"float", Float(1.5), Float(1.5), true},
		{"float-nan", Float(math.NaN()), Float(math.NaN()), false},
		{"string", Str("a"), Str("a"), true},
		{"enum-vs-string", Enum("a"), Str("a"), false},
		{"bytes", BytesVal([]byte{1}), BytesVal([]byte{1}), true},
		{"bytes-diff-len", BytesVal([]byte{1}), BytesVal([]byte{1, 2}), false},
		{"bytes-diff", BytesVal([]byte{1}), BytesVal([]byte{2}), false},
		{"record", Record(F("a", Int(1))), Record(F("a", Int(1))), true},
		{"record-name", Record(F("a", Int(1))), Record(F("b", Int(1))), false},
		{"record-value", Record(F("a", Int(1))), Record(F("a", Int(2))), false},
		{"record-arity", Record(F("a", Int(1))), Record(), false},
		{"seq", Seq(Int(1), Int(2)), Seq(Int(1), Int(2)), true},
		{"seq-order", Seq(Int(1), Int(2)), Seq(Int(2), Int(1)), false},
		{"seq-len", Seq(Int(1)), Seq(Int(1), Int(2)), false},
		{"any", Any(TInt(), Int(1)), Any(TInt(), Int(1)), true},
		{"any-type-diff", Any(TInt(), Int(1)), Any(TUint(), Int(1)), false},
		{"nested", Record(F("xs", Seq(Str("p")))), Record(F("xs", Seq(Str("p")))), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("%v.Equal(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("symmetry: %v.Equal(%v) = %v, want %v", tt.b, tt.a, got, tt.want)
			}
		})
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-3), "-3"},
		{Uint(3), "3u"},
		{Float(1.5), "1.5"},
		{Str("hi"), `"hi"`},
		{Enum("OK"), "#OK"},
		{BytesVal([]byte{0xab}), "0xab"},
		{Seq(Int(1), Int(2)), "[1, 2]"},
		{Record(F("a", Int(1)), F("b", Str("x"))), `{a: 1, b: "x"}`},
		{Any(TInt(), Int(4)), "any<int>(4)"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Value
		want   int
		wantOK bool
	}{
		{"int<", Int(1), Int(2), -1, true},
		{"int>", Int(2), Int(1), 1, true},
		{"int=", Int(2), Int(2), 0, true},
		{"int-negative", Int(-5), Int(3), -1, true},
		{"uint", Uint(9), Uint(10), -1, true},
		{"float", Float(1.5), Float(1.4), 1, true},
		{"float-nan", Float(math.NaN()), Float(1), 0, false},
		{"string", Str("a"), Str("b"), -1, true},
		{"enum", Enum("A"), Enum("A"), 0, true},
		{"bool", Bool(false), Bool(true), -1, true},
		{"cross-int-float", Int(2), Float(2.5), -1, true},
		{"cross-uint-int", Uint(3), Int(4), -1, true},
		{"record-unordered", Record(), Record(), 0, false},
		{"mismatch", Int(1), Str("1"), 0, false},
		{"null", Null(), Null(), 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := Compare(tt.a, tt.b)
			if ok != tt.wantOK || got != tt.want {
				t.Errorf("Compare(%v, %v) = %d, %v; want %d, %v", tt.a, tt.b, got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

func TestSortFieldsCopy(t *testing.T) {
	v := Record(F("b", Int(2)), F("a", Int(1)))
	s := v.SortFieldsCopy()
	if s.FieldAt(0).Name != "a" || s.FieldAt(1).Name != "b" {
		t.Errorf("sorted = %v", s)
	}
	if v.FieldAt(0).Name != "b" {
		t.Error("original must be unchanged")
	}
	if got := Int(1).SortFieldsCopy(); !got.Equal(Int(1)) {
		t.Error("SortFieldsCopy on non-record should be identity")
	}
}

// randomValue generates a random value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	max := 8
	if depth <= 0 {
		max = 6 // scalars only
	}
	switch r.Intn(max) {
	case 0:
		return Bool(r.Intn(2) == 0)
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Uint(r.Uint64())
	case 3:
		return Float(r.NormFloat64())
	case 4:
		return Str(randomString(r))
	case 5:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		return BytesVal(b)
	case 6:
		n := r.Intn(4)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = F(string(rune('a'+i)), randomValue(r, depth-1))
		}
		return Record(fields...)
	default:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return Seq(elems...)
	}
}

func randomString(r *rand.Rand) string {
	var sb strings.Builder
	for i, n := 0, r.Intn(12); i < n; i++ {
		sb.WriteRune(rune('a' + r.Intn(26)))
	}
	return sb.String()
}

func TestEqualReflexiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		// NaN-containing floats are legitimately irreflexive; skip them.
		if fl, ok := v.AsFloat(); ok && math.IsNaN(fl) {
			return true
		}
		return v.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ca, ok1 := Compare(Int(a), Int(b))
		cb, ok2 := Compare(Int(b), Int(a))
		return ok1 && ok2 && ca == -cb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
