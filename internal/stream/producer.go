package stream

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/channel"
	"repro/internal/mgmt"
	"repro/internal/values"
	"repro/internal/wire"
)

// ProducerConfig configures the producing end of one flow stream.
type ProducerConfig struct {
	// MaxBatch bounds elements per FlowBatch frame (default 64). The pump
	// batches adaptively: a slow wire grows batches toward this bound, an
	// idle one sends singletons immediately — the same shape as the
	// session sender's frame batching, one level up.
	MaxBatch int
	// Buffer is the hand-off queue between Send and the pump goroutine,
	// in elements (default 256). Together with the credit window it is
	// the producer's whole memory ceiling: Send blocks when it is full.
	Buffer int
	// FailFast makes Send return ErrNoCredit when the window is empty
	// instead of blocking (load shedding for sources that cannot pause).
	FailFast bool
	// Instruments enables mgmt metrics for this producer. Nil disables.
	Instruments *mgmt.StreamInstruments
}

// ProducerStats is a snapshot of one producer's counters.
type ProducerStats struct {
	Sent        uint64 // elements handed to the wire
	Batches     uint64 // FlowBatch frames sent
	Stalls      uint64 // Sends that blocked (or failed fast) at zero credit
	StallNs     uint64 // total time blocked awaiting credit
	MaxBuffered uint64 // high-water mark of elements buffered locally
	CreditElems uint64 // window currently open, elements
	CreditBytes uint64 // window currently open, bytes
}

// Producer is the producing end of one flow stream: the computational
// object writes elements with Send, and the engineering machinery below
// batches them onto the session data plane as credit admits them. Send is
// safe for concurrent use, but elements are sequenced by arrival at the
// gate — a single writing goroutine is the usual discipline and the one
// that makes per-flow FIFO meaningful end to end.
type Producer struct {
	fs   *channel.FlowStream
	gate *creditGate
	cfg  ProducerConfig

	mu     sync.RWMutex // held shared by Send, exclusively by Close
	pump   chan values.Value
	closed bool

	done    chan struct{}
	sent    atomic.Uint64
	batches atomic.Uint64
	maxBuf  atomic.Uint64

	errMu sync.Mutex
	err   error // sticky wire failure
}

// Open opens a credit-managed stream on the named flow of a bound stream
// interface. The producer holds zero credit until the consumer's initial
// grant arrives; the first Send blocks for it (the open round-trip is the
// stream's only latency cost — after it, credit pipelines with data).
func Open(ctx context.Context, b *channel.Binding, flow string, cfg ProducerConfig) (*Producer, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	gate := newCreditGate()
	ins := cfg.Instruments
	onGrant := func(cumElems, cumBytes uint64) {
		gate.grant(cumElems, cumBytes)
		if ins != nil {
			e, by := gate.remaining()
			ins.CreditElems.Set(int64(e))
			ins.CreditBytes.Set(int64(by))
		}
	}
	fs, err := b.OpenFlowStream(ctx, flow, onGrant, gate.fail)
	if err != nil {
		return nil, err
	}
	p := &Producer{
		fs:   fs,
		gate: gate,
		cfg:  cfg,
		pump: make(chan values.Value, cfg.Buffer),
		done: make(chan struct{}),
	}
	go p.run()
	return p, nil
}

// Send writes one element to the stream. It blocks while the credit
// window is exhausted (the consumer is behind) or the local buffer is
// full — that blocking IS the backpressure; memory never grows past
// Buffer + the batch in flight. With FailFast it returns ErrNoCredit
// instead of blocking on credit. A dead stream returns an error chain
// matching both channel.ErrStreamClosed and channel.ErrDisconnected.
func (p *Producer) Send(ctx context.Context, v values.Value) error {
	if err := p.stickyErr(); err != nil {
		return err
	}
	bytes := uint64(wire.ValueSizeHint(v))
	stallNs, err := p.gate.acquire(ctx, bytes, p.cfg.FailFast)
	if ins := p.cfg.Instruments; ins != nil && stallNs > 0 {
		ins.Stalls.Inc()
		ins.StallNs.Observe(stallNs)
	}
	if err != nil {
		return err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return fmt.Errorf("%w: flow %q: producer closed", channel.ErrStreamClosed, p.fs.Flow())
	}
	// Holding the read lock across the channel send keeps Close from
	// closing the pump under us; the pump goroutine drains independently,
	// so a full buffer clears without Close's write lock.
	select {
	case p.pump <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close ends the stream: buffered elements drain, the end-of-stream
// marker is sent, and the pump exits. Safe to call concurrently with
// Send; later Sends fail with ErrStreamClosed.
func (p *Producer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return p.stickyErr()
	}
	p.closed = true
	close(p.pump)
	p.mu.Unlock()
	<-p.done
	return p.stickyErr()
}

// Stats snapshots the producer's counters.
func (p *Producer) Stats() ProducerStats {
	stalls, stallNs := p.gate.stallStats()
	ce, cb := p.gate.remaining()
	return ProducerStats{
		Sent:        p.sent.Load(),
		Batches:     p.batches.Load(),
		Stalls:      stalls,
		StallNs:     stallNs,
		MaxBuffered: p.maxBuf.Load(),
		CreditElems: ce,
		CreditBytes: cb,
	}
}

// Err returns the sticky wire failure, if the stream has died.
func (p *Producer) Err() error { return p.stickyErr() }

func (p *Producer) stickyErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

func (p *Producer) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
	p.gate.fail(err)
}

// run is the pump: the single goroutine that owns the wire end, so
// elements from concurrent Senders serialise into per-flow FIFO order. It
// batches adaptively — everything already buffered (up to MaxBatch) goes
// out in one frame — and after a wire failure it keeps draining so no
// Sender stays blocked on a full buffer.
func (p *Producer) run() {
	defer close(p.done)
	ins := p.cfg.Instruments
	scratch := make([]values.Value, 0, p.cfg.MaxBatch)
	open := true
	for open {
		v, ok := <-p.pump
		if !ok {
			break
		}
		batch := append(scratch[:0], v)
	fill:
		for len(batch) < p.cfg.MaxBatch {
			select {
			case v2, ok2 := <-p.pump:
				if !ok2 {
					open = false
					break fill
				}
				batch = append(batch, v2)
			default:
				break fill
			}
		}
		if buffered := uint64(len(batch) + len(p.pump)); buffered > p.maxBuf.Load() {
			p.maxBuf.Store(buffered)
		}
		if p.stickyErr() != nil {
			continue // draining a dead stream: discard
		}
		if err := p.fs.SendBatch(batch); err != nil {
			p.fail(err)
			continue
		}
		p.sent.Add(uint64(len(batch)))
		p.batches.Add(1)
		if ins != nil {
			ins.ElementsSent.Add(uint64(len(batch)))
			ins.Batches.Inc()
		}
	}
	if err := p.fs.Close(); err != nil && p.stickyErr() == nil {
		// EOS did not go out: the consumer learns from conn teardown.
		p.fail(err)
	}
}
