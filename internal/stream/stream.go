// Package stream is the streaming data plane of the computational model
// (tutorial §5.1.1, Figure 3): producer/consumer endpoints for stream
// interfaces, built over the engineering channel's session layer with
// credit-based flow control.
//
// The shape follows the netchan idiom the roadmap names: the consumer end
// grants transmission credit — denominated in both elements and bytes —
// and the producer blocks (or fails fast) when its window is exhausted.
// Credit rides the wire as a bare-header CreditGrant frame carrying
// cumulative totals, so a lost or reordered grant is subsumed by the next
// one; elements ride FlowBatch frames through the session's batched send
// queue, so stream traffic coalesces into the same vectored writes as
// request/reply traffic. The result is per-stream backpressure: one slow
// consumer among hundreds of multiplexed bindings stalls only its own
// producer, whose memory stays bounded by the credit window rather than
// growing with the backlog.
package stream

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrNoCredit is returned by a fail-fast producer's Send when the credit
// window is exhausted: the consumer has not yet absorbed what it already
// granted. It is the streaming analogue of channel.ErrTooManyInFlight —
// not a connection failure, so callers shed load instead of retrying.
var ErrNoCredit = errors.New("stream: credit window exhausted")

// creditGate is the producer-side credit window: cumulative grants arrive
// from the consumer (via the session read loop) and Send debits against
// them, blocking when the window is empty. All totals are cumulative
// since stream open, matching the wire protocol, so the gate never needs
// to reason about lost or reordered grants.
type creditGate struct {
	mu     sync.Mutex
	notify chan struct{} // closed and replaced on every grant/failure

	grantedElems uint64
	grantedBytes uint64
	usedElems    uint64
	usedBytes    uint64

	err error // sticky: stream dead, no grant will ever arrive

	stalls  uint64
	stallNs uint64
}

func newCreditGate() *creditGate {
	return &creditGate{notify: make(chan struct{})}
}

// grant folds in a cumulative grant. Regressions are ignored (stale
// grant arriving after a newer one).
func (g *creditGate) grant(cumElems, cumBytes uint64) {
	g.mu.Lock()
	moved := false
	if cumElems > g.grantedElems {
		g.grantedElems = cumElems
		moved = true
	}
	if cumBytes > g.grantedBytes {
		g.grantedBytes = cumBytes
		moved = true
	}
	if moved {
		close(g.notify)
		g.notify = make(chan struct{})
	}
	g.mu.Unlock()
}

// fail makes the gate permanently broken and wakes every waiter.
func (g *creditGate) fail(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
		close(g.notify)
		g.notify = make(chan struct{})
	}
	g.mu.Unlock()
}

// acquire debits credit for one element of the given size, blocking until
// the window admits it (or failing fast when failFast is set). It returns
// the time spent stalled, for the producer's stats and mgmt histograms.
func (g *creditGate) acquire(ctx context.Context, bytes uint64, failFast bool) (stallNs uint64, err error) {
	var stallStart time.Time
	for {
		g.mu.Lock()
		if g.err != nil {
			err := g.err
			g.mu.Unlock()
			return stallNs, err
		}
		// Byte credit may overshoot by at most one element: an element is
		// admitted whenever any byte credit remains, then debited in full.
		// Without the overshoot an element larger than the remaining byte
		// window could never be admitted and the stream would deadlock;
		// with it the producer's overrun is bounded by one element, which
		// the consumer's accounting absorbs (its grants are cumulative).
		if g.usedElems < g.grantedElems && g.usedBytes < g.grantedBytes {
			g.usedElems++
			g.usedBytes += bytes
			if !stallStart.IsZero() {
				stallNs = uint64(time.Since(stallStart))
				g.stallNs += stallNs
			}
			g.mu.Unlock()
			return stallNs, nil
		}
		ch := g.notify
		if stallStart.IsZero() {
			g.stalls++
			stallStart = time.Now()
		}
		g.mu.Unlock()
		if failFast {
			return stallNs, ErrNoCredit
		}
		select {
		case <-ch:
		case <-ctx.Done():
			if !stallStart.IsZero() {
				stallNs = uint64(time.Since(stallStart))
				g.mu.Lock()
				g.stallNs += stallNs
				g.mu.Unlock()
			}
			return stallNs, ctx.Err()
		}
	}
}

// remaining reports the window still open, in elements and bytes.
func (g *creditGate) remaining() (elems, bytes uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.grantedElems > g.usedElems {
		elems = g.grantedElems - g.usedElems
	}
	if g.grantedBytes > g.usedBytes {
		bytes = g.grantedBytes - g.usedBytes
	}
	return elems, bytes
}

func (g *creditGate) stallStats() (stalls, stallNs uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stalls, g.stallNs
}
