package stream

import (
	"context"
	"io"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/mgmt"
	"repro/internal/values"
	"repro/internal/wire"
)

// ConsumerConfig configures the consuming end of a stream interface.
type ConsumerConfig struct {
	// Window is the per-stream credit window in elements (default 256):
	// how far a producer may run ahead of consumption. It is also the
	// consumer's per-stream buffer ceiling — the two are the same number,
	// which is the whole point of credit flow control.
	Window int
	// WindowBytes is the byte-denominated window (default 1 MiB),
	// measured with the same wire.ValueSizeHint on both ends.
	WindowBytes int
	// Instruments enables mgmt metrics for this consumer. Nil disables.
	Instruments *mgmt.StreamInstruments
}

// Consumer is the consuming end of a stream interface: register it as a
// servant (it implements channel.Handler and channel.StreamReceiver) and
// Accept the inbound streams producers open. Each stream becomes an
// Inbound whose buffer is bounded by the credit window — a consumer that
// stops reading stalls exactly one producer and nothing else.
type Consumer struct {
	cfg ConsumerConfig

	mu      sync.Mutex
	streams map[streamKey]*Inbound
	pending []*Inbound    // opened, not yet Accepted
	notify  chan struct{} // signalled when pending grows
	closed  bool
}

type streamKey struct{ binding, stream uint64 }

// NewConsumer creates a consumer end with the given per-stream window.
func NewConsumer(cfg ConsumerConfig) *Consumer {
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.WindowBytes <= 0 {
		cfg.WindowBytes = 1 << 20
	}
	return &Consumer{
		cfg:     cfg,
		streams: make(map[streamKey]*Inbound),
		notify:  make(chan struct{}, 1),
	}
}

var _ channel.Handler = (*Consumer)(nil)
var _ channel.StreamReceiver = (*Consumer)(nil)

// Invoke implements channel.Handler: stream interfaces declare no
// operations, so every call is refused.
func (c *Consumer) Invoke(context.Context, string, []values.Value) (string, []values.Value, error) {
	return "", nil, &channel.StageError{Code: channel.CodeNoSuchOperation, Detail: "stream interface has no operations"}
}

// Accept returns the next stream a producer has opened, blocking until
// one arrives. The stream is already flowing when Accept returns — the
// initial credit grant went out at open, so elements pipeline into the
// Inbound's window-bounded buffer while the application gets around to
// reading them.
func (c *Consumer) Accept(ctx context.Context) (*Inbound, error) {
	for {
		c.mu.Lock()
		if len(c.pending) > 0 {
			in := c.pending[0]
			c.pending = c.pending[1:]
			c.mu.Unlock()
			return in, nil
		}
		c.mu.Unlock()
		select {
		case <-c.notify:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// StreamBatch implements channel.StreamReceiver. It runs on the server
// connection's read loop and never blocks: deliveries go into the
// stream's window-bounded buffer, and grants go out through the conn's
// thread-safe reply writer.
func (c *Consumer) StreamBatch(b channel.StreamBatch) {
	key := streamKey{b.Binding, b.Stream}
	switch b.Phase {
	case channel.StreamOpen:
		in := &Inbound{
			c:      c,
			flow:   b.Flow,
			grant:  b.Grant,
			notify: make(chan struct{}, 1),
			opened: time.Now(),
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return // no grant: the producer stays parked at zero credit
		}
		c.streams[key] = in
		c.pending = append(c.pending, in)
		c.mu.Unlock()
		select {
		case c.notify <- struct{}{}:
		default:
		}
		// The initial window, granted before anyone Accepts: open is the
		// only round-trip a stream ever pays.
		in.issueGrant(uint64(c.cfg.Window), uint64(c.cfg.WindowBytes))
	case channel.StreamElems:
		c.mu.Lock()
		in := c.streams[key]
		c.mu.Unlock()
		if in == nil {
			return
		}
		in.push(b)
	case channel.StreamClose:
		c.mu.Lock()
		in := c.streams[key]
		delete(c.streams, key)
		c.mu.Unlock()
		if in != nil {
			in.finish(b.Err)
		}
	}
}

// Close marks the consumer closed: new opens are ignored and every open
// stream finishes with channel.ErrStreamClosed.
func (c *Consumer) Close() {
	c.mu.Lock()
	c.closed = true
	streams := make([]*Inbound, 0, len(c.streams))
	for _, in := range c.streams {
		streams = append(streams, in)
	}
	c.streams = make(map[streamKey]*Inbound)
	c.mu.Unlock()
	for _, in := range streams {
		in.finish(channel.ErrStreamClosed)
	}
}

// InboundStats is a snapshot of one inbound stream's accounting.
type InboundStats struct {
	Received     uint64 // elements arrived from the wire (including dropped)
	Consumed     uint64 // elements the application has read
	Dropped      uint64 // mistyped elements the server stub removed
	SeqGaps      uint64 // batches arriving out of FIFO position
	MaxQueued    uint64 // buffer high-water mark (bounded by the window)
	GrantedElems uint64 // cumulative element credit granted
}

// Inbound is one stream as seen by the consumer: a window-bounded element
// queue fed by the connection read loop and drained by Recv. Credit
// grants flow back automatically as the application consumes.
type Inbound struct {
	c     *Consumer
	flow  string
	grant func(cumElems, cumBytes uint64)

	mu        sync.Mutex
	queue     []values.Value
	recvElems uint64 // wire-arrived elements, kept + dropped
	recvBytes uint64
	consElems uint64 // consumed: read by the app, or dropped by the stub
	consBytes uint64
	granted   uint64 // cumulative element credit issued
	grantedB  uint64
	dropped   uint64
	seqGaps   uint64
	maxQueued uint64
	done      bool
	err       error

	notify    chan struct{}
	opened    time.Time
	lastGrant time.Time
}

// Flow returns the stream's flow name.
func (in *Inbound) Flow() string { return in.flow }

// push absorbs one element batch on the read-loop goroutine.
func (in *Inbound) push(b channel.StreamBatch) {
	var batchBytes uint64
	for _, v := range b.Elems {
		batchBytes += uint64(wire.ValueSizeHint(v))
	}
	in.mu.Lock()
	if in.done {
		in.mu.Unlock()
		return
	}
	// FIFO check: the batch's Seq is the producer's cumulative element
	// count before it, which must equal what we have seen arrive.
	if b.Seq != in.recvElems {
		in.seqGaps++
	}
	in.queue = append(in.queue, b.Elems...)
	if q := uint64(len(in.queue)); q > in.maxQueued {
		in.maxQueued = q
	}
	in.recvElems += uint64(len(b.Elems)) + b.DroppedElems
	in.recvBytes += batchBytes + b.DroppedBytes
	// Dropped elements are consumed on arrival: the producer debited its
	// window for them, and nothing will ever Recv them, so their credit
	// comes back immediately or the window shrinks by every drop.
	in.consElems += b.DroppedElems
	in.consBytes += b.DroppedBytes
	in.dropped += b.DroppedElems
	in.mu.Unlock()
	if ins := in.c.cfg.Instruments; ins != nil {
		ins.ElementsRecv.Add(uint64(len(b.Elems)))
		ins.Batches.Inc()
		in.mu.Lock()
		ins.QueuedElems.Set(int64(len(in.queue)))
		in.mu.Unlock()
	}
	in.maybeGrant()
	select {
	case in.notify <- struct{}{}:
	default:
	}
}

// Recv returns the next element, blocking until one arrives. At orderly
// end-of-stream it returns io.EOF once the buffer drains; an abnormal
// close returns the cause (matching channel.ErrDisconnected).
func (in *Inbound) Recv(ctx context.Context) (values.Value, error) {
	for {
		in.mu.Lock()
		if len(in.queue) > 0 {
			v := in.queue[0]
			in.queue[0] = values.Value{}
			in.queue = in.queue[1:]
			if len(in.queue) == 0 {
				in.queue = nil // let the drained backing array go
			}
			in.consElems++
			in.consBytes += uint64(wire.ValueSizeHint(v))
			in.mu.Unlock()
			in.maybeGrant()
			return v, nil
		}
		if in.done {
			err := in.err
			in.mu.Unlock()
			if err == nil {
				err = io.EOF
			}
			return values.Value{}, err
		}
		in.mu.Unlock()
		select {
		case <-in.notify:
		case <-ctx.Done():
			return values.Value{}, ctx.Err()
		}
	}
}

// maybeGrant tops the producer's window back up once half of it has been
// consumed since the last grant — batching grants the same way the data
// path batches elements, so the back-channel costs one bare-header frame
// per half-window rather than one per element.
func (in *Inbound) maybeGrant() {
	in.mu.Lock()
	targetE := in.consElems + uint64(in.c.cfg.Window)
	targetB := in.consBytes + uint64(in.c.cfg.WindowBytes)
	due := !in.done &&
		(targetE-in.granted >= uint64(in.c.cfg.Window)/2 ||
			targetB-in.grantedB >= uint64(in.c.cfg.WindowBytes)/2)
	if !due {
		in.mu.Unlock()
		return
	}
	in.mu.Unlock()
	in.issueGrant(targetE, targetB)
}

// issueGrant records and transmits one cumulative grant.
func (in *Inbound) issueGrant(cumElems, cumBytes uint64) {
	in.mu.Lock()
	if in.done || (cumElems <= in.granted && cumBytes <= in.grantedB) {
		in.mu.Unlock()
		return
	}
	consumedSince := in.consElems
	if cumElems > in.granted {
		in.granted = cumElems
	}
	if cumBytes > in.grantedB {
		in.grantedB = cumBytes
	}
	opened := in.opened
	in.lastGrant = time.Now()
	grant := in.grant
	in.mu.Unlock()
	if ins := in.c.cfg.Instruments; ins != nil {
		// Sampled once per grant cycle: the stream's lifetime delivery rate.
		if dt := time.Since(opened).Seconds(); dt > 0 && consumedSince > 0 {
			ins.ElemsPerSec.Observe(uint64(float64(consumedSince) / dt))
		}
	}
	grant(in.granted, in.grantedB)
}

// finish marks the stream done and wakes Recv.
func (in *Inbound) finish(err error) {
	in.mu.Lock()
	if in.done {
		in.mu.Unlock()
		return
	}
	in.done = true
	in.err = err
	in.mu.Unlock()
	select {
	case in.notify <- struct{}{}:
	default:
	}
}

// Stats snapshots the stream's accounting.
func (in *Inbound) Stats() InboundStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return InboundStats{
		Received:     in.recvElems,
		Consumed:     in.consElems,
		Dropped:      in.dropped,
		SeqGaps:      in.seqGaps,
		MaxQueued:    in.maxQueued,
		GrantedElems: in.granted,
	}
}
