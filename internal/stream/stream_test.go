package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/types"
	"repro/internal/values"
)

func feedType() *types.Interface {
	return types.StreamInterface("Feed",
		types.FlowOf("ticks", types.Producer, values.TInt()))
}

func ifaceID(nonce uint64) naming.InterfaceID {
	return naming.InterfaceID{
		Object: naming.ObjectID{
			Cluster: naming.ClusterID{Capsule: naming.CapsuleID{Node: "server", Seq: 0}, Seq: 0},
		},
		Nonce: nonce,
	}
}

type env struct {
	net  *netsim.Network
	srv  *channel.Server
	cons *Consumer
	ref  naming.InterfaceRef
}

func newEnv(t *testing.T, ccfg ConsumerConfig) *env {
	t.Helper()
	n := netsim.New(1)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	srv := channel.NewServer(l, channel.ServerConfig{})
	cons := NewConsumer(ccfg)
	id := ifaceID(77)
	if err := srv.Register(id, feedType(), cons); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { srv.Close(); cons.Close() })
	return &env{net: n, srv: srv, cons: cons,
		ref: naming.InterfaceRef{ID: id, TypeName: "Feed", Endpoint: "sim://server"}}
}

func (e *env) bind(t *testing.T) *channel.Binding {
	t.Helper()
	b, err := channel.Bind(e.ref, channel.BindConfig{Transport: e.net, Type: feedType()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func TestStreamEndToEnd(t *testing.T) {
	e := newEnv(t, ConsumerConfig{Window: 32})
	b := e.bind(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	p, err := Open(ctx, b, "ticks", ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const total = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if err := p.Send(ctx, values.Int(int64(i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		if err := p.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	in, err := e.cons.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if in.Flow() != "ticks" {
		t.Fatalf("flow = %q", in.Flow())
	}
	for i := 0; i < total; i++ {
		v, err := in.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got, _ := v.AsInt(); got != int64(i) {
			t.Fatalf("recv %d: got %d — FIFO violated", i, got)
		}
	}
	if _, err := in.Recv(ctx); err != io.EOF {
		t.Fatalf("after EOS: %v, want io.EOF", err)
	}
	wg.Wait()

	st := in.Stats()
	if st.SeqGaps != 0 {
		t.Fatalf("seq gaps: %d", st.SeqGaps)
	}
	if st.Received != total || st.Consumed != total {
		t.Fatalf("stats: %+v", st)
	}
	// The memory ceiling: the consumer never buffered more than the window.
	if st.MaxQueued > 32 {
		t.Fatalf("max queued %d exceeds window 32", st.MaxQueued)
	}
	ps := p.Stats()
	if ps.Sent != total {
		t.Fatalf("producer sent %d", ps.Sent)
	}
	if ps.Batches == 0 || ps.Batches > total {
		t.Fatalf("batches %d", ps.Batches)
	}
	ss := e.srv.Stats()
	if ss.FlowTypeErrors != 0 {
		t.Fatalf("flow type errors: %d", ss.FlowTypeErrors)
	}
	if ss.CreditGrants == 0 {
		t.Fatal("no credit grants recorded")
	}
}

// TestStreamBackpressure pins the heart of the design: a consumer that
// stops reading stalls its producer at the window edge instead of letting
// the backlog grow.
func TestStreamBackpressure(t *testing.T) {
	const window = 16
	e := newEnv(t, ConsumerConfig{Window: window})
	b := e.bind(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	p, err := Open(ctx, b, "ticks", ProducerConfig{Buffer: 4, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	in, err := e.cons.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Nobody Recvs: sends must stop within window + local buffer.
	sent := make(chan int, 1)
	go func() {
		n := 0
		sctx, scancel := context.WithTimeout(ctx, 500*time.Millisecond)
		defer scancel()
		for {
			if err := p.Send(sctx, values.Int(int64(n))); err != nil {
				break
			}
			n++
		}
		sent <- n
	}()
	n := <-sent
	// Admission is bounded by the element window plus the producer's local
	// buffer (4) and the batch in flight (4).
	if n > window+8 {
		t.Fatalf("producer pushed %d elements into a stalled stream (window %d)", n, window)
	}
	if n < window {
		t.Fatalf("producer stalled after only %d elements (window %d)", n, window)
	}
	if st := in.Stats(); st.MaxQueued > window {
		t.Fatalf("consumer queued %d > window %d", st.MaxQueued, window)
	}
	if ps := p.Stats(); ps.Stalls == 0 {
		t.Fatal("no stalls recorded for a stalled stream")
	}
	// Draining revives the stream: credit flows back and Send works again.
	for i := 0; i < n; i++ {
		if _, err := in.Recv(ctx); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if err := p.Send(ctx, values.Int(999)); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
}

func TestStreamFailFast(t *testing.T) {
	const window = 8
	e := newEnv(t, ConsumerConfig{Window: window})
	b := e.bind(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	p, err := Open(ctx, b, "ticks", ProducerConfig{FailFast: true, Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := e.cons.Accept(ctx); err != nil {
		t.Fatal(err)
	}
	// The initial grant races the first Send; wait for the window to open,
	// then exhaust it and expect ErrNoCredit once it is gone.
	deadline := time.Now().Add(2 * time.Second)
	sent := 0
	for time.Now().Before(deadline) {
		err := p.Send(ctx, values.Int(int64(sent)))
		if err == nil {
			sent++
			continue
		}
		if errors.Is(err, ErrNoCredit) {
			if sent == 0 {
				// The initial grant has not arrived yet: fail-fast refuses
				// rather than waiting, which is exactly its contract.
				time.Sleep(time.Millisecond)
				continue
			}
			if sent < window {
				t.Fatalf("ErrNoCredit after %d sends, window %d", sent, window)
			}
			return
		}
		t.Fatalf("send: %v", err)
	}
	t.Fatal("never hit ErrNoCredit with an unread consumer")
}

// TestStreamMistypedElements covers the satellite fix end to end: mistyped
// elements are dropped server-side but counted, surfaced in ServerStats,
// and their credit still returns to the producer.
func TestStreamMistypedElements(t *testing.T) {
	e := newEnv(t, ConsumerConfig{Window: 8})
	// An untyped client binding (no Type) lets mistyped elements reach the
	// typed server stub.
	b, err := channel.Bind(e.ref, channel.BindConfig{Transport: e.net})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	p, err := Open(ctx, b, "ticks", ProducerConfig{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	in, err := e.cons.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave good ints with mistyped strings: 8 good + 8 bad is double
	// the window, so the producer only survives if dropped elements are
	// credited back. Consumption runs concurrently to keep grants flowing.
	go func() {
		for i := 0; i < 8; i++ {
			if err := p.Send(ctx, values.Int(int64(i))); err != nil {
				t.Errorf("send int %d: %v", i, err)
				return
			}
			if err := p.Send(ctx, values.Str(fmt.Sprintf("bogus-%d", i))); err != nil {
				t.Errorf("send str %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		v, err := in.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got, _ := v.AsInt(); got != int64(i) {
			t.Fatalf("recv %d: got %v", i, v)
		}
	}
	waitFor(t, func() bool { return in.Stats().Dropped == 8 }, "dropped != 8: %+v", in.Stats())
	if got := e.srv.Stats().FlowTypeErrors; got != 8 {
		t.Fatalf("server FlowTypeErrors = %d, want 8", got)
	}
	if st := in.Stats(); st.SeqGaps != 0 {
		t.Fatalf("seq gaps %d: dropped elements broke FIFO accounting", st.SeqGaps)
	}
}

// TestStreamSessionDeath pins teardown: killing the transport wakes a
// credit-blocked producer with the ErrStreamClosed/ErrDisconnected chain
// and finishes the consumer's stream with an abnormal close.
func TestStreamSessionDeath(t *testing.T) {
	const window = 4
	e := newEnv(t, ConsumerConfig{Window: window})
	b := e.bind(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	p, err := Open(ctx, b, "ticks", ProducerConfig{Buffer: 1, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	in, err := e.cons.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the window so the next Send blocks on credit.
	for i := 0; i < window; i++ {
		if err := p.Send(ctx, values.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() {
		// Two more: the first may slip into the local buffer, the second
		// must block at zero credit.
		for i := 0; i < 2; i++ {
			if err := p.Send(ctx, values.Int(100)); err != nil {
				blocked <- err
				return
			}
		}
		blocked <- p.Send(ctx, values.Int(101))
	}()
	time.Sleep(50 * time.Millisecond) // let the sender reach the gate
	e.net.CrashHost("server")

	err = <-blocked
	if !errors.Is(err, channel.ErrStreamClosed) {
		t.Fatalf("blocked send got %v, want ErrStreamClosed", err)
	}
	if !errors.Is(err, channel.ErrDisconnected) {
		t.Fatalf("ErrStreamClosed chain lost ErrDisconnected: %v", err)
	}
	// The consumer's end observes the abnormal close once the buffered
	// elements drain.
	for {
		_, err := in.Recv(ctx)
		if err == nil {
			continue
		}
		if err == io.EOF {
			t.Fatal("conn death surfaced as orderly EOF")
		}
		if !errors.Is(err, channel.ErrDisconnected) {
			t.Fatalf("consumer close err = %v, want ErrDisconnected", err)
		}
		break
	}
}

// TestStream64ProducersOneSession is the pipelining satellite: 64
// producers, each on its own binding, all multiplexed over one shared
// session to one consumer. Every stream must keep per-flow FIFO order and
// no element may leak across bindings, under -race.
func TestStream64ProducersOneSession(t *testing.T) {
	const (
		producers   = 64
		perProducer = 50
		stride      = 1 << 20 // element = idx*stride + seq
	)
	e := newEnv(t, ConsumerConfig{Window: 16})
	mgr := channel.NewSessionManager(e.net)
	defer mgr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var pwg sync.WaitGroup
	for i := 0; i < producers; i++ {
		b, err := channel.Bind(e.ref, channel.BindConfig{
			Transport: e.net, Type: feedType(), Sessions: mgr,
		})
		if err != nil {
			t.Fatalf("bind %d: %v", i, err)
		}
		p, err := Open(ctx, b, "ticks", ProducerConfig{MaxBatch: 8, Buffer: 8})
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		pwg.Add(1)
		go func(idx int, p *Producer, b *channel.Binding) {
			defer pwg.Done()
			defer b.Close()
			for seq := 0; seq < perProducer; seq++ {
				if err := p.Send(ctx, values.Int(int64(idx*stride+seq))); err != nil {
					t.Errorf("producer %d send %d: %v", idx, seq, err)
					return
				}
			}
			if err := p.Close(); err != nil {
				t.Errorf("producer %d close: %v", idx, err)
			}
		}(i, p, b)
	}

	var (
		mu     sync.Mutex
		owners = make(map[int]int) // producer idx -> streams that carried it
	)
	var cwg sync.WaitGroup
	for k := 0; k < producers; k++ {
		in, err := e.cons.Accept(ctx)
		if err != nil {
			t.Fatalf("accept %d: %v", k, err)
		}
		cwg.Add(1)
		go func(in *Inbound) {
			defer cwg.Done()
			owner, next := -1, 0
			for {
				v, err := in.Recv(ctx)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Errorf("stream recv: %v", err)
					return
				}
				n, _ := v.AsInt()
				idx, seq := int(n)/stride, int(n)%stride
				if owner == -1 {
					owner = idx
				}
				if idx != owner {
					t.Errorf("cross-binding delivery: stream of producer %d got element of producer %d", owner, idx)
					return
				}
				if seq != next {
					t.Errorf("producer %d: FIFO violated, got seq %d want %d", owner, seq, next)
					return
				}
				next++
			}
			if next != perProducer {
				t.Errorf("producer %d: stream delivered %d of %d elements", owner, next, perProducer)
			}
			if st := in.Stats(); st.SeqGaps != 0 {
				t.Errorf("producer %d: %d seq gaps", owner, st.SeqGaps)
			}
			mu.Lock()
			owners[owner]++
			mu.Unlock()
		}(in)
	}
	cwg.Wait()
	pwg.Wait()

	if len(owners) != producers {
		t.Fatalf("%d distinct producers observed, want %d", len(owners), producers)
	}
	for idx, n := range owners {
		if n != 1 {
			t.Errorf("producer %d delivered on %d streams", idx, n)
		}
	}
	// All 64 bindings really multiplexed over one transport session.
	if st := mgr.Stats(); st.Dials != 1 {
		t.Errorf("dials = %d, want 1 shared session", st.Dials)
	}
	if got := e.srv.Stats().FlowTypeErrors; got != 0 {
		t.Errorf("flow type errors: %d", got)
	}
}

func TestOpenRejectsWrongFlow(t *testing.T) {
	e := newEnv(t, ConsumerConfig{})
	b := e.bind(t)
	ctx := context.Background()
	if _, err := Open(ctx, b, "nope", ProducerConfig{}); !errors.Is(err, channel.ErrTypeCheck) {
		t.Fatalf("unknown flow: %v, want ErrTypeCheck", err)
	}
	// A Consumer-direction flow in this binding's view cannot be produced.
	mirror := types.Complement(feedType())
	b2, err := channel.Bind(e.ref, channel.BindConfig{Transport: e.net, Type: mirror})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if _, err := Open(ctx, b2, "ticks", ProducerConfig{}); !errors.Is(err, channel.ErrTypeCheck) {
		t.Fatalf("consumer-direction flow: %v, want ErrTypeCheck", err)
	}
}

func waitFor(t *testing.T, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf(format, args...)
}
