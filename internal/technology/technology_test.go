package technology

import (
	"errors"
	"testing"

	"repro/internal/values"
)

func spec(t *testing.T) *Specification {
	t.Helper()
	s := NewSpecification("node-alpha")
	if err := s.Choose("transport", values.Record(
		values.F("kind", values.Str("tcp")),
		values.F("reliable", values.Bool(true)),
	)); err != nil {
		t.Fatal(err)
	}
	if err := s.Choose("codec", values.Record(
		values.F("name", values.Str("canonical")),
		values.F("byte_order", values.Str("big")),
	)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChoices(t *testing.T) {
	s := spec(t)
	if s.Name() != "node-alpha" {
		t.Errorf("name = %q", s.Name())
	}
	got := s.Choices()
	if len(got) != 2 || got[0] != "codec" || got[1] != "transport" {
		t.Errorf("choices = %v", got)
	}
	d, err := s.Choice("codec")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := d.FieldByName("name"); !n.Equal(values.Str("canonical")) {
		t.Errorf("codec = %v", d)
	}
	if _, err := s.Choice("ghost"); !errors.Is(err, ErrNoSuchChoice) {
		t.Errorf("ghost choice = %v", err)
	}
	if err := s.Choose("", values.Record()); !errors.Is(err, ErrBadDecl) {
		t.Errorf("empty name = %v", err)
	}
	if err := s.Choose("x", values.Int(1)); !errors.Is(err, ErrBadDecl) {
		t.Errorf("non-record descriptor = %v", err)
	}
}

func TestRequirements(t *testing.T) {
	s := spec(t)
	if err := s.Require(Requirement{
		Name:      "interworking-needs-canonical",
		Condition: "codec.name == 'canonical'",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Require(Requirement{
		Name:      "reliable-transport",
		Condition: "transport.reliable",
	}); err != nil {
		t.Fatal(err)
	}
	rep := s.Assess()
	if !rep.Passed() || len(rep.Results) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if err := s.MustConform(); err != nil {
		t.Errorf("MustConform = %v", err)
	}
	// A failing requirement.
	if err := s.Require(Requirement{Name: "impossible", Condition: "codec.name == 'exotic'"}); err != nil {
		t.Fatal(err)
	}
	rep = s.Assess()
	if rep.Passed() {
		t.Error("report should fail")
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Name != "impossible" || fails[0].Kind != "requirement" {
		t.Errorf("failures = %+v", fails)
	}
	if err := s.MustConform(); !errors.Is(err, ErrNonConformed) {
		t.Errorf("MustConform = %v", err)
	}
	// A requirement over a missing choice reports the evaluation error.
	if err := s.Require(Requirement{Name: "ghostly", Condition: "ghost.prop == 1"}); err != nil {
		t.Fatal(err)
	}
	rep = s.Assess()
	var found bool
	for _, r := range rep.Results {
		if r.Name == "ghostly" && !r.Passed && r.Detail != "" {
			found = true
		}
	}
	if !found {
		t.Error("evaluation error should be reported")
	}
}

func TestRequirementValidation(t *testing.T) {
	s := spec(t)
	if err := s.Require(Requirement{Name: "", Condition: "true"}); !errors.Is(err, ErrBadDecl) {
		t.Errorf("unnamed = %v", err)
	}
	if err := s.Require(Requirement{Name: "x", Condition: "(("}); !errors.Is(err, ErrBadDecl) {
		t.Errorf("bad condition = %v", err)
	}
	if err := s.Require(Requirement{Name: "x", Condition: "true"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Require(Requirement{Name: "x", Condition: "true"}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup = %v", err)
	}
}

func TestConformanceTests(t *testing.T) {
	s := spec(t)
	ran := map[string]bool{}
	if err := s.AddTest(TestCase{
		Name: "api-smoke", At: Programmatic,
		Run: func() error { ran["api"] = true; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTest(TestCase{
		Name: "wire-interop", At: Interworking,
		Run: func() error { ran["wire"] = true; return errors.New("peer rejected frame") },
	}); err != nil {
		t.Fatal(err)
	}
	rep := s.Assess()
	if !ran["api"] || !ran["wire"] {
		t.Error("tests did not run")
	}
	if rep.Passed() {
		t.Error("failing test should fail the report")
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Name != "wire-interop" || fails[0].At != Interworking ||
		fails[0].Detail != "peer rejected frame" {
		t.Errorf("failures = %+v", fails)
	}
}

func TestAddTestValidation(t *testing.T) {
	s := spec(t)
	if err := s.AddTest(TestCase{Name: "", At: Programmatic, Run: func() error { return nil }}); !errors.Is(err, ErrBadDecl) {
		t.Errorf("unnamed = %v", err)
	}
	if err := s.AddTest(TestCase{Name: "x", At: Programmatic}); !errors.Is(err, ErrBadDecl) {
		t.Errorf("no body = %v", err)
	}
	if err := s.AddTest(TestCase{Name: "x", At: RefPointClass(9), Run: func() error { return nil }}); !errors.Is(err, ErrBadDecl) {
		t.Errorf("bad refpoint = %v", err)
	}
	ok := TestCase{Name: "x", At: Interchange, Run: func() error { return nil }}
	if err := s.AddTest(ok); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTest(ok); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup = %v", err)
	}
}

func TestRefPointClassString(t *testing.T) {
	for c, want := range map[RefPointClass]string{
		Programmatic: "programmatic", Perceptual: "perceptual",
		Interworking: "interworking", Interchange: "interchange",
		RefPointClass(9): "refpointclass(9)",
	} {
		if got := c.String(); got != want {
			t.Errorf("%d = %q, want %q", int(c), got, want)
		}
	}
}
