// Package technology implements the RM-ODP technology viewpoint
// (Section 7 of the tutorial): "a technology specification of an ODP
// system describes the implementation of that system and the information
// required for testing".
//
// A Specification records the concrete technology choices (transport,
// transfer syntax, platform, ...) as descriptor records, the requirements
// those choices must satisfy (constraint expressions — e.g. "the chosen
// codec must be canonical when interworking is claimed"), and the
// conformance test cases to run at declared reference points. RM-ODP
// distinguishes four classes of reference point at which conformance can
// be tested: programmatic (an API), perceptual (a user or physical
// interface), interworking (a protocol between systems) and interchange
// (an exchange medium such as a file format).
package technology

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/constraint"
	"repro/internal/values"
)

// Technology error sentinels.
var (
	ErrDuplicate    = errors.New("technology: duplicate declaration")
	ErrNoSuchChoice = errors.New("technology: no such technology choice")
	ErrBadDecl      = errors.New("technology: invalid declaration")
	ErrNonConformed = errors.New("technology: specification does not conform")
)

// RefPointClass classifies a conformance reference point.
type RefPointClass int

// The four RM-ODP conformance reference point classes.
const (
	Programmatic RefPointClass = iota + 1
	Perceptual
	Interworking
	Interchange
)

// String returns the class name.
func (c RefPointClass) String() string {
	switch c {
	case Programmatic:
		return "programmatic"
	case Perceptual:
		return "perceptual"
	case Interworking:
		return "interworking"
	case Interchange:
		return "interchange"
	}
	return fmt.Sprintf("refpointclass(%d)", int(c))
}

// Requirement constrains the technology choices: the expression is
// evaluated over a record whose fields are the choice names, each bound
// to its descriptor record.
type Requirement struct {
	Name      string
	Condition string

	cond *constraint.Expr
}

// TestCase is one conformance test exercised at a reference point.
type TestCase struct {
	Name string
	At   RefPointClass
	Run  func() error
}

// Result records one requirement evaluation or test execution.
type Result struct {
	Name   string
	Kind   string // "requirement" or "test"
	At     RefPointClass
	Passed bool
	Detail string
}

// Report is the outcome of a conformance assessment.
type Report struct {
	Results []Result
}

// Passed reports whether every requirement and test passed.
func (r *Report) Passed() bool {
	for _, res := range r.Results {
		if !res.Passed {
			return false
		}
	}
	return true
}

// Failures returns the failed results.
func (r *Report) Failures() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.Passed {
			out = append(out, res)
		}
	}
	return out
}

// Specification is a technology specification under assessment.
type Specification struct {
	name string

	mu           sync.Mutex
	choices      map[string]values.Value
	requirements []*Requirement
	tests        []TestCase
}

// NewSpecification names a technology specification.
func NewSpecification(name string) *Specification {
	return &Specification{name: name, choices: make(map[string]values.Value)}
}

// Name returns the specification's name.
func (s *Specification) Name() string { return s.name }

// Choose records a technology choice: a named descriptor record, e.g.
//
//	spec.Choose("transport", values.Record(
//		values.F("kind", values.Str("tcp")),
//		values.F("reliable", values.Bool(true)),
//	))
func (s *Specification) Choose(name string, descriptor values.Value) error {
	if name == "" {
		return fmt.Errorf("%w: empty choice name", ErrBadDecl)
	}
	if descriptor.Kind() != values.KindRecord {
		return fmt.Errorf("%w: descriptor of %q must be a record", ErrBadDecl, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.choices[name] = descriptor
	return nil
}

// Choice returns a recorded technology choice.
func (s *Specification) Choice(name string) (values.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.choices[name]
	if !ok {
		return values.Value{}, fmt.Errorf("%w: %q", ErrNoSuchChoice, name)
	}
	return d, nil
}

// Choices lists recorded choice names, sorted.
func (s *Specification) Choices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.choices))
	for n := range s.choices {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Require adds a requirement over the choices.
func (s *Specification) Require(r Requirement) error {
	if r.Name == "" || r.Condition == "" {
		return fmt.Errorf("%w: requirement needs a name and a condition", ErrBadDecl)
	}
	expr, err := constraint.Parse(r.Condition)
	if err != nil {
		return fmt.Errorf("%w: requirement %q: %v", ErrBadDecl, r.Name, err)
	}
	r.cond = expr
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.requirements {
		if existing.Name == r.Name {
			return fmt.Errorf("%w: requirement %q", ErrDuplicate, r.Name)
		}
	}
	cp := r
	s.requirements = append(s.requirements, &cp)
	return nil
}

// AddTest registers a conformance test case.
func (s *Specification) AddTest(tc TestCase) error {
	if tc.Name == "" || tc.Run == nil {
		return fmt.Errorf("%w: test needs a name and a body", ErrBadDecl)
	}
	switch tc.At {
	case Programmatic, Perceptual, Interworking, Interchange:
	default:
		return fmt.Errorf("%w: test %q has invalid reference point", ErrBadDecl, tc.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.tests {
		if existing.Name == tc.Name {
			return fmt.Errorf("%w: test %q", ErrDuplicate, tc.Name)
		}
	}
	s.tests = append(s.tests, tc)
	return nil
}

// Assess evaluates every requirement against the choices and runs every
// conformance test, returning the full report.
func (s *Specification) Assess() *Report {
	s.mu.Lock()
	fields := make([]values.Field, 0, len(s.choices))
	names := make([]string, 0, len(s.choices))
	for n := range s.choices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fields = append(fields, values.F(n, s.choices[n]))
	}
	env := values.Record(fields...)
	reqs := append([]*Requirement(nil), s.requirements...)
	tests := append([]TestCase(nil), s.tests...)
	s.mu.Unlock()

	rep := &Report{}
	for _, r := range reqs {
		res := Result{Name: r.Name, Kind: "requirement"}
		ok, err := r.cond.Matches(env)
		switch {
		case err != nil:
			res.Detail = err.Error()
		case ok:
			res.Passed = true
		default:
			res.Detail = "condition not satisfied"
		}
		rep.Results = append(rep.Results, res)
	}
	for _, tc := range tests {
		res := Result{Name: tc.Name, Kind: "test", At: tc.At}
		if err := tc.Run(); err != nil {
			res.Detail = err.Error()
		} else {
			res.Passed = true
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// MustConform runs Assess and returns an error naming the failures, for
// deployment pipelines that refuse to install non-conforming technology.
func (s *Specification) MustConform() error {
	rep := s.Assess()
	if rep.Passed() {
		return nil
	}
	fails := rep.Failures()
	names := make([]string, len(fails))
	for i, f := range fails {
		names[i] = f.Name
	}
	return fmt.Errorf("%w: %s: failed %v", ErrNonConformed, s.name, names)
}
