package trader

// The trader is itself an ODP infrastructure object ("Objects in a
// computational specification can be application objects or ODP
// infrastructure objects (e.g. a type repository or a trader)" —
// Section 5). This file provides both halves of that: Servant adapts a
// *Trader to channel.Handler so it can be offered as an interface of an
// engineering object, and Remote is the client proxy, itself an Importer,
// so federation links can span nodes.

import (
	"context"
	"fmt"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/types"
	"repro/internal/values"
)

// InterfaceType returns the trader's operational interface type.
func InterfaceType() *types.Interface {
	return types.OpInterface("odp.Trader",
		types.Op("Export",
			types.Params(
				types.P("service_type", values.TString()),
				types.P("ref", naming.RefDataType()),
				types.P("properties", values.TAny()),
			),
			types.Term("OK", types.P("offer_id", values.TString())),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("Withdraw",
			types.Params(types.P("offer_id", values.TString())),
			types.Term("OK"),
			types.Term("Error", types.P("reason", values.TString())),
		),
		// Install re-homes an existing offer under its original id — the
		// shard-rebalance primitive (Export would mint a fresh id).
		types.Op("Install",
			types.Params(types.P("offer", values.TAny())),
			types.Term("OK"),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("Import",
			types.Params(
				types.P("service_type", values.TString()),
				types.P("constraint", values.TString()),
				types.P("pref_kind", values.TInt()),
				types.P("pref_expr", values.TString()),
				types.P("max_matches", values.TInt()),
				types.P("max_hops", values.TInt()),
			),
			types.Term("OK", types.P("offers", values.TSeq(values.TAny()))),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}

// offerToValue encodes an offer for transmission.
func offerToValue(o Offer) values.Value {
	rec := values.Record(
		values.F("id", values.Str(o.ID)),
		values.F("service_type", values.Str(o.ServiceType)),
		values.F("ref", o.Ref.ToValue()),
		values.F("properties", values.Any(values.TypeOf(o.Properties), o.Properties)),
	)
	return values.Any(values.TypeOf(rec), rec)
}

// offerFromValue decodes an offer encoded by offerToValue.
func offerFromValue(v values.Value) (Offer, error) {
	if _, inner, ok := v.AsAny(); ok {
		v = inner
	}
	var o Offer
	idV, ok := v.FieldByName("id")
	if !ok {
		return o, fmt.Errorf("%w: offer missing id", ErrBadRequest)
	}
	o.ID, _ = idV.AsString()
	stV, ok := v.FieldByName("service_type")
	if !ok {
		return o, fmt.Errorf("%w: offer missing service_type", ErrBadRequest)
	}
	o.ServiceType, _ = stV.AsString()
	refV, ok := v.FieldByName("ref")
	if !ok {
		return o, fmt.Errorf("%w: offer missing ref", ErrBadRequest)
	}
	ref, err := naming.RefFromValue(refV)
	if err != nil {
		return o, err
	}
	o.Ref = ref
	if pV, ok := v.FieldByName("properties"); ok {
		if _, inner, isAny := pV.AsAny(); isAny {
			o.Properties = inner
		} else {
			o.Properties = pV
		}
	}
	return o, nil
}

// OfferToValue encodes an offer in the wire representation the trader
// servant speaks, for callers (such as a replica-group adapter) that
// invoke the servant vocabulary directly rather than over a binding.
func OfferToValue(o Offer) values.Value { return offerToValue(o) }

// OfferFromValue decodes an offer encoded by OfferToValue.
func OfferFromValue(v values.Value) (Offer, error) { return offerFromValue(v) }

// Servant adapts a Trader to channel.Handler so it can be registered as
// an interface of an engineering object.
type Servant struct {
	T *Trader
}

var _ channel.Handler = (*Servant)(nil)

// Invoke implements channel.Handler.
func (s *Servant) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	fail := func(err error) (string, []values.Value, error) {
		return "Error", []values.Value{values.Str(err.Error())}, nil
	}
	switch op {
	case "Export":
		st, _ := args[0].AsString()
		ref, err := naming.RefFromValue(args[1])
		if err != nil {
			return fail(err)
		}
		props := args[2]
		if _, inner, ok := props.AsAny(); ok {
			props = inner
		}
		id, err := s.T.Export(st, ref, props)
		if err != nil {
			return fail(err)
		}
		return "OK", []values.Value{values.Str(id)}, nil
	case "Withdraw":
		id, _ := args[0].AsString()
		if err := s.T.Withdraw(id); err != nil {
			return fail(err)
		}
		return "OK", nil, nil
	case "Install":
		o, err := offerFromValue(args[0])
		if err != nil {
			return fail(err)
		}
		if err := s.T.Install(o); err != nil {
			return fail(err)
		}
		return "OK", nil, nil
	case "Import":
		st, _ := args[0].AsString()
		constraint, _ := args[1].AsString()
		prefKind, _ := args[2].AsInt()
		prefExpr, _ := args[3].AsString()
		maxMatches, _ := args[4].AsInt()
		maxHops, _ := args[5].AsInt()
		offers, err := s.T.Import(ImportRequest{
			ServiceType: st,
			Constraint:  constraint,
			Preference:  Preference{Kind: PreferenceKind(prefKind), Expr: prefExpr},
			MaxMatches:  int(maxMatches),
			MaxHops:     int(maxHops),
		})
		if err != nil {
			return fail(err)
		}
		out := make([]values.Value, len(offers))
		for i, o := range offers {
			out[i] = offerToValue(o)
		}
		return "OK", []values.Value{values.Seq(out...)}, nil
	}
	return "", nil, fmt.Errorf("trader: no operation %q", op)
}

// Remote is a client proxy to a trader reachable over a channel binding.
// It satisfies Importer, so it can serve as a federation link target.
type Remote struct {
	b *channel.Binding
}

var _ Importer = (*Remote)(nil)

// NewRemote wraps a binding to a trader interface.
func NewRemote(b *channel.Binding) *Remote { return &Remote{b: b} }

// Close releases the underlying binding.
func (r *Remote) Close() error { return r.b.Close() }

// Export advertises a service at the remote trader.
func (r *Remote) Export(serviceType string, ref naming.InterfaceRef, props values.Value) (string, error) {
	if props.IsNull() {
		props = values.Record()
	}
	term, res, err := r.b.Invoke(context.Background(), "Export", []values.Value{
		values.Str(serviceType),
		ref.ToValue(),
		values.Any(values.TypeOf(props), props),
	})
	if err != nil {
		return "", err
	}
	if term != "OK" {
		return "", remoteFailure("Export", res)
	}
	id, _ := res[0].AsString()
	return id, nil
}

// Withdraw removes an offer at the remote trader.
func (r *Remote) Withdraw(offerID string) error {
	term, res, err := r.b.Invoke(context.Background(), "Withdraw", []values.Value{values.Str(offerID)})
	if err != nil {
		return err
	}
	if term != "OK" {
		return remoteFailure("Withdraw", res)
	}
	return nil
}

// Install re-homes an offer (identity preserved) at the remote trader.
func (r *Remote) Install(o Offer) error {
	term, res, err := r.b.Invoke(context.Background(), "Install", []values.Value{offerToValue(o)})
	if err != nil {
		return err
	}
	if term != "OK" {
		return remoteFailure("Install", res)
	}
	return nil
}

// Import queries the remote trader.
func (r *Remote) Import(req ImportRequest) ([]Offer, error) {
	term, res, err := r.b.Invoke(context.Background(), "Import", []values.Value{
		values.Str(req.ServiceType),
		values.Str(req.Constraint),
		values.Int(int64(req.Preference.Kind)),
		values.Str(req.Preference.Expr),
		values.Int(int64(req.MaxMatches)),
		values.Int(int64(req.MaxHops)),
	})
	if err != nil {
		return nil, err
	}
	if term != "OK" {
		return nil, remoteFailure("Import", res)
	}
	seq := res[0]
	out := make([]Offer, 0, seq.Len())
	for i := 0; i < seq.Len(); i++ {
		o, err := offerFromValue(seq.ElemAt(i))
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

func remoteFailure(op string, res []values.Value) error {
	reason := "unknown"
	if len(res) == 1 {
		if s, ok := res[0].AsString(); ok {
			reason = s
		}
	}
	return fmt.Errorf("trader: remote %s failed: %s", op, reason)
}
