package trader

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/values"
)

// newShardedBank builds a front-end over n local trader shards named
// "s0".."s{n-1}" against the bank type repository.
func newShardedBank(t *testing.T, n int) *ShardedTrader {
	t.Helper()
	repo := repoWithBank(t)
	st := NewSharded("front", repo, 0)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%d", i)
		if err := st.AddShard(name, New(name, repo)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestShardedEmptyRing(t *testing.T) {
	st := NewSharded("front", repoWithBank(t), 0)
	if _, err := st.Export("BankTeller", refOf("BankTeller", 1), values.Null()); !errors.Is(err, ErrNoShards) {
		t.Fatalf("export on empty ring = %v", err)
	}
	if err := st.Withdraw("s0/1"); !errors.Is(err, ErrNoShards) {
		t.Fatalf("withdraw on empty ring = %v", err)
	}
}

func TestShardedExportImportRoutes(t *testing.T) {
	st := newShardedBank(t, 4)
	ids := make([]string, 0, 20)
	for i := 0; i < 20; i++ {
		id, err := st.Export("BankTeller", refOf("BankTeller", uint64(i+1)), values.Null())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	offers, err := st.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 20 {
		t.Fatalf("imported %d offers", len(offers))
	}
	// One advertised type, exact request: the import consults exactly one
	// shard regardless of ring size.
	stats := st.ShardStats()
	if stats.Imports != 1 || stats.ShardsQueried != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, id := range ids {
		if err := st.Withdraw(id); err != nil {
			t.Fatalf("withdraw %s: %v", id, err)
		}
	}
	if offers, _ := st.Import(ImportRequest{ServiceType: "BankTeller"}); len(offers) != 0 {
		t.Fatalf("offers survive withdraw: %v", offers)
	}
}

func TestShardedSubtypeClosureFansOut(t *testing.T) {
	st := newShardedBank(t, 4)
	if _, err := st.Export("BankTeller", refOf("BankTeller", 1), values.Null()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Export("BankManager", refOf("BankManager", 2), values.Null()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Export("Printer", refOf("Printer", 3), values.Null()); err != nil {
		t.Fatal(err)
	}
	// A BankTeller import must see the BankManager offer (substitutable)
	// even though the two types live on different shards, and never the
	// Printer.
	offers, err := st.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 {
		t.Fatalf("closure import = %v", offers)
	}
	for _, o := range offers {
		if o.ServiceType == "Printer" {
			t.Fatalf("printer matched a teller import")
		}
	}
	// MaxMatches truncates after the merge.
	offers, err = st.Import(ImportRequest{ServiceType: "BankTeller", MaxMatches: 1})
	if err != nil || len(offers) != 1 {
		t.Fatalf("MaxMatches import = %v, %v", offers, err)
	}
	// A disjoint type sees only its own bucket.
	res, err := st.ImportEx(ImportRequest{ServiceType: "Printer", Constraint: ""})
	if err != nil {
		t.Fatal(err)
	}
	if res.LinksQueried != 1 || len(res.Offers) != 1 {
		t.Fatalf("printer import = %+v", res)
	}
	// A known type nothing advertised substitutes for: empty result, not
	// an error, and no shard consulted.
	st2 := newShardedBank(t, 2)
	res2, err := st2.ImportEx(ImportRequest{ServiceType: "Printer"})
	if err != nil || res2.LinksQueried != 0 || len(res2.Offers) != 0 {
		t.Fatalf("unadvertised import = %+v, %v", res2, err)
	}
}

func TestShardedImportValidation(t *testing.T) {
	st := newShardedBank(t, 2)
	if _, err := st.Import(ImportRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty type = %v", err)
	}
	if _, err := st.Import(ImportRequest{ServiceType: "Ghost"}); !errors.Is(err, ErrTypeUnknown) {
		t.Fatalf("unknown type = %v", err)
	}
	if _, err := st.Import(ImportRequest{ServiceType: "BankTeller", MaxMatches: -1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative bounds = %v", err)
	}
}

func TestShardedRebalanceAddShard(t *testing.T) {
	repo := repoWithBank(t)
	st := NewSharded("front", repo, 0)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("s%d", i)
		if err := st.AddShard(name, New(name, repo)); err != nil {
			t.Fatal(err)
		}
	}
	const offers = 40
	for i := 0; i < offers; i++ {
		if _, err := st.Export("BankTeller", refOf("BankTeller", uint64(i+1)), values.Null()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Export("BankManager", refOf("BankManager", 1000), values.Null()); err != nil {
		t.Fatal(err)
	}

	epochBefore := st.RingEpoch()
	if err := st.AddShard("s2", New("s2", repo)); err != nil {
		t.Fatal(err)
	}
	if st.RingEpoch() <= epochBefore {
		t.Fatalf("ring epoch did not advance: %d -> %d", epochBefore, st.RingEpoch())
	}
	got, err := st.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != offers+1 {
		t.Fatalf("after add: %d offers (want %d)", len(got), offers+1)
	}
	// Identity preserved across migration: no duplicate ids.
	seen := map[string]bool{}
	for _, o := range got {
		if seen[o.ID] {
			t.Fatalf("duplicate offer id %s after rebalance", o.ID)
		}
		seen[o.ID] = true
	}
	if st.ShardStats().Rebalances != 3 { // two initial AddShards + this one
		t.Fatalf("rebalances = %d", st.ShardStats().Rebalances)
	}
}

func TestShardedRebalanceRemoveShard(t *testing.T) {
	st := newShardedBank(t, 3)
	ids := make([]string, 0, 30)
	for i := 0; i < 30; i++ {
		id, err := st.Export("BankTeller", refOf("BankTeller", uint64(i+1)), values.Null())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := st.RemoveShard("s1"); err != nil {
		t.Fatal(err)
	}
	got, err := st.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("after remove: %d offers", len(got))
	}
	// Withdraw still works even for ids minted by the departed shard
	// (prefix miss falls back to the survivors).
	for _, id := range ids {
		if err := st.Withdraw(id); err != nil {
			t.Fatalf("withdraw %s after remove: %v", id, err)
		}
	}
	if err := st.RemoveShard("ghost"); err == nil {
		t.Fatal("removing unknown shard accepted")
	}
	if err := st.RemoveShard("s0"); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveShard("s2"); err == nil {
		t.Fatal("removing last shard accepted")
	}
}

// TestShardedRebalanceNoBlackout is the -race guarantee the issue asks
// for: while a shard joins and buckets migrate, a concurrent import of a
// live offer answers from the old or the new owner — never a miss.
func TestShardedRebalanceNoBlackout(t *testing.T) {
	repo := repoWithBank(t)
	st := NewSharded("front", repo, 0)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("s%d", i)
		if err := st.AddShard(name, New(name, repo)); err != nil {
			t.Fatal(err)
		}
	}
	const offers = 64
	for i := 0; i < offers; i++ {
		if _, err := st.Export("BankTeller", refOf("BankTeller", uint64(i+1)), values.Null()); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var misses atomic.Uint64
	var probes atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got, err := st.Import(ImportRequest{ServiceType: "BankTeller"})
				probes.Add(1)
				if err != nil || len(got) < offers {
					misses.Add(1)
				}
			}
		}()
	}

	// Let probes interleave with each ring change (a single-core scheduler
	// may otherwise run the whole rebalance before any probe).
	waitProbes := func(target uint64) {
		for probes.Load() < target {
			runtime.Gosched()
		}
	}
	waitProbes(1)
	for i := 2; i < 6; i++ {
		if err := st.AddShard(fmt.Sprintf("s%d", i), New(fmt.Sprintf("s%d", i), repo)); err != nil {
			t.Fatal(err)
		}
		waitProbes(probes.Load() + 2)
	}
	if err := st.RemoveShard("s0"); err != nil {
		t.Fatal(err)
	}
	waitProbes(probes.Load() + 2)
	stop.Store(true)
	wg.Wait()

	if probes.Load() == 0 {
		t.Fatal("no probes ran")
	}
	if misses.Load() != 0 {
		t.Fatalf("%d of %d probes missed a live offer during rebalance", misses.Load(), probes.Load())
	}
	if got, _ := st.Import(ImportRequest{ServiceType: "BankTeller"}); len(got) != offers {
		t.Fatalf("settled offer count = %d", len(got))
	}
}

func TestShardedNesting(t *testing.T) {
	// A sharded trader satisfies Shard, so it can itself be a shard of a
	// bigger front-end.
	repo := repoWithBank(t)
	inner := NewSharded("inner", repo, 0)
	if err := inner.AddShard("i0", New("i0", repo)); err != nil {
		t.Fatal(err)
	}
	outer := NewSharded("outer", repo, 0)
	if err := outer.AddShard("inner", inner); err != nil {
		t.Fatal(err)
	}
	if _, err := outer.Export("BankTeller", refOf("BankTeller", 1), values.Null()); err != nil {
		t.Fatal(err)
	}
	got, err := outer.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil || len(got) != 1 {
		t.Fatalf("nested import = %v, %v", got, err)
	}
}
