package trader

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/constraint"
	"repro/internal/naming"
	"repro/internal/typerepo"
	"repro/internal/types"
	"repro/internal/values"
)

func tellerT() *types.Interface {
	return types.OpInterface("BankTeller",
		types.Op("Deposit",
			types.Params(types.P("a", values.TString()), types.P("d", values.TInt())),
			types.Term("OK", types.P("b", values.TInt())),
		),
	)
}

func managerT() *types.Interface {
	return types.Extend("BankManager", tellerT(),
		types.Op("CreateAccount",
			types.Params(types.P("c", values.TString())),
			types.Term("OK", types.P("a", values.TString())),
		),
	)
}

func printerT() *types.Interface {
	return types.OpInterface("Printer", types.Announce("Print", types.P("doc", values.TBytes())))
}

func repoWithBank(t *testing.T) typerepo.Repository {
	t.Helper()
	repo := typerepo.New()
	for _, it := range []*types.Interface{tellerT(), managerT(), printerT()} {
		if err := repo.RegisterInterface(it); err != nil {
			t.Fatal(err)
		}
	}
	return repo
}

func refOf(typeName string, nonce uint64) naming.InterfaceRef {
	return naming.InterfaceRef{
		ID: naming.InterfaceID{
			Object: naming.ObjectID{
				Cluster: naming.ClusterID{Capsule: naming.CapsuleID{Node: "n", Seq: 0}, Seq: 0},
				Seq:     0,
			},
			Seq:   0,
			Nonce: nonce,
		},
		TypeName: typeName,
		Endpoint: "sim://n",
	}
}

func rec(fs ...values.Field) values.Value { return values.Record(fs...) }

func TestExportImportBasic(t *testing.T) {
	tr := New("T1", repoWithBank(t))
	id, err := tr.Export("BankTeller", refOf("BankTeller", 1),
		rec(values.F("branch", values.Str("cbd")), values.F("queue", values.Int(3))))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	got, err := tr.Offer(id)
	if err != nil || got.ServiceType != "BankTeller" {
		t.Errorf("Offer = %+v, %v", got, err)
	}
	offers, err := tr.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil || len(offers) != 1 {
		t.Fatalf("Import = %v, %v", offers, err)
	}
	if offers[0].Ref.ID.Nonce != 1 {
		t.Errorf("ref = %+v", offers[0].Ref)
	}
}

func TestExportTypeChecking(t *testing.T) {
	tr := New("T1", repoWithBank(t))
	// Subtype substitutability: a BankManager interface may be offered as
	// a BankTeller service.
	if _, err := tr.Export("BankTeller", refOf("BankManager", 1), values.Null()); err != nil {
		t.Errorf("manager-as-teller export: %v", err)
	}
	// But not the reverse.
	if _, err := tr.Export("BankManager", refOf("BankTeller", 2), values.Null()); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("teller-as-manager export = %v", err)
	}
	// Unknown types are rejected.
	if _, err := tr.Export("Ghost", refOf("Ghost", 3), values.Null()); !errors.Is(err, ErrTypeUnknown) {
		t.Errorf("unknown service type = %v", err)
	}
	if _, err := tr.Export("BankTeller", refOf("Ghost", 4), values.Null()); !errors.Is(err, ErrTypeUnknown) {
		t.Errorf("unknown offered type = %v", err)
	}
	// Properties must be a record (or null).
	if _, err := tr.Export("BankTeller", refOf("BankTeller", 5), values.Int(3)); !errors.Is(err, ErrBadProps) {
		t.Errorf("non-record props = %v", err)
	}
}

func TestImportSubtypeMatching(t *testing.T) {
	tr := New("T1", repoWithBank(t))
	if _, err := tr.Export("BankTeller", refOf("BankTeller", 1), values.Null()); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Export("BankManager", refOf("BankManager", 2), values.Null()); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Export("Printer", refOf("Printer", 3), values.Null()); err != nil {
		t.Fatal(err)
	}
	// Importing BankTeller finds both the teller and the manager offer.
	offers, err := tr.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil || len(offers) != 2 {
		t.Fatalf("Import teller = %d offers, %v", len(offers), err)
	}
	// Importing BankManager finds only the manager.
	offers, err = tr.Import(ImportRequest{ServiceType: "BankManager"})
	if err != nil || len(offers) != 1 || offers[0].Ref.ID.Nonce != 2 {
		t.Fatalf("Import manager = %v, %v", offers, err)
	}
	// Unknown service type.
	if _, err := tr.Import(ImportRequest{ServiceType: "Ghost"}); !errors.Is(err, ErrTypeUnknown) {
		t.Errorf("unknown import = %v", err)
	}
	if _, err := tr.Import(ImportRequest{}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty import = %v", err)
	}
	if _, err := tr.Import(ImportRequest{ServiceType: "BankTeller", MaxHops: -1}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative hops = %v", err)
	}
}

func TestImportConstraints(t *testing.T) {
	tr := New("T1", repoWithBank(t))
	for i, queue := range []int64{5, 1, 9} {
		_, err := tr.Export("BankTeller", refOf("BankTeller", uint64(i+1)),
			rec(values.F("queue", values.Int(queue)), values.F("branch", values.Str(fmt.Sprintf("b%d", i)))))
		if err != nil {
			t.Fatal(err)
		}
	}
	offers, err := tr.Import(ImportRequest{ServiceType: "BankTeller", Constraint: "queue < 6"})
	if err != nil || len(offers) != 2 {
		t.Fatalf("constrained import = %d, %v", len(offers), err)
	}
	offers, err = tr.Import(ImportRequest{ServiceType: "BankTeller", Constraint: "branch == 'b1'"})
	if err != nil || len(offers) != 1 || offers[0].Ref.ID.Nonce != 2 {
		t.Fatalf("string constraint = %v, %v", offers, err)
	}
	// A constraint referencing a missing property matches nothing (not an error).
	offers, err = tr.Import(ImportRequest{ServiceType: "BankTeller", Constraint: "missing == 1"})
	if err != nil || len(offers) != 0 {
		t.Fatalf("missing-prop constraint = %v, %v", offers, err)
	}
	// A syntactically bad constraint is an error.
	if _, err := tr.Import(ImportRequest{ServiceType: "BankTeller", Constraint: "(("}); !errors.Is(err, constraint.ErrSyntax) {
		t.Errorf("bad constraint = %v", err)
	}
}

func TestImportPreferences(t *testing.T) {
	tr := New("T1", repoWithBank(t))
	for i, queue := range []int64{5, 1, 9} {
		if _, err := tr.Export("BankTeller", refOf("BankTeller", uint64(i+1)),
			rec(values.F("queue", values.Int(queue)))); err != nil {
			t.Fatal(err)
		}
	}
	// Min queue first.
	offers, err := tr.Import(ImportRequest{
		ServiceType: "BankTeller",
		Preference:  Preference{Kind: PrefMin, Expr: "queue"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if offers[0].Ref.ID.Nonce != 2 || offers[2].Ref.ID.Nonce != 3 {
		t.Errorf("min order = %v", nonces(offers))
	}
	// Max queue first, truncated.
	offers, err = tr.Import(ImportRequest{
		ServiceType: "BankTeller",
		Preference:  Preference{Kind: PrefMax, Expr: "queue"},
		MaxMatches:  1,
	})
	if err != nil || len(offers) != 1 || offers[0].Ref.ID.Nonce != 3 {
		t.Errorf("max truncated = %v, %v", nonces(offers), err)
	}
	// First preserves export order.
	offers, err = tr.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil {
		t.Fatal(err)
	}
	if offers[0].Ref.ID.Nonce != 1 || offers[1].Ref.ID.Nonce != 2 {
		t.Errorf("first order = %v", nonces(offers))
	}
	// Random returns all offers, just permuted.
	offers, err = tr.Import(ImportRequest{
		ServiceType: "BankTeller",
		Preference:  Preference{Kind: PrefRandom},
	})
	if err != nil || len(offers) != 3 {
		t.Errorf("random = %v, %v", nonces(offers), err)
	}
	// Bad preference expression is an error.
	if _, err := tr.Import(ImportRequest{
		ServiceType: "BankTeller",
		Preference:  Preference{Kind: PrefMax, Expr: "(("},
	}); !errors.Is(err, constraint.ErrSyntax) {
		t.Errorf("bad pref expr = %v", err)
	}
	// Offers that cannot be scored sort after those that can.
	if _, err := tr.Export("BankTeller", refOf("BankTeller", 4), values.Null()); err != nil {
		t.Fatal(err)
	}
	offers, err = tr.Import(ImportRequest{
		ServiceType: "BankTeller",
		Preference:  Preference{Kind: PrefMin, Expr: "queue"},
	})
	if err != nil || offers[len(offers)-1].Ref.ID.Nonce != 4 {
		t.Errorf("unscoreable ordering = %v, %v", nonces(offers), err)
	}
}

func nonces(offers []Offer) []uint64 {
	out := make([]uint64, len(offers))
	for i, o := range offers {
		out[i] = o.Ref.ID.Nonce
	}
	return out
}

func TestWithdrawAndModify(t *testing.T) {
	tr := New("T1", repoWithBank(t))
	id, err := tr.Export("BankTeller", refOf("BankTeller", 1), rec(values.F("queue", values.Int(9))))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Modify(id, rec(values.F("queue", values.Int(1)))); err != nil {
		t.Fatal(err)
	}
	offers, err := tr.Import(ImportRequest{ServiceType: "BankTeller", Constraint: "queue == 1"})
	if err != nil || len(offers) != 1 {
		t.Fatalf("after modify = %v, %v", offers, err)
	}
	if err := tr.Modify(id, values.Int(1)); !errors.Is(err, ErrBadProps) {
		t.Errorf("bad modify = %v", err)
	}
	if err := tr.Withdraw(id); err != nil {
		t.Fatal(err)
	}
	if err := tr.Withdraw(id); !errors.Is(err, ErrNoSuchOffer) {
		t.Errorf("double withdraw = %v", err)
	}
	if err := tr.Modify(id, values.Null()); !errors.Is(err, ErrNoSuchOffer) {
		t.Errorf("modify withdrawn = %v", err)
	}
	if _, err := tr.Offer(id); !errors.Is(err, ErrNoSuchOffer) {
		t.Errorf("offer withdrawn = %v", err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestFederation(t *testing.T) {
	repo := repoWithBank(t)
	t1 := New("T1", repo)
	t2 := New("T2", repo)
	t3 := New("T3", repo)
	// Chain T1 -> T2 -> T3.
	t1.Link("t2", t2)
	t2.Link("t3", t3)
	if _, err := t2.Export("BankTeller", refOf("BankTeller", 2), values.Null()); err != nil {
		t.Fatal(err)
	}
	if _, err := t3.Export("BankTeller", refOf("BankTeller", 3), values.Null()); err != nil {
		t.Fatal(err)
	}

	// Hops 0: nothing local.
	offers, err := t1.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil || len(offers) != 0 {
		t.Fatalf("hops 0 = %v, %v", nonces(offers), err)
	}
	// Hops 1: sees T2's offer only.
	offers, err = t1.Import(ImportRequest{ServiceType: "BankTeller", MaxHops: 1})
	if err != nil || len(offers) != 1 || offers[0].Ref.ID.Nonce != 2 {
		t.Fatalf("hops 1 = %v, %v", nonces(offers), err)
	}
	// Hops 2: sees both.
	offers, err = t1.Import(ImportRequest{ServiceType: "BankTeller", MaxHops: 2})
	if err != nil || len(offers) != 2 {
		t.Fatalf("hops 2 = %v, %v", nonces(offers), err)
	}
	if st := t1.Stats(); st.Federated == 0 {
		t.Errorf("federation stats = %+v", st)
	}
	if links := t1.Links(); len(links) != 1 || links[0] != "t2" {
		t.Errorf("links = %v", links)
	}
}

func TestFederationCycleAndDiamond(t *testing.T) {
	repo := repoWithBank(t)
	a := New("A", repo)
	b := New("B", repo)
	c := New("C", repo)
	d := New("D", repo)
	// Diamond with a cycle: A->B, A->C, B->D, C->D, D->A.
	a.Link("b", b)
	a.Link("c", c)
	b.Link("d", d)
	c.Link("d", d)
	d.Link("a", a)
	if _, err := d.Export("BankTeller", refOf("BankTeller", 9), values.Null()); err != nil {
		t.Fatal(err)
	}
	// The offer is reachable via two paths but must appear once.
	offers, err := a.Import(ImportRequest{ServiceType: "BankTeller", MaxHops: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 {
		t.Errorf("diamond dedup: %d offers, want 1", len(offers))
	}
}

func TestFederationPartnerFailureTolerated(t *testing.T) {
	repo := repoWithBank(t)
	a := New("A", repo)
	a.Link("dead", importerFunc(func(ImportRequest) ([]Offer, error) {
		return nil, errors.New("partner down")
	}))
	if _, err := a.Export("BankTeller", refOf("BankTeller", 1), values.Null()); err != nil {
		t.Fatal(err)
	}
	offers, err := a.Import(ImportRequest{ServiceType: "BankTeller", MaxHops: 1})
	if err != nil || len(offers) != 1 {
		t.Errorf("import with dead partner = %v, %v", nonces(offers), err)
	}
	a.Unlink("dead")
	if len(a.Links()) != 0 {
		t.Errorf("links after unlink = %v", a.Links())
	}
}

type importerFunc func(ImportRequest) ([]Offer, error)

func (f importerFunc) Import(req ImportRequest) ([]Offer, error) { return f(req) }

func TestStats(t *testing.T) {
	tr := New("T1", repoWithBank(t))
	if _, err := tr.Export("BankTeller", refOf("BankTeller", 1), values.Null()); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Import(ImportRequest{ServiceType: "BankTeller"}); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Exports != 1 || st.Imports != 1 || st.Matched != 1 || st.Considered != 1 {
		t.Errorf("stats = %+v", st)
	}
}
