package trader

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/values"
)

// TestLinkBreakerSkipsDeadPartner: after a federation link's breaker
// trips, subsequent imports skip it without invoking, and the result is
// flagged degraded with the skip counted.
func TestLinkBreakerSkipsDeadPartner(t *testing.T) {
	repo := repoWithBank(t)
	a := New("A", repo)
	var deadCalls atomic.Int64
	a.Link("dead", importerFunc(func(ImportRequest) ([]Offer, error) {
		deadCalls.Add(1)
		return nil, errors.New("partner down")
	}))
	a.SetLinkBreakers(policy.NewBreakerSet(policy.BreakerConfig{
		ConsecutiveFailures: 2, OpenFor: time.Hour,
	}))
	if _, err := a.Export("BankTeller", refOf("BankTeller", 1), values.Null()); err != nil {
		t.Fatal(err)
	}
	req := ImportRequest{ServiceType: "BankTeller", MaxHops: 1}

	// Two failing imports trip the breaker; the local offer still answers.
	for i := 0; i < 2; i++ {
		res, err := a.ImportEx(req)
		if err != nil || len(res.Offers) != 1 {
			t.Fatalf("import %d = %+v, %v", i, res, err)
		}
		if !res.Degraded || res.LinksFailed != 1 || res.LinksQueried != 1 {
			t.Fatalf("import %d metadata = %+v, want degraded with 1 failed link", i, res)
		}
	}
	// Third import skips the open circuit without touching the partner.
	res, err := a.ImportEx(req)
	if err != nil || len(res.Offers) != 1 {
		t.Fatalf("post-trip import = %+v, %v", res, err)
	}
	if !res.Degraded || res.LinksSkipped != 1 || res.LinksFailed != 0 {
		t.Fatalf("post-trip metadata = %+v, want 1 skipped link", res)
	}
	if got := deadCalls.Load(); got != 2 {
		t.Fatalf("dead link invoked %d times, want 2", got)
	}
	st := a.Stats()
	if st.LinksSkipped != 1 || st.LinksFailed != 2 {
		t.Fatalf("stats = %+v, want LinksSkipped=1 LinksFailed=2", st)
	}
}

// TestLinkBreakerRecovers: the half-open probe re-admits a healed link
// and the import view stops being degraded.
func TestLinkBreakerRecovers(t *testing.T) {
	repo := repoWithBank(t)
	a := New("A", repo)
	b := New("B", repo)
	if _, err := b.Export("BankTeller", refOf("BankTeller", 2), values.Null()); err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	down.Store(true)
	a.Link("b", importerFunc(func(req ImportRequest) ([]Offer, error) {
		if down.Load() {
			return nil, errors.New("partner down")
		}
		return b.Import(req)
	}))
	bs := policy.NewBreakerSet(policy.BreakerConfig{
		ConsecutiveFailures: 1, OpenFor: 5 * time.Millisecond,
	})
	a.SetLinkBreakers(bs)
	req := ImportRequest{ServiceType: "BankTeller", MaxHops: 1}

	if res, err := a.ImportEx(req); err != nil || !res.Degraded {
		t.Fatalf("down import = %+v, %v", res, err)
	}
	down.Store(false)
	time.Sleep(10 * time.Millisecond)
	// The cooldown elapsed: this import is the half-open probe, succeeds,
	// re-closes the breaker, and the remote offer is back in the view.
	res, err := a.ImportEx(req)
	if err != nil || len(res.Offers) != 1 || res.Degraded {
		t.Fatalf("healed import = %+v, %v", res, err)
	}
	if bs.For("b").State() != policy.Closed {
		t.Fatal("link breaker did not re-close after healed probe")
	}
}

// TestLinkBreakerSharedAcrossImports: all imports share the per-link
// breaker, so one import tripping it shields every later caller.
func TestLinkBreakerSharedAcrossImports(t *testing.T) {
	repo := repoWithBank(t)
	a := New("A", repo)
	var calls atomic.Int64
	a.Link("dead", importerFunc(func(ImportRequest) ([]Offer, error) {
		calls.Add(1)
		return nil, errors.New("down")
	}))
	a.SetLinkBreakers(policy.NewBreakerSet(policy.BreakerConfig{
		ConsecutiveFailures: 1, OpenFor: time.Hour,
	}))
	req := ImportRequest{ServiceType: "BankTeller", MaxHops: 1}
	for i := 0; i < 10; i++ {
		if _, err := a.ImportEx(req); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("dead link invoked %d times across 10 imports, want 1", got)
	}
}
