package trader

import (
	"sync"
	"testing"

	"repro/internal/types"
	"repro/internal/values"
)

// TestClosureCacheInvalidation checks the two ways the memoised subtype
// closure can go stale: a type registered in the repository after imports
// have already been answered, and a brand-new bucket appearing when an
// offer of a previously unseen service type is exported.
func TestClosureCacheInvalidation(t *testing.T) {
	repo := repoWithBank(t)
	tr := New("T1", repo)

	if _, err := tr.Export("BankTeller", refOf("BankTeller", 1), values.Null()); err != nil {
		t.Fatal(err)
	}
	offers, err := tr.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil || len(offers) != 1 {
		t.Fatalf("initial import = %v, %v", offers, err)
	}

	// A manager offer creates a new bucket whose type substitutes for
	// BankTeller; the cached closure for BankTeller must not hide it.
	if _, err := tr.Export("BankManager", refOf("BankManager", 2), values.Null()); err != nil {
		t.Fatal(err)
	}
	offers, err = tr.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil || len(offers) != 2 {
		t.Fatalf("after manager export = %v, %v", offers, err)
	}

	// Register a type that did not exist when the closure was first built,
	// export under it, and import the supertype again: the offer must appear.
	plus := types.Extend("TellerPlus", tellerT(),
		types.Op("Audit",
			types.Params(types.P("a", values.TString())),
			types.Term("OK", types.P("r", values.TInt())),
		),
	)
	if err := repo.RegisterInterface(plus); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Export("TellerPlus", refOf("TellerPlus", 3), values.Null()); err != nil {
		t.Fatal(err)
	}
	offers, err = tr.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil || len(offers) != 3 {
		t.Fatalf("after late type registration = %v, %v", offers, err)
	}
	// Export order survives the multi-bucket merge.
	for i, o := range offers {
		if want := uint64(i + 1); o.Ref.ID.Nonce != want {
			t.Errorf("offer %d nonce = %d, want %d", i, o.Ref.ID.Nonce, want)
		}
	}
	// The narrower import still sees only its own bucket.
	offers, err = tr.Import(ImportRequest{ServiceType: "TellerPlus"})
	if err != nil || len(offers) != 1 {
		t.Fatalf("TellerPlus import = %v, %v", offers, err)
	}
}

// TestConcurrentExportImportWithdraw hammers one trader from exporters,
// importers and withdrawers at once; the atomics and the bucket index must
// stay coherent under the race detector.
func TestConcurrentExportImportWithdraw(t *testing.T) {
	const (
		exporters = 4
		perWorker = 30
		importers = 4
	)
	tr := New("T1", repoWithBank(t))
	ids := make(chan string, exporters*perWorker)

	var wg sync.WaitGroup
	for w := 0; w < exporters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				st := "BankTeller"
				if j%3 == 0 {
					st = "BankManager"
				}
				id, err := tr.Export(st, refOf(st, uint64(w*perWorker+j)),
					rec(values.F("queue", values.Int(int64(j%10)))))
				if err != nil {
					t.Errorf("Export: %v", err)
					return
				}
				ids <- id
			}
		}(w)
	}
	for w := 0; w < importers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if _, err := tr.Import(ImportRequest{ServiceType: "BankTeller", Constraint: "queue < 5"}); err != nil {
					t.Errorf("Import: %v", err)
					return
				}
			}
		}()
	}
	// Withdraw half of what the exporters produce, concurrently with them.
	wg.Add(1)
	withdrawn := 0
	go func() {
		defer wg.Done()
		for i := 0; i < exporters*perWorker/2; i++ {
			if err := tr.Withdraw(<-ids); err != nil {
				t.Errorf("Withdraw: %v", err)
				return
			}
			withdrawn++
		}
	}()
	wg.Wait()

	if got, want := tr.Len(), exporters*perWorker-withdrawn; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	st := tr.Stats()
	if st.Exports != exporters*perWorker {
		t.Errorf("Exports = %d, want %d", st.Exports, exporters*perWorker)
	}
	if st.Withdraws != uint64(withdrawn) {
		t.Errorf("Withdraws = %d, want %d", st.Withdraws, withdrawn)
	}
	if st.Imports != importers*perWorker {
		t.Errorf("Imports = %d, want %d", st.Imports, importers*perWorker)
	}
	// The survivors must all still be importable.
	offers, err := tr.Import(ImportRequest{ServiceType: "BankTeller"})
	if err != nil || len(offers) != tr.Len() {
		t.Errorf("final import = %d offers, %v; Len = %d", len(offers), err, tr.Len())
	}
}

// TestConcurrentFederationDedup arranges a diamond — the origin links to
// two middlemen which both link to one shared trader — and imports through
// it concurrently. The shared trader's offers arrive via both middlemen
// and must be deduplicated at the origin, on every one of the concurrent
// imports.
func TestConcurrentFederationDedup(t *testing.T) {
	repo := repoWithBank(t)
	origin := New("origin", repo)
	mid1 := New("mid1", repo)
	mid2 := New("mid2", repo)
	shared := New("shared", repo)

	nonce := uint64(0)
	exportN := func(tr *Trader, n int) {
		for i := 0; i < n; i++ {
			nonce++
			if _, err := tr.Export("BankTeller", refOf("BankTeller", nonce), values.Null()); err != nil {
				t.Fatal(err)
			}
		}
	}
	exportN(origin, 1)
	exportN(mid1, 2)
	exportN(mid2, 2)
	exportN(shared, 3)

	origin.Link("m1", mid1)
	origin.Link("m2", mid2)
	mid1.Link("s", shared)
	mid2.Link("s", shared)

	const want = 1 + 2 + 2 + 3 // every offer exactly once despite the diamond
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				offers, err := origin.Import(ImportRequest{ServiceType: "BankTeller", MaxHops: 2})
				if err != nil {
					t.Errorf("Import: %v", err)
					return
				}
				if len(offers) != want {
					t.Errorf("Import = %d offers, want %d", len(offers), want)
					return
				}
				seen := map[string]bool{}
				for _, o := range offers {
					if seen[o.ID] {
						t.Errorf("offer %s duplicated", o.ID)
						return
					}
					seen[o.ID] = true
				}
			}
		}()
	}
	wg.Wait()

	if st := origin.Stats(); st.Federated != 6*10*2 {
		t.Errorf("origin Federated = %d, want %d", st.Federated, 6*10*2)
	}
}
