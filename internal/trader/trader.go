// Package trader implements the ODP Trading function (Section 8.3.2 of
// the tutorial): "a dating service for objects".
//
// Server objects advertise services by exporting offers — an interface
// reference plus a service type and a property list. Client objects import
// by service type and a constraint over the properties (package
// constraint); matching uses the type repository's substitutability
// relation, so an offer of a subtype satisfies an import of its supertype
// (the BankManager-for-BankTeller rule of Figure 3). Traders federate
// through links, giving hop-bounded import propagation across trading
// domains.
//
// The offer store is indexed by advertised service type: an import scans
// only the buckets whose type substitutes for the requested one, and the
// set of such buckets (the subtype closure of the request) is memoised
// against the type repository's generation, so the common import touches
// a handful of map lookups plus the matching bucket — not the full offer
// population. Federation links are queried concurrently and merged,
// deduplicated, at the origin.
package trader

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/constraint"
	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/policy"
	"repro/internal/typerepo"
	"repro/internal/values"
)

// Trader error sentinels.
var (
	ErrNoSuchOffer  = errors.New("trader: no such offer")
	ErrTypeUnknown  = errors.New("trader: service type not in type repository")
	ErrTypeMismatch = errors.New("trader: offered interface does not substitute for service type")
	ErrBadRequest   = errors.New("trader: invalid import request")
	ErrBadProps     = errors.New("trader: offer properties must be a record")
)

// maxLinkFanout bounds the goroutines a single import spawns to query
// federation links.
const maxLinkFanout = 16

// Offer is one service advertisement held by a trader.
type Offer struct {
	ID          string              // unique within the federation: "<trader>/<seq>"
	ServiceType string              // advertised service type name
	Ref         naming.InterfaceRef // the offered interface
	Properties  values.Value        // record of service attributes
}

// PreferenceKind orders the matched offers of an import.
type PreferenceKind int

// The preference rules: first (export order), random, max/min of a
// numeric expression over the offer properties.
const (
	PrefFirst PreferenceKind = iota
	PrefRandom
	PrefMax
	PrefMin
)

// Preference selects among matching offers.
type Preference struct {
	Kind PreferenceKind
	Expr string // for PrefMax/PrefMin: numeric expression over properties
}

// ImportRequest is a client's service request.
type ImportRequest struct {
	// ServiceType names the wanted interface type. Offers whose advertised
	// type substitutes for it (per the type repository) match.
	ServiceType string
	// Constraint filters offers by their properties ("" = all).
	Constraint string
	// Preference orders the matches.
	Preference Preference
	// MaxMatches bounds the result (0 = all).
	MaxMatches int
	// MaxHops bounds federation traversal: 0 searches only this trader.
	MaxHops int
}

// Importer is anything that can answer an import — a local trader or a
// proxy to a remote one. Federation links hold Importers.
type Importer interface {
	Import(req ImportRequest) ([]Offer, error)
}

// Stats counts trading activity.
type Stats struct {
	Exports      uint64
	Withdraws    uint64
	Imports      uint64
	Matched      uint64
	Federated    uint64 // imports forwarded to linked traders
	Considered   uint64 // offers examined during matching
	LinksSkipped uint64 // federation links passed over with an open circuit
	LinksFailed  uint64 // federation links that answered an import with an error
}

// ImportResult is an import's answer plus its degradation metadata: when
// federation links were skipped (open circuit) or failed, the offers are
// still the best available but the view is partial.
type ImportResult struct {
	Offers []Offer
	// Degraded is set when at least one federation link did not
	// contribute: its offers may be missing from the result.
	Degraded     bool
	LinksQueried int // links consulted this import
	LinksSkipped int // links passed over because their circuit was open
	LinksFailed  int // links that returned an error
}

// entry is one stored offer plus its export sequence number, which
// recovers the global export order when matches from several buckets are
// merged.
type entry struct {
	offer *Offer
	seq   uint64
}

// Trader is a repository of service offers with type-checked matching and
// hop-bounded federation.
type Trader struct {
	name  string
	types typerepo.Repository

	mu      sync.RWMutex
	offers  map[string]*entry   // offer id -> entry
	buckets map[string][]*entry // advertised service type -> entries in export order
	links   map[string]Importer
	nextID  uint64
	// closure memoises, per requested service type, which bucket types
	// substitute for it. It is valid while closureGen matches the type
	// repository's generation; Export clears it when a brand-new bucket
	// type appears.
	closure    map[string][]string
	closureGen uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	exports      atomic.Uint64
	withdrs      atomic.Uint64
	imports      atomic.Uint64
	matched      atomic.Uint64
	feder        atomic.Uint64
	consid       atomic.Uint64
	linksSkipped atomic.Uint64
	linksFailed  atomic.Uint64

	insp     atomic.Pointer[mgmt.TraderInstruments]
	breakers atomic.Pointer[policy.BreakerSet]
}

// Instrument mirrors the trader's import activity into a management
// bundle. Safe to call at any time; nil detaches.
func (t *Trader) Instrument(ins *mgmt.TraderInstruments) {
	t.insp.Store(ins)
}

// New creates a trader backed by a type repository. The name prefixes
// offer identifiers and must be unique within a federation.
func New(name string, repo typerepo.Repository) *Trader {
	seed := int64(1)
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	return &Trader{
		name:    name,
		types:   repo,
		offers:  make(map[string]*entry),
		buckets: make(map[string][]*entry),
		links:   make(map[string]Importer),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Name returns the trader's name.
func (t *Trader) Name() string { return t.name }

// Export advertises a service: the interface in ref, offered as
// serviceType, with the given properties (a record value, or Null for
// none). The advertised type and the interface's actual type must both be
// registered, and the actual type must substitute for the advertised one.
func (t *Trader) Export(serviceType string, ref naming.InterfaceRef, props values.Value) (string, error) {
	if props.IsNull() {
		props = values.Record()
	}
	if props.Kind() != values.KindRecord {
		return "", fmt.Errorf("%w: got %v", ErrBadProps, props.Kind())
	}
	if _, err := t.types.LookupInterface(serviceType); err != nil {
		return "", fmt.Errorf("%w: %q", ErrTypeUnknown, serviceType)
	}
	if ref.TypeName != serviceType {
		ok, err := t.types.IsSubtype(ref.TypeName, serviceType)
		if err != nil {
			return "", fmt.Errorf("%w: %q", ErrTypeUnknown, ref.TypeName)
		}
		if !ok {
			return "", fmt.Errorf("%w: %q as %q", ErrTypeMismatch, ref.TypeName, serviceType)
		}
	}
	t.mu.Lock()
	t.nextID++
	id := fmt.Sprintf("%s/%d", t.name, t.nextID)
	e := &entry{
		offer: &Offer{ID: id, ServiceType: serviceType, Ref: ref, Properties: props},
		seq:   t.nextID,
	}
	t.offers[id] = e
	if _, known := t.buckets[serviceType]; !known {
		// A brand-new bucket type may belong to closures computed before
		// it existed; recompute them lazily.
		t.closure = nil
	}
	t.buckets[serviceType] = append(t.buckets[serviceType], e)
	t.mu.Unlock()
	t.exports.Add(1)
	return id, nil
}

// Install inserts an offer under its existing identity. Where Export
// mints a fresh "<trader>/<seq>" id, Install preserves the one the offer
// was born with — the operation shard rebalancing needs, so an offer
// migrated between shard traders keeps the id clients hold. Installing an
// id that is already present replaces that offer (migration retries are
// idempotent). The same type checks as Export apply.
func (t *Trader) Install(o Offer) error {
	if o.ID == "" {
		return fmt.Errorf("%w: install needs an offer id", ErrBadRequest)
	}
	if o.Properties.IsNull() {
		o.Properties = values.Record()
	}
	if o.Properties.Kind() != values.KindRecord {
		return fmt.Errorf("%w: got %v", ErrBadProps, o.Properties.Kind())
	}
	if _, err := t.types.LookupInterface(o.ServiceType); err != nil {
		return fmt.Errorf("%w: %q", ErrTypeUnknown, o.ServiceType)
	}
	if o.Ref.TypeName != o.ServiceType {
		ok, err := t.types.IsSubtype(o.Ref.TypeName, o.ServiceType)
		if err != nil {
			return fmt.Errorf("%w: %q", ErrTypeUnknown, o.Ref.TypeName)
		}
		if !ok {
			return fmt.Errorf("%w: %q as %q", ErrTypeMismatch, o.Ref.TypeName, o.ServiceType)
		}
	}
	t.mu.Lock()
	if old, ok := t.offers[o.ID]; ok {
		t.removeLocked(old)
	}
	t.nextID++
	e := &entry{offer: &Offer{ID: o.ID, ServiceType: o.ServiceType, Ref: o.Ref, Properties: o.Properties}, seq: t.nextID}
	t.offers[o.ID] = e
	if _, known := t.buckets[o.ServiceType]; !known {
		t.closure = nil
	}
	t.buckets[o.ServiceType] = append(t.buckets[o.ServiceType], e)
	t.mu.Unlock()
	t.exports.Add(1)
	return nil
}

// removeLocked unlinks an entry from the offer map and its bucket. Caller
// holds t.mu.
func (t *Trader) removeLocked(e *entry) {
	delete(t.offers, e.offer.ID)
	bucket := t.buckets[e.offer.ServiceType]
	for i, be := range bucket {
		if be == e {
			copy(bucket[i:], bucket[i+1:])
			bucket[len(bucket)-1] = nil // clear the vacated slot
			t.buckets[e.offer.ServiceType] = bucket[:len(bucket)-1]
			break
		}
	}
}

// Withdraw removes an offer.
func (t *Trader) Withdraw(offerID string) error {
	t.mu.Lock()
	e, ok := t.offers[offerID]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchOffer, offerID)
	}
	t.removeLocked(e)
	t.mu.Unlock()
	t.withdrs.Add(1)
	return nil
}

// Modify replaces an offer's properties.
func (t *Trader) Modify(offerID string, props values.Value) error {
	if props.IsNull() {
		props = values.Record()
	}
	if props.Kind() != values.KindRecord {
		return fmt.Errorf("%w: got %v", ErrBadProps, props.Kind())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.offers[offerID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchOffer, offerID)
	}
	e.offer.Properties = props
	return nil
}

// Offer returns a copy of the identified offer.
func (t *Trader) Offer(offerID string) (Offer, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.offers[offerID]
	if !ok {
		return Offer{}, fmt.Errorf("%w: %q", ErrNoSuchOffer, offerID)
	}
	return *e.offer, nil
}

// Len returns the number of offers held.
func (t *Trader) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.offers)
}

// Link federates this trader with another (or with a proxy to a remote
// one). Imports with MaxHops > 0 propagate along links.
func (t *Trader) Link(name string, target Importer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links[name] = target
}

// Unlink removes a federation link.
func (t *Trader) Unlink(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.links, name)
}

// Links returns the sorted names of federation links.
func (t *Trader) Links() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.links))
	for n := range t.links {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetLinkBreakers attaches (nil detaches) a circuit-breaker set over the
// federation links, keyed by link name: imports skip links whose breaker
// is open instead of waiting out their failure, returning a partial
// result marked Degraded. Sharing one set across traders makes a dead
// partner trip once for the whole federation client.
func (t *Trader) SetLinkBreakers(bs *policy.BreakerSet) {
	t.breakers.Store(bs)
}

// Import finds offers matching the request: correct (sub)type, constraint
// satisfied, ordered by the preference, truncated to MaxMatches, searching
// linked traders up to MaxHops away. Federation links are queried
// concurrently, so a federated import costs the slowest link, not the sum
// of all links. Degradation metadata is discarded; use ImportEx to see it.
func (t *Trader) Import(req ImportRequest) ([]Offer, error) {
	res, err := t.ImportEx(req)
	return res.Offers, err
}

// ImportEx is Import plus degradation metadata: which federation links
// were consulted, skipped on an open circuit, or failed, and whether the
// result is therefore partial.
func (t *Trader) ImportEx(req ImportRequest) (ImportResult, error) {
	if req.ServiceType == "" {
		return ImportResult{}, fmt.Errorf("%w: empty service type", ErrBadRequest)
	}
	if req.MaxMatches < 0 || req.MaxHops < 0 {
		return ImportResult{}, fmt.Errorf("%w: negative bounds", ErrBadRequest)
	}
	expr, err := constraint.Parse(req.Constraint)
	if err != nil {
		return ImportResult{}, err
	}
	var prefExpr *constraint.Expr
	if req.Preference.Kind == PrefMax || req.Preference.Kind == PrefMin {
		prefExpr, err = constraint.Parse(req.Preference.Expr)
		if err != nil {
			return ImportResult{}, err
		}
	}
	if _, err := t.types.LookupInterface(req.ServiceType); err != nil {
		return ImportResult{}, fmt.Errorf("%w: %q", ErrTypeUnknown, req.ServiceType)
	}

	t.imports.Add(1)
	ins := t.insp.Load()
	var start time.Time
	if ins != nil {
		ins.Imports.Inc()
		start = time.Now()
	}

	matches, err := t.localMatches(req.ServiceType, expr)
	if err != nil {
		return ImportResult{}, err
	}
	var res ImportResult

	// Federation: propagate with a decremented hop budget — concurrently
	// across links — and merge at the origin, deduplicating by offer id
	// (diamond topologies would otherwise duplicate).
	if req.MaxHops > 0 {
		t.mu.RLock()
		names := make([]string, 0, len(t.links))
		for n := range t.links {
			names = append(names, n)
		}
		sort.Strings(names) // deterministic merge order
		linked := make([]Importer, len(names))
		for i, n := range names {
			linked[i] = t.links[n]
		}
		t.mu.RUnlock()
		if len(linked) > 0 {
			sub := req
			sub.MaxHops = req.MaxHops - 1
			sub.MaxMatches = 0 // collect everything; order and truncate at the origin
			sub.Preference = Preference{}
			t.feder.Add(uint64(len(linked)))
			remote, errs := t.queryLinks(names, linked, sub)
			res.LinksQueried = len(linked)
			for _, lerr := range errs {
				switch {
				case lerr == nil:
				case errors.Is(lerr, policy.ErrCircuitOpen):
					res.LinksSkipped++
				default:
					res.LinksFailed++
				}
			}
			if res.LinksSkipped > 0 {
				t.linksSkipped.Add(uint64(res.LinksSkipped))
			}
			if res.LinksFailed > 0 {
				t.linksFailed.Add(uint64(res.LinksFailed))
			}
			res.Degraded = res.LinksSkipped+res.LinksFailed > 0
			seen := make(map[string]bool, len(matches))
			for _, o := range matches {
				seen[o.ID] = true
			}
			for _, batch := range remote {
				for _, o := range batch {
					if !seen[o.ID] {
						seen[o.ID] = true
						matches = append(matches, o)
					}
				}
			}
		}
	}

	if err := t.orderMatches(matches, req.Preference, prefExpr); err != nil {
		return ImportResult{}, err
	}
	if req.MaxMatches > 0 && len(matches) > req.MaxMatches {
		matches = matches[:req.MaxMatches]
	}
	t.matched.Add(uint64(len(matches)))
	if ins != nil {
		ins.Matched.Add(uint64(len(matches)))
		ins.ImportLatency.ObserveDuration(time.Since(start))
	}
	res.Offers = matches
	return res, nil
}

// queryLinks imports from every linked trader concurrently (bounded at
// maxLinkFanout goroutines) and returns the per-link results and errors,
// index-aligned with linked. A dead federation partner must not fail the
// import: its error is reported for the degradation metadata, its batch
// stays nil, and its circuit breaker (when attached) records the outcome
// so the next import skips it without waiting.
func (t *Trader) queryLinks(names []string, linked []Importer, sub ImportRequest) ([][]Offer, []error) {
	results := make([][]Offer, len(linked))
	errs := make([]error, len(linked))
	bs := t.breakers.Load()
	queryOne := func(i int) {
		var br *policy.Breaker
		if bs != nil {
			br = bs.For(names[i])
			if ok, _ := br.Allow(); !ok {
				errs[i] = fmt.Errorf("%w: federation link %s", policy.ErrCircuitOpen, names[i])
				return
			}
		}
		results[i], errs[i] = linked[i].Import(sub)
		if br != nil {
			br.Record(errs[i] == nil)
		}
	}
	if len(linked) == 1 {
		queryOne(0)
		return results, errs
	}
	workers := len(linked)
	if workers > maxLinkFanout {
		workers = maxLinkFanout
	}
	var cursor atomic.Int64
	work := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(linked) {
				return
			}
			queryOne(i)
		}
	}
	// The calling goroutine is one of the workers, so a fan-out of width w
	// spawns only w-1 goroutines.
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	return results, errs
}

// candidateTypes returns the bucket types whose offers can satisfy an
// import of serviceType — the subtype closure of the request over the
// types currently advertised. The result is memoised until the type
// repository's generation moves (new type facts) or a new bucket type
// appears (Export clears the cache).
func (t *Trader) candidateTypes(serviceType string) []string {
	gen := t.types.Gen()
	t.mu.RLock()
	if t.closureGen == gen && t.closure != nil {
		if cands, ok := t.closure[serviceType]; ok {
			t.mu.RUnlock()
			return cands
		}
	}
	keys := make([]string, 0, len(t.buckets))
	for bt := range t.buckets {
		keys = append(keys, bt)
	}
	t.mu.RUnlock()

	sort.Strings(keys)
	cands := make([]string, 0, 1)
	for _, bt := range keys {
		if bt == serviceType {
			cands = append(cands, bt)
			continue
		}
		if ok, err := t.types.IsSubtype(bt, serviceType); err == nil && ok {
			cands = append(cands, bt)
		}
	}

	t.mu.Lock()
	if t.closureGen != gen || t.closure == nil {
		t.closure = make(map[string][]string)
		t.closureGen = gen
	}
	t.closure[serviceType] = cands
	t.mu.Unlock()
	return cands
}

// localMatches scans only the candidate buckets for serviceType. The scan
// runs under the read lock (so Modify cannot race the constraint
// evaluation; concurrent imports still proceed in parallel) and copies out
// only the offers that match.
func (t *Trader) localMatches(serviceType string, expr *constraint.Expr) ([]Offer, error) {
	cands := t.candidateTypes(serviceType)
	if len(cands) == 0 {
		return nil, nil
	}
	var out []Offer
	var seqs []uint64
	considered := 0
	t.mu.RLock()
	for _, bt := range cands {
		for _, e := range t.buckets[bt] {
			considered++
			ok, err := expr.Matches(e.offer.Properties)
			if err != nil {
				// A constraint referencing properties this offer lacks simply
				// does not match it; true evaluation errors (type abuse) do
				// the same rather than failing the whole import.
				continue
			}
			if ok {
				out = append(out, *e.offer)
				seqs = append(seqs, e.seq)
			}
		}
	}
	t.mu.RUnlock()

	t.consid.Add(uint64(considered))
	if len(cands) > 1 {
		// Matches from several buckets: restore the global export order
		// (a single bucket is already in export order).
		sort.Sort(bySeq{out, seqs})
	}
	return out, nil
}

// bySeq sorts matched offers by their export sequence numbers.
type bySeq struct {
	offers []Offer
	seqs   []uint64
}

func (s bySeq) Len() int           { return len(s.offers) }
func (s bySeq) Less(i, j int) bool { return s.seqs[i] < s.seqs[j] }
func (s bySeq) Swap(i, j int) {
	s.offers[i], s.offers[j] = s.offers[j], s.offers[i]
	s.seqs[i], s.seqs[j] = s.seqs[j], s.seqs[i]
}

func (t *Trader) orderMatches(matches []Offer, pref Preference, prefExpr *constraint.Expr) error {
	return orderOffers(matches, pref, prefExpr, &t.rngMu, t.rng)
}

// orderOffers applies a preference ordering in place. Shared by the local
// trader and the sharded front-end (which merges matches from several
// shards and must re-order at the origin).
func orderOffers(matches []Offer, pref Preference, prefExpr *constraint.Expr, rngMu *sync.Mutex, rng *rand.Rand) error {
	switch pref.Kind {
	case PrefFirst:
		// already in export order (local first, then federation arrivals)
		return nil
	case PrefRandom:
		rngMu.Lock()
		rng.Shuffle(len(matches), func(i, j int) {
			matches[i], matches[j] = matches[j], matches[i]
		})
		rngMu.Unlock()
		return nil
	case PrefMax, PrefMin:
		type scored struct {
			offer Offer
			score float64
			ok    bool
		}
		rows := make([]scored, len(matches))
		for i, o := range matches {
			rows[i] = scored{offer: o}
			v, err := prefExpr.Eval(o.Properties)
			if err != nil {
				continue // unscoreable offers sort last
			}
			rows[i].score, rows[i].ok = constraint.AsFloat(v)
		}
		sort.SliceStable(rows, func(i, j int) bool {
			si, sj := rows[i], rows[j]
			if si.ok != sj.ok {
				return si.ok // scoreable offers ahead of unscoreable
			}
			if pref.Kind == PrefMax {
				return si.score > sj.score
			}
			return si.score < sj.score
		})
		for i, r := range rows {
			matches[i] = r.offer
		}
		return nil
	}
	return fmt.Errorf("%w: unknown preference %d", ErrBadRequest, pref.Kind)
}

// Stats returns a snapshot of trading counters.
func (t *Trader) Stats() Stats {
	return Stats{
		Exports:      t.exports.Load(),
		Withdraws:    t.withdrs.Load(),
		Imports:      t.imports.Load(),
		Matched:      t.matched.Load(),
		Federated:    t.feder.Load(),
		Considered:   t.consid.Load(),
		LinksSkipped: t.linksSkipped.Load(),
		LinksFailed:  t.linksFailed.Load(),
	}
}
