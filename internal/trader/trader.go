// Package trader implements the ODP Trading function (Section 8.3.2 of
// the tutorial): "a dating service for objects".
//
// Server objects advertise services by exporting offers — an interface
// reference plus a service type and a property list. Client objects import
// by service type and a constraint over the properties (package
// constraint); matching uses the type repository's substitutability
// relation, so an offer of a subtype satisfies an import of its supertype
// (the BankManager-for-BankTeller rule of Figure 3). Traders federate
// through links, giving hop-bounded import propagation across trading
// domains.
package trader

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/constraint"
	"repro/internal/naming"
	"repro/internal/typerepo"
	"repro/internal/values"
)

// Trader error sentinels.
var (
	ErrNoSuchOffer  = errors.New("trader: no such offer")
	ErrTypeUnknown  = errors.New("trader: service type not in type repository")
	ErrTypeMismatch = errors.New("trader: offered interface does not substitute for service type")
	ErrBadRequest   = errors.New("trader: invalid import request")
	ErrBadProps     = errors.New("trader: offer properties must be a record")
)

// Offer is one service advertisement held by a trader.
type Offer struct {
	ID          string              // unique within the federation: "<trader>/<seq>"
	ServiceType string              // advertised service type name
	Ref         naming.InterfaceRef // the offered interface
	Properties  values.Value        // record of service attributes
}

// PreferenceKind orders the matched offers of an import.
type PreferenceKind int

// The preference rules: first (export order), random, max/min of a
// numeric expression over the offer properties.
const (
	PrefFirst PreferenceKind = iota
	PrefRandom
	PrefMax
	PrefMin
)

// Preference selects among matching offers.
type Preference struct {
	Kind PreferenceKind
	Expr string // for PrefMax/PrefMin: numeric expression over properties
}

// ImportRequest is a client's service request.
type ImportRequest struct {
	// ServiceType names the wanted interface type. Offers whose advertised
	// type substitutes for it (per the type repository) match.
	ServiceType string
	// Constraint filters offers by their properties ("" = all).
	Constraint string
	// Preference orders the matches.
	Preference Preference
	// MaxMatches bounds the result (0 = all).
	MaxMatches int
	// MaxHops bounds federation traversal: 0 searches only this trader.
	MaxHops int
}

// Importer is anything that can answer an import — a local trader or a
// proxy to a remote one. Federation links hold Importers.
type Importer interface {
	Import(req ImportRequest) ([]Offer, error)
}

// Stats counts trading activity.
type Stats struct {
	Exports    uint64
	Withdraws  uint64
	Imports    uint64
	Matched    uint64
	Federated  uint64 // imports forwarded to linked traders
	Considered uint64 // offers examined during matching
}

// Trader is a repository of service offers with type-checked matching and
// hop-bounded federation.
type Trader struct {
	name  string
	types *typerepo.Repository

	mu      sync.RWMutex
	offers  map[string]*Offer
	order   []string // export order, for PrefFirst and deterministic scans
	links   map[string]Importer
	nextID  uint64
	rng     *rand.Rand
	exports uint64
	withdrs uint64
	imports uint64
	matched uint64
	feder   uint64
	consid  uint64
}

// New creates a trader backed by a type repository. The name prefixes
// offer identifiers and must be unique within a federation.
func New(name string, repo *typerepo.Repository) *Trader {
	seed := int64(1)
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	return &Trader{
		name:   name,
		types:  repo,
		offers: make(map[string]*Offer),
		links:  make(map[string]Importer),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Name returns the trader's name.
func (t *Trader) Name() string { return t.name }

// Export advertises a service: the interface in ref, offered as
// serviceType, with the given properties (a record value, or Null for
// none). The advertised type and the interface's actual type must both be
// registered, and the actual type must substitute for the advertised one.
func (t *Trader) Export(serviceType string, ref naming.InterfaceRef, props values.Value) (string, error) {
	if props.IsNull() {
		props = values.Record()
	}
	if props.Kind() != values.KindRecord {
		return "", fmt.Errorf("%w: got %v", ErrBadProps, props.Kind())
	}
	if _, err := t.types.LookupInterface(serviceType); err != nil {
		return "", fmt.Errorf("%w: %q", ErrTypeUnknown, serviceType)
	}
	if ref.TypeName != serviceType {
		ok, err := t.types.IsSubtype(ref.TypeName, serviceType)
		if err != nil {
			return "", fmt.Errorf("%w: %q", ErrTypeUnknown, ref.TypeName)
		}
		if !ok {
			return "", fmt.Errorf("%w: %q as %q", ErrTypeMismatch, ref.TypeName, serviceType)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := fmt.Sprintf("%s/%d", t.name, t.nextID)
	t.offers[id] = &Offer{ID: id, ServiceType: serviceType, Ref: ref, Properties: props}
	t.order = append(t.order, id)
	t.exports++
	return id, nil
}

// Withdraw removes an offer.
func (t *Trader) Withdraw(offerID string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.offers[offerID]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchOffer, offerID)
	}
	delete(t.offers, offerID)
	for i, id := range t.order {
		if id == offerID {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	t.withdrs++
	return nil
}

// Modify replaces an offer's properties.
func (t *Trader) Modify(offerID string, props values.Value) error {
	if props.IsNull() {
		props = values.Record()
	}
	if props.Kind() != values.KindRecord {
		return fmt.Errorf("%w: got %v", ErrBadProps, props.Kind())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	o, ok := t.offers[offerID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchOffer, offerID)
	}
	o.Properties = props
	return nil
}

// Offer returns a copy of the identified offer.
func (t *Trader) Offer(offerID string) (Offer, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	o, ok := t.offers[offerID]
	if !ok {
		return Offer{}, fmt.Errorf("%w: %q", ErrNoSuchOffer, offerID)
	}
	return *o, nil
}

// Len returns the number of offers held.
func (t *Trader) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.offers)
}

// Link federates this trader with another (or with a proxy to a remote
// one). Imports with MaxHops > 0 propagate along links.
func (t *Trader) Link(name string, target Importer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links[name] = target
}

// Unlink removes a federation link.
func (t *Trader) Unlink(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.links, name)
}

// Links returns the sorted names of federation links.
func (t *Trader) Links() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.links))
	for n := range t.links {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Import finds offers matching the request: correct (sub)type, constraint
// satisfied, ordered by the preference, truncated to MaxMatches, searching
// linked traders up to MaxHops away.
func (t *Trader) Import(req ImportRequest) ([]Offer, error) {
	if req.ServiceType == "" {
		return nil, fmt.Errorf("%w: empty service type", ErrBadRequest)
	}
	if req.MaxMatches < 0 || req.MaxHops < 0 {
		return nil, fmt.Errorf("%w: negative bounds", ErrBadRequest)
	}
	expr, err := constraint.Parse(req.Constraint)
	if err != nil {
		return nil, err
	}
	var prefExpr *constraint.Expr
	if req.Preference.Kind == PrefMax || req.Preference.Kind == PrefMin {
		prefExpr, err = constraint.Parse(req.Preference.Expr)
		if err != nil {
			return nil, err
		}
	}
	if _, err := t.types.LookupInterface(req.ServiceType); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrTypeUnknown, req.ServiceType)
	}

	t.mu.Lock()
	t.imports++
	t.mu.Unlock()

	matches, err := t.localMatches(req.ServiceType, expr)
	if err != nil {
		return nil, err
	}

	// Federation: propagate with a decremented hop budget and merge,
	// deduplicating by offer id (diamond topologies would otherwise
	// duplicate).
	if req.MaxHops > 0 {
		t.mu.RLock()
		linked := make([]Importer, 0, len(t.links))
		for _, imp := range t.links {
			linked = append(linked, imp)
		}
		t.mu.RUnlock()
		seen := make(map[string]bool, len(matches))
		for _, o := range matches {
			seen[o.ID] = true
		}
		sub := req
		sub.MaxHops = req.MaxHops - 1
		sub.MaxMatches = 0 // collect everything; order and truncate at the origin
		sub.Preference = Preference{}
		for _, imp := range linked {
			t.mu.Lock()
			t.feder++
			t.mu.Unlock()
			remote, err := imp.Import(sub)
			if err != nil {
				continue // a dead federation partner must not fail the import
			}
			for _, o := range remote {
				if !seen[o.ID] {
					seen[o.ID] = true
					matches = append(matches, o)
				}
			}
		}
	}

	if err := t.orderMatches(matches, req.Preference, prefExpr); err != nil {
		return nil, err
	}
	if req.MaxMatches > 0 && len(matches) > req.MaxMatches {
		matches = matches[:req.MaxMatches]
	}
	t.mu.Lock()
	t.matched += uint64(len(matches))
	t.mu.Unlock()
	return matches, nil
}

func (t *Trader) localMatches(serviceType string, expr *constraint.Expr) ([]Offer, error) {
	t.mu.RLock()
	ids := make([]string, len(t.order))
	copy(ids, t.order)
	offers := make([]*Offer, 0, len(ids))
	for _, id := range ids {
		offers = append(offers, t.offers[id])
	}
	t.mu.RUnlock()

	var out []Offer
	defer func(n int) {
		t.mu.Lock()
		t.consid += uint64(n)
		t.mu.Unlock()
	}(len(offers))
	for _, o := range offers {
		if o.ServiceType != serviceType {
			ok, err := t.types.IsSubtype(o.ServiceType, serviceType)
			if err != nil || !ok {
				continue
			}
		}
		ok, err := expr.Matches(o.Properties)
		if err != nil {
			// A constraint referencing properties this offer lacks simply
			// does not match it; true evaluation errors (type abuse) do the
			// same rather than failing the whole import.
			continue
		}
		if ok {
			out = append(out, *o)
		}
	}
	return out, nil
}

func (t *Trader) orderMatches(matches []Offer, pref Preference, prefExpr *constraint.Expr) error {
	switch pref.Kind {
	case PrefFirst:
		// already in export order (local first, then federation arrivals)
		return nil
	case PrefRandom:
		t.mu.Lock()
		t.rng.Shuffle(len(matches), func(i, j int) {
			matches[i], matches[j] = matches[j], matches[i]
		})
		t.mu.Unlock()
		return nil
	case PrefMax, PrefMin:
		type scored struct {
			offer Offer
			score float64
			ok    bool
		}
		rows := make([]scored, len(matches))
		for i, o := range matches {
			rows[i] = scored{offer: o}
			v, err := prefExpr.Eval(o.Properties)
			if err != nil {
				continue // unscoreable offers sort last
			}
			rows[i].score, rows[i].ok = constraint.AsFloat(v)
		}
		sort.SliceStable(rows, func(i, j int) bool {
			si, sj := rows[i], rows[j]
			if si.ok != sj.ok {
				return si.ok // scoreable offers ahead of unscoreable
			}
			if pref.Kind == PrefMax {
				return si.score > sj.score
			}
			return si.score < sj.score
		})
		for i, r := range rows {
			matches[i] = r.offer
		}
		return nil
	}
	return fmt.Errorf("%w: unknown preference %d", ErrBadRequest, pref.Kind)
}

// Stats returns a snapshot of trading counters.
func (t *Trader) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Stats{
		Exports:    t.exports,
		Withdraws:  t.withdrs,
		Imports:    t.imports,
		Matched:    t.matched,
		Federated:  t.feder,
		Considered: t.consid,
	}
}
