// Sharded trading: the offer space partitioned by consistent hashing
// over the advertised service type. A ShardedTrader is a front-end that
// owns no offers itself; it routes Export to the shard owning the
// service type (PR 2's type-bucketed store means a shard holds whole
// buckets, never split ones), and answers Import by computing the
// subtype closure of the request over the types advertised through it,
// mapping those candidate types to their owning shards, and fanning out
// to just that shard set — bounded-parallel, merged and deduplicated at
// the origin, exactly like a federated import. With T advertised types
// spread over N shards, an exact-type import costs one shard; a closure
// of k types costs at most min(k, N) shards — so aggregate capacity
// grows with N instead of every import paying every shard.
//
// Shards are ordinary trader objects: a local *Trader, or a *Remote
// proxy over a channel binding to a trader hosted on another node. The
// front-end never needs to know which.
//
// Rebalancing is live. A ring change (AddShard/RemoveShard) first marks
// every service type whose owner moved as "in flight" — imports for a
// moving type query both the old and the new owner, and the origin-side
// dedupe absorbs the window where an offer is visible on both — then
// copies each moving bucket with Install (identity-preserving) before
// withdrawing it from the old owner. A live offer is therefore always
// visible on at least one queried shard: the per-offer blackout during
// rebalance is zero by construction, which experiment E13 measures.
package trader

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/constraint"
	"repro/internal/hashring"
	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/typerepo"
	"repro/internal/values"
)

// ErrNoShards reports an operation on a sharded trader with an empty ring.
var ErrNoShards = errors.New("trader: sharded trader has no shards")

// Shard is one partition of the offer space: the trading operations the
// front-end routes to. *Trader and *Remote both satisfy it.
type Shard interface {
	Importer
	Export(serviceType string, ref naming.InterfaceRef, props values.Value) (string, error)
	Withdraw(offerID string) error
	Install(o Offer) error
}

var (
	_ Shard = (*Trader)(nil)
	_ Shard = (*Remote)(nil)
)

// ShardStats counts sharded-trading activity at the front-end.
type ShardStats struct {
	Exports       uint64
	Withdraws     uint64
	Imports       uint64
	Matched       uint64
	ShardsQueried uint64 // shard queries issued by imports (≥ Imports)
	Rebalances    uint64 // completed ring changes
	Migrated      uint64 // offers moved live by rebalances
	RingEpoch     uint64
}

// shardLeg is the per-shard routing state the front-end keeps.
type shardLeg struct {
	shard  Shard
	offers atomic.Int64 // offers routed here minus withdrawn/migrated away
	ins    atomic.Pointer[mgmt.ShardLegInstruments]
}

// ShardedTrader partitions the offer space over named shards by
// consistent hashing of the advertised service type. It satisfies Shard
// itself, so sharded traders nest (a front-end can be a federation link
// target or even a shard of a bigger one).
type ShardedTrader struct {
	name  string
	types typerepo.Repository

	mu     sync.RWMutex
	ring   *hashring.Ring
	shards map[string]*shardLeg
	// advertised is the set of service types exported (or installed)
	// through this front-end: the universe the import-side closure is
	// computed over. Correct routing requires all exports to flow through
	// the front-end; offers slipped directly into a shard are invisible
	// to closure routing (the same contract a single trader has with its
	// own store).
	advertised map[string]bool
	advGen     uint64
	// moving maps a service type mid-rebalance to its previous owner, so
	// imports during the copy window query both owners.
	moving map[string]string
	// closure memoises the advertised-type closure per requested type,
	// invalidated by type-repository generation or advertised-set changes.
	closure    map[string][]string
	closureGen uint64
	closureAdv uint64

	rebalanceMu sync.Mutex // serialises ring changes end to end

	rngMu sync.Mutex
	rng   *rand.Rand

	exports   atomic.Uint64
	withdrs   atomic.Uint64
	imports   atomic.Uint64
	matched   atomic.Uint64
	queried   atomic.Uint64
	rebals    atomic.Uint64
	migrated  atomic.Uint64
	insp      atomic.Pointer[mgmt.ShardInstruments]
	legInstr  atomic.Pointer[func(shard string) *mgmt.ShardLegInstruments]
	ringEpoch atomic.Uint64
}

var _ Shard = (*ShardedTrader)(nil)

// NewSharded creates an empty sharded front-end over the type
// repository. ringReplicas is the virtual-node count per shard (<=0
// selects the default). Add shards with AddShard.
func NewSharded(name string, repo typerepo.Repository, ringReplicas int) *ShardedTrader {
	seed := int64(7)
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	return &ShardedTrader{
		name:       name,
		types:      repo,
		ring:       hashring.New(ringReplicas),
		shards:     make(map[string]*shardLeg),
		advertised: make(map[string]bool),
		moving:     make(map[string]string),
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Name returns the front-end's name.
func (s *ShardedTrader) Name() string { return s.name }

// Instrument mirrors front-end activity into a management bundle. Safe to
// call at any time; nil detaches.
func (s *ShardedTrader) Instrument(ins *mgmt.ShardInstruments) {
	s.insp.Store(ins)
	if ins != nil {
		s.mu.RLock()
		ins.Shards.Set(int64(len(s.shards)))
		ins.RingEpoch.Set(int64(s.ring.Epoch()))
		s.mu.RUnlock()
	}
}

// InstrumentShards attaches a per-shard bundle provider: every current
// and future shard leg gets a bundle keyed by its shard name (offers
// gauge, routed-export/-import counters). nil detaches.
func (s *ShardedTrader) InstrumentShards(provider func(shard string) *mgmt.ShardLegInstruments) {
	if provider == nil {
		s.legInstr.Store(nil)
		s.mu.RLock()
		for _, leg := range s.shards {
			leg.ins.Store(nil)
		}
		s.mu.RUnlock()
		return
	}
	s.legInstr.Store(&provider)
	s.mu.RLock()
	for name, leg := range s.shards {
		li := provider(name)
		leg.ins.Store(li)
		if li != nil {
			li.Offers.Set(leg.offers.Load())
		}
	}
	s.mu.RUnlock()
}

// Shards returns the sorted shard names on the ring.
func (s *ShardedTrader) Shards() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Members()
}

// RingEpoch returns the current ring generation (advances twice per
// rebalance: once when the ring flips, once when migration completes).
func (s *ShardedTrader) RingEpoch() uint64 { return s.ringEpoch.Load() }

// Export routes the offer to the shard owning its service type. The
// returned offer id is minted by that shard ("<shard>/<seq>"), which is
// what lets Withdraw route by prefix.
//
// A ring flip racing the export could strand the offer on a shard that
// just stopped owning the type (landing after the migration pass already
// enumerated the bucket), so the export re-checks ownership after it
// lands and re-routes itself if the ground moved.
func (s *ShardedTrader) Export(serviceType string, ref naming.InterfaceRef, props values.Value) (string, error) {
	for {
		s.mu.RLock()
		owner := s.ring.Owner(serviceType)
		leg := s.shards[owner]
		s.mu.RUnlock()
		if leg == nil {
			return "", ErrNoShards
		}
		id, err := leg.shard.Export(serviceType, ref, props)
		if err != nil {
			return "", err
		}
		if !s.settleRouted(serviceType, owner) {
			// Ownership moved mid-export: pull the offer back from wherever
			// it ended up (old shard, or already migrated) and try again.
			_ = s.Withdraw(id)
			continue
		}
		s.exports.Add(1)
		leg.offers.Add(1)
		if li := leg.ins.Load(); li != nil {
			li.RoutedExports.Inc()
			li.Offers.Set(leg.offers.Load())
		}
		return id, nil
	}
}

// Install routes an identity-preserving insert to the owner of the
// offer's service type (nesting support; rebalance uses shard.Install
// directly on the target). Like Export, it re-routes itself if a ring
// flip raced the insert.
func (s *ShardedTrader) Install(o Offer) error {
	for {
		s.mu.RLock()
		owner := s.ring.Owner(o.ServiceType)
		leg := s.shards[owner]
		s.mu.RUnlock()
		if leg == nil {
			return ErrNoShards
		}
		if err := leg.shard.Install(o); err != nil {
			return err
		}
		if !s.settleRouted(o.ServiceType, owner) {
			_ = s.Withdraw(o.ID)
			continue
		}
		s.exports.Add(1)
		leg.offers.Add(1)
		if li := leg.ins.Load(); li != nil {
			li.RoutedExports.Inc()
			li.Offers.Set(leg.offers.Load())
		}
		return nil
	}
}

// settleRouted records the advertised type and confirms the shard the
// offer landed on still owns its service type. False means a rebalance
// flipped ownership mid-flight and the caller must re-route.
func (s *ShardedTrader) settleRouted(serviceType, owner string) bool {
	s.mu.Lock()
	if !s.advertised[serviceType] {
		s.advertised[serviceType] = true
		s.advGen++
	}
	ok := s.ring.Owner(serviceType) == owner
	s.mu.Unlock()
	return ok
}

// Withdraw removes an offer. Offer ids carry the minting shard's name as
// a prefix ("<shard>/<seq>"), so the common case is one routed call; if
// the offer has since migrated to another shard (rebalance preserves
// ids, not homes), the front-end falls back to asking the remaining
// shards.
func (s *ShardedTrader) Withdraw(offerID string) error {
	s.mu.RLock()
	var first *shardLeg
	var firstName string
	if i := strings.IndexByte(offerID, '/'); i > 0 {
		firstName = offerID[:i]
		first = s.shards[firstName]
	}
	rest := make([]*shardLeg, 0, len(s.shards))
	for name, leg := range s.shards {
		if name != firstName {
			rest = append(rest, leg)
		}
	}
	s.mu.RUnlock()
	if first == nil && len(rest) == 0 {
		return ErrNoShards
	}
	try := func(leg *shardLeg) (bool, error) {
		err := leg.shard.Withdraw(offerID)
		if err == nil {
			s.withdrs.Add(1)
			leg.offers.Add(-1)
			if li := leg.ins.Load(); li != nil {
				li.Offers.Set(leg.offers.Load())
			}
			return true, nil
		}
		if isNoSuchOffer(err) {
			return false, nil
		}
		return false, err
	}
	// Two passes: a scan racing a live migration can read the new owner
	// before the copy lands and the old owner after it is withdrawn. The
	// copy is installed before the original is withdrawn, so a second scan
	// started after the first missed is guaranteed to see it.
	for attempt := 0; attempt < 2; attempt++ {
		if first != nil {
			done, err := try(first)
			if done || err != nil {
				return err
			}
		}
		for _, leg := range rest {
			done, err := try(leg)
			if done || err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("%w: %q", ErrNoSuchOffer, offerID)
}

// isNoSuchOffer recognises ErrNoSuchOffer locally and through a remote
// shard's stringified failure reason.
func isNoSuchOffer(err error) bool {
	return errors.Is(err, ErrNoSuchOffer) || strings.Contains(err.Error(), "no such offer")
}

// Import finds matching offers across the shard set. The request's
// subtype closure over the advertised types picks the candidate shards;
// they are queried bounded-parallel, merged with origin-side dedupe (an
// offer mid-migration may answer from two shards), ordered by the
// preference, and truncated to MaxMatches.
func (s *ShardedTrader) Import(req ImportRequest) ([]Offer, error) {
	res, err := s.ImportEx(req)
	return res.Offers, err
}

// ImportEx is Import plus degradation metadata: LinksQueried counts the
// shards consulted, LinksFailed the shards that errored (their offers
// may be missing — Degraded).
func (s *ShardedTrader) ImportEx(req ImportRequest) (ImportResult, error) {
	if req.ServiceType == "" {
		return ImportResult{}, fmt.Errorf("%w: empty service type", ErrBadRequest)
	}
	if req.MaxMatches < 0 || req.MaxHops < 0 {
		return ImportResult{}, fmt.Errorf("%w: negative bounds", ErrBadRequest)
	}
	if _, err := constraint.Parse(req.Constraint); err != nil {
		return ImportResult{}, err
	}
	var prefExpr *constraint.Expr
	if req.Preference.Kind == PrefMax || req.Preference.Kind == PrefMin {
		var err error
		prefExpr, err = constraint.Parse(req.Preference.Expr)
		if err != nil {
			return ImportResult{}, err
		}
	}
	if _, err := s.types.LookupInterface(req.ServiceType); err != nil {
		return ImportResult{}, fmt.Errorf("%w: %q", ErrTypeUnknown, req.ServiceType)
	}

	s.imports.Add(1)
	ins := s.insp.Load()
	var start time.Time
	if ins != nil {
		ins.Imports.Inc()
		start = time.Now()
	}

	epoch := s.ringEpoch.Load()
	oldLegs, curLegs := s.targetShards(req.ServiceType)
	legs := len(oldLegs) + len(curLegs)
	if legs == 0 {
		// Nothing advertised substitutes for the request: an empty match,
		// not an error (same as a single trader with no matching bucket).
		if ins != nil {
			ins.ShardsPerImport.Observe(0)
			ins.ImportLatency.ObserveDuration(time.Since(start))
		}
		return ImportResult{}, nil
	}
	s.queried.Add(uint64(legs))
	if ins != nil {
		ins.ShardsPerImport.Observe(uint64(legs))
	}

	// Each shard collects everything it has (no truncation, no shard-side
	// ordering): the origin merges, orders, truncates — the same split a
	// federated import uses.
	sub := req
	sub.MaxMatches = 0
	sub.Preference = Preference{}

	// Previous owners of in-flight buckets are queried strictly BEFORE the
	// current owners. Migration installs the copy on the new owner before
	// withdrawing the original, so this ordering makes a miss impossible:
	// if the old owner has already given the bucket up by the time it is
	// read, the copy was on the new owner before the (later) read of it
	// started. Reading in the other order is the classic double-read race.
	//
	// The leg snapshot itself can also be overtaken — a ring that flips
	// after targetShards ran routes the import at shards that may donate
	// their buckets before the reads land — so the import revalidates the
	// ring epoch afterwards and re-runs under the new routing if it moved.
	var res ImportResult
	var matches []Offer
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// The epoch is sampled before the routing snapshot, so a flip
			// between the two is caught by the revalidation below.
			epoch = s.ringEpoch.Load()
			oldLegs, curLegs = s.targetShards(req.ServiceType)
		}
		res = ImportResult{}
		matches = matches[:0]
		seen := make(map[string]bool)
		for _, phase := range [][]*shardLeg{oldLegs, curLegs} {
			if len(phase) == 0 {
				continue
			}
			results, errs := s.queryLegs(phase, sub)
			res.LinksQueried += len(phase)
			for i := range phase {
				if errs[i] != nil {
					res.LinksFailed++
					continue
				}
				for _, o := range results[i] {
					if !seen[o.ID] {
						seen[o.ID] = true
						matches = append(matches, o)
					}
				}
			}
		}
		res.Degraded = res.LinksFailed > 0
		if s.ringEpoch.Load() == epoch || attempt >= 3 {
			break
		}
	}

	if err := orderOffers(matches, req.Preference, prefExpr, &s.rngMu, s.rng); err != nil {
		return ImportResult{}, err
	}
	if req.MaxMatches > 0 && len(matches) > req.MaxMatches {
		matches = matches[:req.MaxMatches]
	}
	s.matched.Add(uint64(len(matches)))
	if ins != nil {
		ins.Matched.Add(uint64(len(matches)))
		ins.ImportLatency.ObserveDuration(time.Since(start))
	}
	res.Offers = matches
	return res, nil
}

// queryLegs fans the sub-request out over the legs, bounded-parallel
// with the caller as one of the workers, and returns per-leg results.
func (s *ShardedTrader) queryLegs(legs []*shardLeg, sub ImportRequest) ([][]Offer, []error) {
	results := make([][]Offer, len(legs))
	errs := make([]error, len(legs))
	if len(legs) == 1 {
		results[0], errs[0] = legs[0].shard.Import(sub)
		if li := legs[0].ins.Load(); li != nil {
			li.RoutedImports.Inc()
		}
		return results, errs
	}
	workers := len(legs)
	if workers > maxLinkFanout {
		workers = maxLinkFanout
	}
	var cursor atomic.Int64
	work := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(legs) {
				return
			}
			results[i], errs[i] = legs[i].shard.Import(sub)
			if li := legs[i].ins.Load(); li != nil {
				li.RoutedImports.Inc()
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	return results, errs
}

// targetShards maps a requested service type to the legs that must be
// queried, split into the previous owners of types mid-rebalance (read
// first) and the current owners of every advertised candidate type (read
// after — see ImportEx for why the order matters). A leg appears in at
// most one slice; within one rebalance window the donating and receiving
// shard sets are disjoint, so a leg in the old slice is never the new
// owner of another moving type.
func (s *ShardedTrader) targetShards(serviceType string) (oldLegs, curLegs []*shardLeg) {
	cands := s.candidateTypes(serviceType)
	if len(cands) == 0 {
		return nil, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make(map[string]bool, 2)
	add := func(name string, old bool) {
		leg := s.shards[name]
		if leg == nil || names[name] {
			return
		}
		names[name] = true
		if old {
			oldLegs = append(oldLegs, leg)
		} else {
			curLegs = append(curLegs, leg)
		}
	}
	for _, ct := range cands {
		if old, inFlight := s.moving[ct]; inFlight {
			add(old, true)
		}
	}
	for _, ct := range cands {
		add(s.ring.Owner(ct), false)
	}
	return oldLegs, curLegs
}

// candidateTypes computes the subtype closure of the request over the
// advertised set, memoised against (type-repo generation, advertised-set
// generation). Ring changes do not invalidate it — the closure is about
// types, not owners.
func (s *ShardedTrader) candidateTypes(serviceType string) []string {
	gen := s.types.Gen()
	s.mu.RLock()
	if s.closure != nil && s.closureGen == gen && s.closureAdv == s.advGen {
		if cands, ok := s.closure[serviceType]; ok {
			s.mu.RUnlock()
			return cands
		}
	}
	adv := make([]string, 0, len(s.advertised))
	for t := range s.advertised {
		adv = append(adv, t)
	}
	advGen := s.advGen
	s.mu.RUnlock()

	sort.Strings(adv)
	cands := make([]string, 0, 1)
	for _, at := range adv {
		if at == serviceType {
			cands = append(cands, at)
			continue
		}
		if ok, err := s.types.IsSubtype(at, serviceType); err == nil && ok {
			cands = append(cands, at)
		}
	}

	s.mu.Lock()
	if s.closure == nil || s.closureGen != gen || s.closureAdv != advGen {
		s.closure = make(map[string][]string)
		s.closureGen = gen
		s.closureAdv = advGen
	}
	s.closure[serviceType] = cands
	s.mu.Unlock()
	return cands
}

// AddShard joins a shard to the ring and live-migrates every bucket
// whose ownership moved to it. Lookups keep flowing throughout: moving
// types are double-queried (old + new owner) until their copy completes.
// The shard name should match the underlying trader's name so withdraw
// prefix-routing stays exact (mismatches still work via the fallback).
func (s *ShardedTrader) AddShard(name string, shard Shard) error {
	s.rebalanceMu.Lock()
	defer s.rebalanceMu.Unlock()

	s.mu.Lock()
	if _, dup := s.shards[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("trader: shard %q already present", name)
	}
	next := s.ring.Clone()
	if err := next.Add(name); err != nil {
		s.mu.Unlock()
		return err
	}
	// Service types whose owner changes under the new ring enter the
	// double-query window before the ring flips, so no import observes
	// the new routing without the old owner as fallback.
	var moves []migration
	for t := range s.advertised {
		oldOwner := s.ring.Owner(t)
		newOwner := next.Owner(t)
		if oldOwner != newOwner && oldOwner != "" {
			s.moving[t] = oldOwner
			moves = append(moves, migration{serviceType: t, from: oldOwner, to: newOwner})
		}
	}
	leg := &shardLeg{shard: shard}
	if p := s.legInstr.Load(); p != nil {
		leg.ins.Store((*p)(name))
	}
	s.shards[name] = leg
	s.ring = next
	s.ringEpoch.Store(next.Epoch())
	s.mu.Unlock()
	s.publishRing()

	err := s.migrate(moves)
	s.finishRebalance(moves)
	return err
}

// RemoveShard drains a shard off the ring, live-migrating its buckets to
// their new owners, then drops it. The shard object itself is not
// closed; the caller owns its lifecycle.
func (s *ShardedTrader) RemoveShard(name string) error {
	s.rebalanceMu.Lock()
	defer s.rebalanceMu.Unlock()

	s.mu.Lock()
	if _, ok := s.shards[name]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("trader: no shard %q", name)
	}
	if len(s.shards) == 1 {
		s.mu.Unlock()
		return fmt.Errorf("trader: cannot remove last shard %q", name)
	}
	next := s.ring.Clone()
	if err := next.Remove(name); err != nil {
		s.mu.Unlock()
		return err
	}
	var moves []migration
	for t := range s.advertised {
		oldOwner := s.ring.Owner(t)
		newOwner := next.Owner(t)
		if oldOwner != newOwner && oldOwner != "" {
			s.moving[t] = oldOwner
			moves = append(moves, migration{serviceType: t, from: oldOwner, to: newOwner})
		}
	}
	// The ring flips now, but the departing shard stays in s.shards until
	// its buckets are copied: imports for moving types keep reaching it
	// through the moving map.
	s.ring = next
	s.ringEpoch.Store(next.Epoch())
	s.mu.Unlock()
	s.publishRing()

	err := s.migrate(moves)
	s.finishRebalance(moves)

	s.mu.Lock()
	delete(s.shards, name)
	s.mu.Unlock()
	s.publishRing()
	return err
}

type migration struct {
	serviceType string
	from, to    string
}

// migrate copies each moving bucket to its new owner (Install preserves
// offer ids) and only then withdraws from the old — an offer is always
// importable from at least one double-queried owner.
func (s *ShardedTrader) migrate(moves []migration) error {
	var firstErr error
	for _, m := range moves {
		s.mu.RLock()
		fromLeg := s.shards[m.from]
		toLeg := s.shards[m.to]
		s.mu.RUnlock()
		if fromLeg == nil || toLeg == nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("trader: migration %s: shard missing (%s -> %s)", m.serviceType, m.from, m.to)
			}
			continue
		}
		// Enumerate the bucket through the import interface (works for
		// remote shards too); the exact-type filter drops subtype offers
		// that live in other buckets.
		batch, err := fromLeg.shard.Import(ImportRequest{ServiceType: m.serviceType})
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("trader: migrating %s off %s: %w", m.serviceType, m.from, err)
			}
			continue
		}
		for _, o := range batch {
			if o.ServiceType != m.serviceType {
				continue
			}
			if err := toLeg.shard.Install(o); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("trader: installing %s on %s: %w", o.ID, m.to, err)
				}
				continue
			}
			toLeg.offers.Add(1)
			if err := fromLeg.shard.Withdraw(o.ID); err != nil && !isNoSuchOffer(err) {
				if firstErr == nil {
					firstErr = fmt.Errorf("trader: withdrawing migrated %s from %s: %w", o.ID, m.from, err)
				}
			}
			fromLeg.offers.Add(-1)
			s.migrated.Add(1)
			if ins := s.insp.Load(); ins != nil {
				ins.MigratedOffers.Inc()
			}
		}
		if li := fromLeg.ins.Load(); li != nil {
			li.Offers.Set(fromLeg.offers.Load())
		}
		if li := toLeg.ins.Load(); li != nil {
			li.Offers.Set(toLeg.offers.Load())
		}
	}
	return firstErr
}

// finishRebalance closes the double-query window and bumps the ring
// epoch again so observers can tell "flipped" from "settled".
func (s *ShardedTrader) finishRebalance(moves []migration) {
	s.mu.Lock()
	for _, m := range moves {
		delete(s.moving, m.serviceType)
	}
	s.mu.Unlock()
	s.rebals.Add(1)
	if ins := s.insp.Load(); ins != nil {
		ins.Rebalances.Inc()
	}
	s.publishRing()
}

// publishRing refreshes the ring-shaped gauges.
func (s *ShardedTrader) publishRing() {
	ins := s.insp.Load()
	if ins == nil {
		return
	}
	s.mu.RLock()
	ins.Shards.Set(int64(len(s.shards)))
	ins.RingEpoch.Set(int64(s.ring.Epoch()))
	s.mu.RUnlock()
}

// ShardStats returns a snapshot of front-end counters.
func (s *ShardedTrader) ShardStats() ShardStats {
	return ShardStats{
		Exports:       s.exports.Load(),
		Withdraws:     s.withdrs.Load(),
		Imports:       s.imports.Load(),
		Matched:       s.matched.Load(),
		ShardsQueried: s.queried.Load(),
		Rebalances:    s.rebals.Load(),
		Migrated:      s.migrated.Load(),
		RingEpoch:     s.ringEpoch.Load(),
	}
}
