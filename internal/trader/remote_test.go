package trader

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/relocator"
	"repro/internal/values"
)

// deployTrader hosts a trader as an infrastructure object on a node and
// returns a Remote proxy bound to it.
func deployTrader(t *testing.T, net *netsim.Network, reloc *relocator.Relocator, host string, tr *Trader) (*Remote, naming.InterfaceRef) {
	t.Helper()
	node, err := engineering.NewNode(engineering.NodeConfig{
		ID:        naming.NodeID(host),
		Endpoint:  naming.Endpoint("sim://" + host),
		Transport: net.From(host),
		Locations: reloc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	node.Behaviors().Register("odp.trader", func(values.Value) (engineering.Behavior, error) {
		return &Servant{T: tr}, nil
	})
	capsule, err := node.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cluster.CreateObject("odp.trader", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := obj.AddInterface(InterfaceType())
	if err != nil {
		t.Fatal(err)
	}
	b, err := node.Bind(ref, channel.BindConfig{Type: InterfaceType(), Locator: reloc})
	if err != nil {
		t.Fatal(err)
	}
	remote := NewRemote(b)
	t.Cleanup(func() { remote.Close() })
	return remote, ref
}

func TestRemoteTraderEndToEnd(t *testing.T) {
	net := netsim.New(1)
	reloc := relocator.New()
	repo := repoWithBank(t)
	tr := New("T1", repo)
	remote, _ := deployTrader(t, net, reloc, "traderhost", tr)

	// Export through the channel.
	id, err := remote.Export("BankTeller", refOf("BankTeller", 7),
		rec(values.F("queue", values.Int(2))))
	if err != nil {
		t.Fatalf("remote Export: %v", err)
	}
	if tr.Len() != 1 {
		t.Errorf("trader offers = %d", tr.Len())
	}
	// Import through the channel: constraint + preference survive the trip.
	offers, err := remote.Import(ImportRequest{
		ServiceType: "BankTeller",
		Constraint:  "queue < 5",
		Preference:  Preference{Kind: PrefMin, Expr: "queue"},
	})
	if err != nil || len(offers) != 1 {
		t.Fatalf("remote Import = %v, %v", offers, err)
	}
	got := offers[0]
	if got.ID != id || got.ServiceType != "BankTeller" || got.Ref.ID.Nonce != 7 {
		t.Errorf("offer = %+v", got)
	}
	if q, ok := got.Properties.FieldByName("queue"); !ok || !q.Equal(values.Int(2)) {
		t.Errorf("properties = %v", got.Properties)
	}
	// Remote failure surfaces as an error.
	if _, err := remote.Import(ImportRequest{ServiceType: "Ghost"}); err == nil {
		t.Error("import of unknown type should fail")
	}
	if _, err := remote.Export("Ghost", refOf("Ghost", 9), values.Null()); err == nil {
		t.Error("export of unknown type should fail")
	}
	if err := remote.Withdraw("nope"); err == nil {
		t.Error("withdraw of unknown offer should fail")
	}
	// Withdraw through the channel.
	if err := remote.Withdraw(id); err != nil {
		t.Fatalf("remote Withdraw: %v", err)
	}
	if tr.Len() != 0 {
		t.Errorf("offers after withdraw = %d", tr.Len())
	}
}

func TestCrossNodeFederationViaRemote(t *testing.T) {
	// Two traders on different nodes, federated through a Remote proxy —
	// the full "interworking between trading domains" picture.
	net := netsim.New(2)
	reloc := relocator.New()
	repo := repoWithBank(t)
	t1 := New("T1", repo)
	t2 := New("T2", repo)
	_, _ = deployTrader(t, net, reloc, "host1", t1)
	remote2, _ := deployTrader(t, net, reloc, "host2", t2)

	// T1 links to T2 through the network.
	t1.Link("t2", remote2)
	if _, err := t2.Export("BankManager", refOf("BankManager", 5), values.Null()); err != nil {
		t.Fatal(err)
	}
	offers, err := t1.Import(ImportRequest{ServiceType: "BankTeller", MaxHops: 1})
	if err != nil {
		t.Fatalf("federated import: %v", err)
	}
	if len(offers) != 1 || offers[0].Ref.ID.Nonce != 5 {
		t.Errorf("offers = %v", nonces(offers))
	}
}

func TestOfferValueRoundTrip(t *testing.T) {
	o := Offer{
		ID:          "T1/9",
		ServiceType: "BankTeller",
		Ref:         refOf("BankManager", 3),
		Properties:  rec(values.F("queue", values.Int(1))),
	}
	got, err := offerFromValue(offerToValue(o))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != o.ID || got.ServiceType != o.ServiceType || got.Ref != o.Ref ||
		!got.Properties.Equal(o.Properties) {
		t.Errorf("round trip: %+v vs %+v", got, o)
	}
	// Malformed offers fail to decode.
	if _, err := offerFromValue(values.Record()); err == nil {
		t.Error("empty record should fail")
	}
	if _, err := offerFromValue(values.Record(values.F("id", values.Str("x")))); err == nil {
		t.Error("missing fields should fail")
	}
}
