// Package repro's root benchmark suite regenerates every experiment in
// EXPERIMENTS.md (one per figure of the tutorial — the paper has no
// measured tables). cmd/odpbench prints the same scenarios as tables; the
// scenarios themselves live in internal/experiments.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

func benchScenario(b *testing.B, s experiments.Scenario) {
	b.Helper()
	b.Run(s.Name, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE1_ViewpointConsistency measures the Figure 1 correspondence
// check of the full bank specification.
func BenchmarkE1_ViewpointConsistency(b *testing.B) {
	s := experiments.E1Consistency()
	defer s.Close()
	benchScenario(b, s)
}

// BenchmarkE2_BankInvocation measures Figure 2's bank branch under its
// three canonical interactions, end to end through the channel stack with
// the ACID refinement.
func BenchmarkE2_BankInvocation(b *testing.B) {
	scenarios := experiments.E2Bank()
	for _, s := range scenarios {
		benchScenario(b, s)
	}
	for _, s := range scenarios {
		s.Close()
	}
}

// BenchmarkE3_Subtype measures Figure 3's subtype relation: structural
// checks at growing signature sizes versus the type repository's
// memoised check.
func BenchmarkE3_Subtype(b *testing.B) {
	for _, s := range experiments.E3Subtype() {
		benchScenario(b, s)
		s.Close()
	}
}

// BenchmarkE4_Channel measures Figure 4's channel composition: codec
// choice (access transparency) and each added stub/binder component.
func BenchmarkE4_Channel(b *testing.B) {
	for _, s := range experiments.E4Codec() {
		benchScenario(b, s)
		s.Close()
	}
	scenarios := experiments.E4Channel()
	for _, s := range scenarios {
		benchScenario(b, s)
	}
	for _, s := range scenarios {
		s.Close()
	}
}

// BenchmarkE5_NodeStructure measures Figure 5's engineering structures:
// building one full containment column, and a cluster
// checkpoint/deactivate/reactivate cycle.
func BenchmarkE5_NodeStructure(b *testing.B) {
	scenarios := experiments.E5Structure()
	for _, s := range scenarios {
		benchScenario(b, s)
	}
	for _, s := range scenarios {
		s.Close()
	}
}

// BenchmarkE6_Transparency measures the Section 9 ablation: invocation
// cost as each transparency set is enabled, including replication
// degrees 1, 3 and 5.
func BenchmarkE6_Transparency(b *testing.B) {
	scenarios := experiments.E6Transparency()
	for _, s := range scenarios {
		benchScenario(b, s)
	}
	for _, s := range scenarios {
		s.Close()
	}
}

// BenchmarkE6_ReplicationScaling measures one group update against
// replica count {1,3,5,9} over the simulated network with nonzero
// per-link latency — the configuration where a serial sequencer pays
// Σ(replica round trips) and a concurrent one pays max(replica round
// trips).
func BenchmarkE6_ReplicationScaling(b *testing.B) {
	scenarios := experiments.E6ReplicationScaling()
	for _, s := range scenarios {
		benchScenario(b, s)
	}
	for _, s := range scenarios {
		s.Close()
	}
}

// BenchmarkE7_Transaction measures the ACID transaction function:
// two-phase commit latency against participant count, plus the abort path.
func BenchmarkE7_Transaction(b *testing.B) {
	for _, s := range experiments.E7Transactions() {
		benchScenario(b, s)
		s.Close()
	}
}

// BenchmarkE7_DurableCommit measures two-phase commit against participant
// count {1,2,4,8} when each participant pays a forced-log delay in both
// phases — serial 2PC costs 2·n·delay, concurrent phases cost 2·delay.
func BenchmarkE7_DurableCommit(b *testing.B) {
	for _, s := range experiments.E7DurableCommit() {
		benchScenario(b, s)
		s.Close()
	}
}

// BenchmarkE8_Trader measures the trading function: import latency versus
// offer population, constraint complexity and federation depth.
func BenchmarkE8_Trader(b *testing.B) {
	for _, s := range experiments.E8Trader() {
		benchScenario(b, s)
		s.Close()
	}
}

// BenchmarkE8_TraderScaling measures import over 10k offers spread across
// 50 service types, and a federated import across 4 links with per-link
// latency.
func BenchmarkE8_TraderScaling(b *testing.B) {
	for _, s := range experiments.E8TraderScaling() {
		benchScenario(b, s)
		s.Close()
	}
	scenarios := experiments.E8FederationParallel()
	for _, s := range scenarios {
		benchScenario(b, s)
	}
	for _, s := range scenarios {
		s.Close()
	}
}

// BenchmarkE9_Observability measures the management subsystem's tax on
// the invocation path: the same echo round trip with instrumentation
// absent and fully enabled (metrics + tracing + QoS), and the same frame
// with and without the trace extension. The instrumentation-off number
// is the one EXPERIMENTS.md holds to the ≤5% overhead budget against E4.
func BenchmarkE9_Observability(b *testing.B) {
	for _, s := range experiments.E9Overhead() {
		benchScenario(b, s)
		s.Close()
	}
}

// BenchmarkE10_SessionInvoke measures the per-call price of session
// multiplexing: one invocation through a binding that shares its
// transport session with {0, 63, 255} sibling bindings, isolating the
// (BindingID, Correlation) demux-table overhead on the hot path.
func BenchmarkE10_SessionInvoke(b *testing.B) {
	scenarios := experiments.E10SessionInvoke()
	for _, s := range scenarios {
		benchScenario(b, s)
	}
	for _, s := range scenarios {
		s.Close()
	}
}
