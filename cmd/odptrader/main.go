// Command odptrader runs a standalone trading-function daemon over TCP,
// optionally federated with peer traders — a multi-process trading graph.
//
// Start a trader:
//
//	odptrader -name city -listen tcp://127.0.0.1:9100
//
// It prints its own trader interface as "<interface-id> odp.Trader <endpoint>".
// Start a second one federated with the first:
//
//	odptrader -name state -listen tcp://127.0.0.1:9101 \
//	          -peer '<interface-id>@tcp://127.0.0.1:9100'
//
// Exports and imports arrive through the trader's own ODP interface (see
// trader.InterfaceType); odpnode -call works against it too, since a
// trader is just another ODP object.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/bank"
	"repro/internal/channel"
	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/trader"
	"repro/internal/typerepo"
	"repro/internal/values"
)

type peerList []string

func (p *peerList) String() string     { return strings.Join(*p, ",") }
func (p *peerList) Set(s string) error { *p = append(*p, s); return nil }

func main() {
	var peers peerList
	name := flag.String("name", "trader", "trader name (prefixes offer ids; unique per federation)")
	listen := flag.String("listen", "tcp://127.0.0.1:0", "listen endpoint")
	flag.Var(&peers, "peer", "federation link '<interface-id>@<endpoint>' (repeatable)")
	flag.Parse()

	// The type universe this trader can certify. A production deployment
	// would replicate a shared repository; here the well-known types are
	// pre-registered.
	repo := typerepo.New()
	must(repo.RegisterInterface(bank.TellerType()))
	must(repo.RegisterInterface(bank.ManagerType()))
	must(repo.RegisterInterface(bank.LoansOfficerType()))
	must(repo.RegisterInterface(trader.InterfaceType()))

	t := trader.New(*name, repo)

	node, err := engineering.NewNode(engineering.NodeConfig{
		ID:        naming.NodeID(*name),
		Endpoint:  naming.Endpoint(*listen),
		Transport: netsim.NewTCP(),
		Server:    channel.ServerConfig{ReplayGuard: true},
	})
	must(err)
	defer node.Close()
	node.Behaviors().Register("odp.trader", func(values.Value) (engineering.Behavior, error) {
		return &trader.Servant{T: t}, nil
	})
	capsule, err := node.CreateCapsule()
	must(err)
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
	must(err)
	obj, err := cluster.CreateObject("odp.trader", values.Null())
	must(err)
	ref, err := obj.AddInterface(trader.InterfaceType())
	must(err)
	fmt.Printf("%s %s %s\n", ref.ID, ref.TypeName, node.Endpoint())

	for _, peer := range peers {
		at := strings.LastIndexByte(peer, '@')
		if at < 0 {
			log.Fatalf("peer %q must be '<interface-id>@<endpoint>'", peer)
		}
		id, err := naming.ParseInterfaceID(peer[:at])
		must(err)
		b, err := channel.Bind(naming.InterfaceRef{
			ID:       id,
			TypeName: "odp.Trader",
			Endpoint: naming.Endpoint(peer[at+1:]),
		}, channel.BindConfig{Transport: netsim.NewTCP(), Type: trader.InterfaceType()})
		must(err)
		remote := trader.NewRemote(b)
		t.Link(peer, remote)
		fmt.Fprintf(os.Stderr, "odptrader: linked to %s\n", peer)
	}

	fmt.Fprintf(os.Stderr, "odptrader: %q serving at %s with %d link(s); ctrl-c to stop\n",
		*name, node.Endpoint(), len(peers))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
