// Command odpbench regenerates every experiment in EXPERIMENTS.md as
// formatted tables: the per-figure micro-benchmarks (E1–E9) plus the
// behavioural measurements that are not ns/op-shaped — relocation
// recovery latency, failure masking under loss, session multiplexing,
// chaos, pipelining and the sharded-infrastructure swarm.
//
// Usage:
//
//	odpbench            # run everything
//	odpbench -iters N   # samples per scenario (default 2000)
//	odpbench -only e10  # just the session-multiplexing table (CI smoke)
//	odpbench -only e11 -dur 10s  # the chaos experiment, policy on vs off
//	odpbench -only e12  # pipelining/batching grid, sim + loopback TCP
//	odpbench -only e12smoke -json  # the CI cell (tcp, 64x8) as JSON
//	odpbench -only e13  # sharded trader/relocator swarm (full grid)
//	odpbench -only e13smoke -json  # the CI slice (1-vs-8 grid, 100k swarm)
//	odpbench -only e14  # streaming credit-flow isolation (sim + tcp)
//	odpbench -only e14smoke -json  # the CI slice (fewer elements)
//	odpbench -only e15  # de-singletoned control plane: replicated types, sharded bus, 1M swarm
//	odpbench -only e15smoke -json  # the CI slice (same 1M swarm, fewer samples elsewhere)
//	odpbench -only e16  # self-healing migration storm, recovery on vs off
//	odpbench -only e16smoke -json  # the CI slice (smaller storm) as JSON
//	odpbench -json      # any section: unified []Record instead of tables
//
// With -json every section emits the unified experiments.Record shape
// (experiment id, scenario, numeric params and metrics), one JSON array
// on stdout — the format BENCH files are generated from. The one
// exception is -only e12/-only e12smoke, which keeps its original row
// array because the CI gate's parser predates the unified shape.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

// emitter accumulates unified records; in JSON mode the tables are
// suppressed and the array is printed once at the end.
type emitter struct {
	json bool
	recs []experiments.Record
}

func (e *emitter) add(recs ...experiments.Record) {
	e.recs = append(e.recs, recs...)
}

func (e *emitter) flush() {
	if !e.json {
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e.recs); err != nil {
		fmt.Fprintf(os.Stderr, "odpbench: encode: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	iters := flag.Int("iters", 2000, "samples per scenario")
	only := flag.String("only", "", "run only the named section (supported: e10, e11, e12, e12smoke, e13, e13smoke, e14, e14smoke, e15, e15smoke, e16, e16smoke)")
	dur := flag.Duration("dur", 6*time.Second, "per-mode wall-clock duration of the e11 chaos run")
	asJSON := flag.Bool("json", false, "emit machine-readable records instead of tables")
	flag.Parse()

	em := &emitter{json: *asJSON}

	if *only == "e12" || *only == "e12smoke" {
		// JSON mode keeps the original row array: the CI gate parses it.
		runE12(*only == "e12smoke", *asJSON, *iters)
		return
	}
	if *only == "e13" || *only == "e13smoke" {
		runE13(em, *only == "e13smoke")
		em.flush()
		return
	}
	if *only == "e14" || *only == "e14smoke" {
		runE14(em, *only == "e14smoke")
		em.flush()
		return
	}
	if *only == "e15" || *only == "e15smoke" {
		runE15(em, *only == "e15smoke")
		em.flush()
		return
	}
	if *only == "e16" || *only == "e16smoke" {
		runE16(em, *only == "e16smoke")
		em.flush()
		return
	}

	if !em.json {
		fmt.Println("RM-ODP reproduction — experiment tables (see EXPERIMENTS.md)")
		fmt.Println()
	}

	if *only == "e10" {
		runE10(em, *iters)
		em.flush()
		return
	}
	if *only == "e11" {
		runE11(em, *dur)
		em.flush()
		return
	}

	section(em, "E1  Figure 1: cross-viewpoint consistency check")
	runTable(em, "e1", *iters, []experiments.Scenario{experiments.E1Consistency()})

	section(em, "E2  Figure 2: bank branch invocations (channel + ACID refinement)")
	runTable(em, "e2", *iters, experiments.E2Bank())

	section(em, "E3  Figure 3: interface subtype checking")
	runTable(em, "e3", *iters, experiments.E3Subtype())

	section(em, "E4  Figure 4: channel composition ablation")
	runTable(em, "e4", *iters*10, experiments.E4Codec())
	runTable(em, "e4", *iters, experiments.E4Channel())

	section(em, "E5  Figure 5: engineering structures")
	runTable(em, "e5", *iters/4, experiments.E5Structure())

	section(em, "E6  Section 9: transparency ablation")
	runTable(em, "e6", *iters, experiments.E6Transparency())

	section(em, "E6b Relocation transparency: binding recovery across migration")
	samples, err := experiments.E6RelocationRecovery(20)
	if err != nil {
		fmt.Printf("  error: %v\n", err)
	} else {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		p50 := samples[len(samples)/2]
		p90 := samples[len(samples)*9/10]
		max := samples[len(samples)-1]
		em.add(experiments.Record{
			Experiment: "e6b",
			Scenario:   "first-call-after-migration",
			Metrics: map[string]float64{
				"p50_us": float64(p50.Microseconds()),
				"p90_us": float64(p90.Microseconds()),
				"max_us": float64(max.Microseconds()),
			},
		})
		if !em.json {
			fmt.Printf("  %-36s %12s %12s %12s\n", "scenario", "p50", "p90", "max")
			fmt.Printf("  %-36s %12v %12v %12v\n", "first-call-after-migration", p50, p90, max)
		}
	}
	blank(em)

	section(em, "E6c Failure transparency: success rate over a lossy link (drop=30% each way)")
	withR, withoutR, err := experiments.E6FailureMasking(0.3, 200)
	if err != nil {
		fmt.Printf("  error: %v\n", err)
	} else {
		em.add(experiments.Record{
			Experiment: "e6c",
			Scenario:   "failure-masking",
			Params:     map[string]float64{"drop": 0.3, "calls": 200},
			Metrics: map[string]float64{
				"ok_with_retries": float64(withR),
				"ok_no_retries":   float64(withoutR),
			},
		})
		if !em.json {
			fmt.Printf("  %-36s %8s\n", "configuration", "ok/200")
			fmt.Printf("  %-36s %8d\n", "failure transparency (25 retries)", withR)
			fmt.Printf("  %-36s %8d\n", "no retries", withoutR)
		}
	}
	blank(em)

	section(em, "E6d Replication scaling: group update vs replica count (latent links)")
	runTable(em, "e6d", *iters/10, experiments.E6ReplicationScaling())

	section(em, "E7  Section 8.2.1: ACID transaction function")
	runTable(em, "e7", *iters, experiments.E7Transactions())

	section(em, "E7b Durable 2PC: commit vs participant count (forced-log delay)")
	runTable(em, "e7b", *iters/10, experiments.E7DurableCommit())

	section(em, "E8  Section 8.3.2: trading function")
	runTable(em, "e8", *iters/4, experiments.E8Trader())

	section(em, "E8b Trader scaling: indexed import and parallel federation")
	runTable(em, "e8b", *iters/10, experiments.E8TraderScaling())
	runTable(em, "e8b", *iters/10, experiments.E8FederationParallel())

	section(em, "E9  Section 8.1: management & observability overhead")
	runTable(em, "e9", *iters, experiments.E9Overhead())

	runE10(em, *iters)
	runE11(em, *dur)
	runE12(false, false, *iters)
	runE13(em, true)
	runE14(em, true)
	runE15(em, true)
	runE16(em, true)
	em.flush()
}

// runE16 prints (or records) the self-healing migration storm: hundreds
// of live relocations across a composed WAN link under a chaos script
// that crashes a trader replica and a whole victim host, measured twice
// — recovery controller wired, then the same script with the controller
// disconnected (the control run).
func runE16(em *emitter, smoke bool) {
	res, err := experiments.E16(smoke)
	if err != nil {
		fmt.Fprintf(os.Stderr, "e16: %v\n", err)
		os.Exit(1)
	}
	em.add(res.Records()...)
	if em.json {
		return
	}
	section(em, "E16 Self-healing migration storm: WAN chaos, shard failover, victim rescue")
	fmt.Printf("  %-14s %8s %8s %8s %9s %10s %10s %6s %7s %6s\n",
		"mode", "probes", "fail", "avail", "maxgap", "ttdead", "ttrecover", "dead", "migr", "lost")
	for _, r := range []experiments.E16Report{res.On, res.Off} {
		ttr := "never"
		if r.TimeToRecover >= 0 {
			ttr = r.TimeToRecover.Round(100 * time.Microsecond).String()
		}
		fmt.Printf("  %-14s %8d %8d %7.2f%% %9v %10v %10s %6d %7d %6d\n",
			r.Mode, r.Probes, r.Failures, 100*r.Availability,
			r.MaxBlackout.Round(100*time.Microsecond),
			r.TimeToDead.Round(100*time.Microsecond), ttr,
			r.DeadObjects, r.Migrations, r.LostLookups)
	}
	on := res.On
	fmt.Printf("  recovery-on: %d rescues, %d actions (%d failed), %d readmission(s),\n",
		on.Rescues, on.RecoveryActions, on.RecoveryFailures, on.Readmissions)
	fmt.Printf("               group size %d after promotion, %d ring rebalances, %d chaos events,\n",
		on.GroupSize, on.RingRebalances, on.ChaosEvents)
	fmt.Printf("               %v storm window\n", on.Window.Round(time.Millisecond))
	fmt.Println()
}

// runE15 prints (or records) the de-singletoned control plane: trader
// import throughput against a capacity-gated type-repository authority,
// singleton vs replicated read front-end; bus publish throughput with
// gated broker shards; the million-binding swarm over the replicated
// repository; and the crash-storm rebalance with one replica-group
// trader shard losing a member mid-flight.
func runE15(em *emitter, smoke bool) {
	rep, err := experiments.E15(smoke)
	if err != nil {
		fmt.Fprintf(os.Stderr, "e15: %v\n", err)
		os.Exit(1)
	}
	em.add(rep.Records()...)
	if em.json {
		return
	}
	section(em, "E15 De-singletoned control plane: replicated typerepo, sharded bus, 1M swarm, crash storm")
	fmt.Printf("  %-28s %8s %12s %12s %12s\n", "typerepo (gated authority)", "calls", "imports/sec", "auth reads", "repl reads")
	for _, t := range rep.TypeRepo {
		fmt.Printf("  %-28s %8d %12.0f %12d %12d\n",
			fmt.Sprintf("%s replicas=%d", t.Mode, t.Replicas),
			t.Calls, t.Throughput, t.AuthorityReads, t.ReplicaReads)
	}
	fmt.Printf("  %-28s %8s %12s\n", "bus (gated brokers)", "events", "pubs/sec")
	for _, b := range rep.Bus {
		fmt.Printf("  %-28s %8d %12.0f\n",
			fmt.Sprintf("%s shards=%d", b.Mode, b.Shards), b.Events, b.Throughput)
	}
	s := rep.Swarm
	fmt.Printf("  swarm: %d bindings over %d hosts x %d nodes (%d shards, %d type replicas):\n",
		s.Bindings, s.Config.Hosts, s.Config.Nodes, s.Config.Shards, s.Config.TypeReplicas)
	fmt.Printf("         %d lost lookups, %d conns, %d dials, cache hit rate %.4f,\n",
		s.LostLookups, s.Conns, s.Dials, s.CacheHitRate)
	fmt.Printf("         %d heapB/binding, p50 %v p99 %v, %.0f bindings/sec (%v total)\n",
		s.HeapPerBinding, s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.PerSec, s.Elapsed.Round(time.Millisecond))
	c := rep.Crash
	fmt.Printf("  crash storm: %d offers probed through add+remove rebalance with a replica-member\n", c.Offers)
	fmt.Printf("               crash (%d chaos events): %d probes, %d misses, worst per-offer gap %v,\n",
		c.CrashEvents, c.Probes, c.Misses, c.MaxBlackout.Round(time.Microsecond))
	fmt.Printf("               %d offers migrated live, replicated shard down to %d member(s)\n",
		c.Migrated, c.GroupSize)
	fmt.Println()
}

// runE14 prints (or records) the streaming credit-flow grid: fast-stream
// throughput, fast-send tail latency and the slow stream's memory ceiling
// with and without one slow consumer among 64 multiplexed streams.
func runE14(em *emitter, smoke bool) {
	rep, err := experiments.E14(smoke)
	if err != nil {
		fmt.Fprintf(os.Stderr, "e14: %v\n", err)
		os.Exit(1)
	}
	em.add(rep.Records()...)
	if em.json {
		return
	}
	section(em, "E14 Streaming flow control: one slow consumer among 64 credit-windowed streams")
	fmt.Printf("  %-20s %12s %10s %10s %9s %9s %8s %8s %8s\n",
		"scenario/transport", "fast el/s", "send p50", "send p99",
		"slow del", "slow maxq", "maxbuf", "gaps", "typeerr")
	for _, r := range rep.Rows {
		fmt.Printf("  %-20s %12.0f %10v %10v %9d %9d %8d %8d %8d\n",
			r.Scenario+"/"+r.Transport, r.FastThroughput,
			r.SendP50.Round(time.Microsecond), r.SendP99.Round(time.Microsecond),
			r.SlowDelivered, r.SlowMaxQueued, r.MaxBuffered, r.SeqGaps, r.FlowTypeErrors)
	}
	fmt.Println()
}

// runE13 prints (or records) the sharded-infrastructure swarm: import
// throughput vs shard count with capacity-gated shards over channels,
// the large binding swarm, and the per-offer rebalance blackout probe.
func runE13(em *emitter, smoke bool) {
	rep, err := experiments.E13(smoke)
	if err != nil {
		fmt.Fprintf(os.Stderr, "e13: %v\n", err)
		os.Exit(1)
	}
	em.add(rep.Records()...)
	if em.json {
		return
	}
	section(em, "E13 Sharded trader + relocator: shard scaling, binding swarm, rebalance blackout")
	fmt.Printf("  %-24s %8s %12s %10s %10s\n", "grid (gated shards)", "calls", "imports/sec", "p50", "p99")
	for _, g := range rep.Grid {
		fmt.Printf("  %-24s %8d %12.0f %10v %10v\n",
			fmt.Sprintf("shards=%d workers=%d", g.Shards, g.Workers),
			g.Calls, g.Throughput, g.P50.Round(time.Microsecond), g.P99.Round(time.Microsecond))
	}
	s := rep.Swarm
	fmt.Printf("  swarm: %d bindings over %d hosts x %d nodes (%d shards): %d lost lookups,\n",
		s.Bindings, s.Config.Hosts, s.Config.Nodes, s.Config.Shards, s.LostLookups)
	fmt.Printf("         %d conns, %d dials, cache hit rate %.4f, %d heapB/binding,\n",
		s.Conns, s.Dials, s.CacheHitRate, s.HeapPerBinding)
	fmt.Printf("         p50 %v p99 %v, %.0f bindings/sec (%v total)\n",
		s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.PerSec, s.Elapsed.Round(time.Millisecond))
	b := rep.Blackout
	fmt.Printf("  blackout: %d offers probed through add+remove rebalance: %d probes, %d misses,\n",
		b.Offers, b.Probes, b.Misses)
	fmt.Printf("            worst per-offer gap %v, %d offers migrated live\n",
		b.MaxBlackout.Round(time.Microsecond), b.Migrated)
	fmt.Println()
}

// runE12 prints (or, for the CI gate, emits as JSON) the pipelining and
// frame-batching grid: invocation throughput and latency for batched vs
// unbatched data planes across bindings × in-flight, on the simulated
// network and on real loopback TCP. smoke restricts the grid to the CI
// cell (tcp, 64 bindings × 8 in-flight) plus the single-call latency
// cell (tcp, 1×1) that guards against batching taxing the idle path.
func runE12(smoke, asJSON bool, iters int) {
	type sweep struct {
		transport          string
		bindings, inflight []int
	}
	budget := iters * 4 // per-cell invocation budget
	if budget < 2000 {
		budget = 2000
	}
	sweeps := []sweep{
		{"sim", []int{1, 64, 256}, []int{1, 8, 64}},
		{"tcp", []int{1, 64, 256}, []int{1, 8, 64}},
	}
	if smoke {
		sweeps = []sweep{{"tcp", []int{1, 64}, []int{1, 8}}}
	}
	var rows []experiments.E12PipelineRow
	for _, sw := range sweeps {
		r, err := experiments.E12Pipeline(sw.transport, sw.bindings, sw.inflight, budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "e12 %s: %v\n", sw.transport, err)
			os.Exit(1)
		}
		rows = append(rows, r...)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintf(os.Stderr, "e12 encode: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println("E12 Invocation pipelining + adaptive frame batching: throughput vs data plane")
	fmt.Printf("  %-28s %10s %12s %10s %10s\n",
		"transport/mode/n×k", "calls", "calls/sec", "p50", "p99")
	for _, r := range rows {
		fmt.Printf("  %-28s %10d %12.0f %10v %10v\n",
			fmt.Sprintf("%s/%s/n=%d k=%d", r.Transport, r.Mode, r.Bindings, r.InFlight),
			r.Calls, r.Throughput, r.P50, r.P99)
	}
	fmt.Println()
}

// runE11 prints the chaos table: the same replicated bank workload under
// the same fault script, with the failure-policy layer on and off.
func runE11(em *emitter, dur time.Duration) {
	section(em, "E11 Failure transparency under chaos: crash/restart + 2-node outage + link squeeze")
	type row struct {
		name string
		rep  experiments.E11Report
	}
	var rows []row
	for _, on := range []bool{true, false} {
		rep, err := experiments.E11Chaos(dur, on)
		if err != nil {
			fmt.Printf("  error (policyOn=%v): %v\n", on, err)
			return
		}
		rows = append(rows, row{rep.Mode, rep})
		em.add(experiments.Record{
			Experiment: "e11",
			Scenario:   rep.Mode,
			Params:     map[string]float64{"dur_s": dur.Seconds()},
			Metrics: map[string]float64{
				"ops":                 float64(rep.Ops),
				"availability":        rep.Availability,
				"availability_faults": rep.AvailabilityFaults,
				"availability_healed": rep.AvailabilityHealed,
				"p99_faults_us":       float64(rep.P99Faults.Microseconds()),
				"p99_healed_us":       float64(rep.P99Healed.Microseconds()),
				"ttr_ms":              float64(rep.TimeToRecover.Milliseconds()),
				"breaker_opens":       float64(rep.BreakerOpens),
				"retries":             float64(rep.Retries),
				"degraded_reads":      float64(rep.DegradedReads),
			},
		})
	}
	if em.json {
		return
	}
	fmt.Printf("  %-12s %6s %9s %9s %9s %10s %10s %9s %7s %7s %7s\n",
		"mode", "ops", "avail", "av.fault", "av.heal", "p99.fault", "p99.heal", "ttr", "opens", "retry", "stale")
	for _, r := range rows {
		ttr := "never"
		if r.rep.TimeToRecover >= 0 {
			ttr = r.rep.TimeToRecover.Round(time.Millisecond).String()
		}
		fmt.Printf("  %-12s %6d %8.2f%% %8.2f%% %8.2f%% %10v %10v %9s %7d %7d %7d\n",
			r.name, r.rep.Ops,
			100*r.rep.Availability, 100*r.rep.AvailabilityFaults, 100*r.rep.AvailabilityHealed,
			r.rep.P99Faults.Round(time.Millisecond), r.rep.P99Healed.Round(time.Millisecond),
			ttr, r.rep.BreakerOpens, r.rep.Retries, r.rep.DegradedReads)
	}
	for _, r := range rows {
		if len(r.rep.Errors) == 0 {
			continue
		}
		keys := make([]string, 0, len(r.rep.Errors))
		for k := range r.rep.Errors {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  %s errors:", r.name)
		for _, k := range keys {
			fmt.Printf(" %s=%d", k, r.rep.Errors[k])
		}
		fmt.Println()
	}
	fmt.Println("  fault timeline (policy-on run):")
	for _, line := range strings.Split(strings.TrimRight(rows[0].rep.Timeline, "\n"), "\n") {
		fmt.Println("    " + line)
	}
	if rows[0].rep.StaleTrace != "" {
		fmt.Println("  one degraded read, traced (staleness flag is the marker span):")
		for _, line := range strings.Split(strings.TrimRight(rows[0].rep.StaleTrace, "\n"), "\n") {
			fmt.Println("    " + line)
		}
	}
	fmt.Println()
}

// runE10 prints the session-multiplexing table: connections, dials, heap
// and latency against binding count, shared session manager vs one
// manager per binding.
func runE10(em *emitter, iters int) {
	section(em, "E10 Session multiplexing: N bindings to one node, shared vs per-binding sessions")
	calls := iters / 100
	if calls < 10 {
		calls = 10
	}
	rows, err := experiments.E10SessionScaling([]int{1, 16, 64, 256}, calls)
	if err != nil {
		fmt.Printf("  error: %v\n", err)
		return
	}
	for _, r := range rows {
		em.add(experiments.Record{
			Experiment: "e10",
			Scenario:   r.Mode,
			Params:     map[string]float64{"bindings": float64(r.Bindings)},
			Metrics: map[string]float64{
				"conns":            float64(r.Conns),
				"dials":            float64(r.Dials),
				"heap_per_binding": float64(r.HeapPerB),
				"p50_us":           float64(r.P50.Microseconds()),
				"p99_us":           float64(r.P99.Microseconds()),
			},
		})
	}
	if em.json {
		return
	}
	fmt.Printf("  %-24s %6s %6s %12s %10s %10s\n",
		"mode/bindings", "conns", "dials", "heapB/bind", "p50", "p99")
	for _, r := range rows {
		fmt.Printf("  %-24s %6d %6d %12d %10v %10v\n",
			fmt.Sprintf("%s/n=%d", r.Mode, r.Bindings),
			r.Conns, r.Dials, r.HeapPerB, r.P50, r.P99)
	}
	fmt.Println()
}

func section(em *emitter, title string) {
	if em.json {
		return
	}
	fmt.Println(title)
}

func blank(em *emitter) {
	if em.json {
		return
	}
	fmt.Println()
}

func runTable(em *emitter, expID string, iters int, scenarios []experiments.Scenario) {
	if iters < 10 {
		iters = 10
	}
	if !em.json {
		fmt.Printf("  %-40s %14s %12s\n", "scenario", "ns/op", "ops/sec")
	}
	for _, s := range scenarios {
		// Warm up, then measure.
		for i := 0; i < iters/10; i++ {
			if err := s.Run(); err != nil {
				fmt.Printf("  %-40s error: %v\n", s.Name, err)
				break
			}
		}
		start := time.Now()
		var failed error
		for i := 0; i < iters; i++ {
			if err := s.Run(); err != nil {
				failed = err
				break
			}
		}
		elapsed := time.Since(start)
		if failed != nil {
			fmt.Printf("  %-40s error: %v\n", s.Name, failed)
			continue
		}
		nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
		em.add(experiments.Record{
			Experiment: expID,
			Scenario:   s.Name,
			Metrics: map[string]float64{
				"ns_per_op": nsPerOp,
				"ops_sec":   1e9 / nsPerOp,
			},
		})
		if !em.json {
			fmt.Printf("  %-40s %14.0f %12.0f\n", s.Name, nsPerOp, 1e9/nsPerOp)
		}
	}
	for _, s := range scenarios {
		s.Close()
	}
	blank(em)
}
