// Command odpbench regenerates every experiment in EXPERIMENTS.md as
// formatted tables: the per-figure micro-benchmarks (E1–E9) plus the two
// behavioural measurements that are not ns/op-shaped — relocation
// recovery latency and failure masking under loss.
//
// Usage:
//
//	odpbench            # run everything
//	odpbench -iters N   # samples per scenario (default 2000)
//	odpbench -only e10  # just the session-multiplexing table (CI smoke)
//	odpbench -only e11 -dur 10s  # the chaos experiment, policy on vs off
//	odpbench -only e12  # pipelining/batching grid, sim + loopback TCP
//	odpbench -only e12smoke -json  # the CI cell (tcp, 64x8) as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	iters := flag.Int("iters", 2000, "samples per scenario")
	only := flag.String("only", "", "run only the named section (supported: e10, e11, e12, e12smoke)")
	dur := flag.Duration("dur", 6*time.Second, "per-mode wall-clock duration of the e11 chaos run")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables (e12/e12smoke only)")
	flag.Parse()

	if *only == "e12" || *only == "e12smoke" {
		// JSON mode keeps stdout clean for the CI gate's parser.
		runE12(*only == "e12smoke", *asJSON, *iters)
		return
	}

	fmt.Println("RM-ODP reproduction — experiment tables (see EXPERIMENTS.md)")
	fmt.Println()

	if *only == "e10" {
		runE10(*iters)
		return
	}
	if *only == "e11" {
		runE11(*dur)
		return
	}

	section("E1  Figure 1: cross-viewpoint consistency check")
	runTable(*iters, []experiments.Scenario{experiments.E1Consistency()})

	section("E2  Figure 2: bank branch invocations (channel + ACID refinement)")
	runTable(*iters, experiments.E2Bank())

	section("E3  Figure 3: interface subtype checking")
	runTable(*iters, experiments.E3Subtype())

	section("E4  Figure 4: channel composition ablation")
	runTable(*iters*10, experiments.E4Codec())
	runTable(*iters, experiments.E4Channel())

	section("E5  Figure 5: engineering structures")
	runTable(*iters/4, experiments.E5Structure())

	section("E6  Section 9: transparency ablation")
	runTable(*iters, experiments.E6Transparency())

	section("E6b Relocation transparency: binding recovery across migration")
	samples, err := experiments.E6RelocationRecovery(20)
	if err != nil {
		fmt.Printf("  error: %v\n", err)
	} else {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		fmt.Printf("  %-36s %12s %12s %12s\n", "scenario", "p50", "p90", "max")
		fmt.Printf("  %-36s %12v %12v %12v\n", "first-call-after-migration",
			samples[len(samples)/2], samples[len(samples)*9/10], samples[len(samples)-1])
	}
	fmt.Println()

	section("E6c Failure transparency: success rate over a lossy link (drop=30% each way)")
	withR, withoutR, err := experiments.E6FailureMasking(0.3, 200)
	if err != nil {
		fmt.Printf("  error: %v\n", err)
	} else {
		fmt.Printf("  %-36s %8s\n", "configuration", "ok/200")
		fmt.Printf("  %-36s %8d\n", "failure transparency (25 retries)", withR)
		fmt.Printf("  %-36s %8d\n", "no retries", withoutR)
	}
	fmt.Println()

	section("E6d Replication scaling: group update vs replica count (latent links)")
	runTable(*iters/10, experiments.E6ReplicationScaling())

	section("E7  Section 8.2.1: ACID transaction function")
	runTable(*iters, experiments.E7Transactions())

	section("E7b Durable 2PC: commit vs participant count (forced-log delay)")
	runTable(*iters/10, experiments.E7DurableCommit())

	section("E8  Section 8.3.2: trading function")
	runTable(*iters/4, experiments.E8Trader())

	section("E8b Trader scaling: indexed import and parallel federation")
	runTable(*iters/10, experiments.E8TraderScaling())
	runTable(*iters/10, experiments.E8FederationParallel())

	section("E9  Section 8.1: management & observability overhead")
	runTable(*iters, experiments.E9Overhead())

	runE10(*iters)
	runE11(*dur)
	runE12(false, false, *iters)
}

// runE12 prints (or, for the CI gate, emits as JSON) the pipelining and
// frame-batching grid: invocation throughput and latency for batched vs
// unbatched data planes across bindings × in-flight, on the simulated
// network and on real loopback TCP. smoke restricts the grid to the CI
// cell (tcp, 64 bindings × 8 in-flight) plus the single-call latency
// cell (tcp, 1×1) that guards against batching taxing the idle path.
func runE12(smoke, asJSON bool, iters int) {
	type sweep struct {
		transport          string
		bindings, inflight []int
	}
	budget := iters * 4 // per-cell invocation budget
	if budget < 2000 {
		budget = 2000
	}
	sweeps := []sweep{
		{"sim", []int{1, 64, 256}, []int{1, 8, 64}},
		{"tcp", []int{1, 64, 256}, []int{1, 8, 64}},
	}
	if smoke {
		sweeps = []sweep{{"tcp", []int{1, 64}, []int{1, 8}}}
	}
	var rows []experiments.E12PipelineRow
	for _, sw := range sweeps {
		r, err := experiments.E12Pipeline(sw.transport, sw.bindings, sw.inflight, budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "e12 %s: %v\n", sw.transport, err)
			os.Exit(1)
		}
		rows = append(rows, r...)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintf(os.Stderr, "e12 encode: %v\n", err)
			os.Exit(1)
		}
		return
	}
	section("E12 Invocation pipelining + adaptive frame batching: throughput vs data plane")
	fmt.Printf("  %-28s %10s %12s %10s %10s\n",
		"transport/mode/n×k", "calls", "calls/sec", "p50", "p99")
	for _, r := range rows {
		fmt.Printf("  %-28s %10d %12.0f %10v %10v\n",
			fmt.Sprintf("%s/%s/n=%d k=%d", r.Transport, r.Mode, r.Bindings, r.InFlight),
			r.Calls, r.Throughput, r.P50, r.P99)
	}
	fmt.Println()
}

// runE11 prints the chaos table: the same replicated bank workload under
// the same fault script, with the failure-policy layer on and off.
func runE11(dur time.Duration) {
	section("E11 Failure transparency under chaos: crash/restart + 2-node outage + link squeeze")
	type row struct {
		name string
		rep  experiments.E11Report
	}
	var rows []row
	for _, on := range []bool{true, false} {
		rep, err := experiments.E11Chaos(dur, on)
		if err != nil {
			fmt.Printf("  error (policyOn=%v): %v\n", on, err)
			return
		}
		rows = append(rows, row{rep.Mode, rep})
	}
	fmt.Printf("  %-12s %6s %9s %9s %9s %10s %10s %9s %7s %7s %7s\n",
		"mode", "ops", "avail", "av.fault", "av.heal", "p99.fault", "p99.heal", "ttr", "opens", "retry", "stale")
	for _, r := range rows {
		ttr := "never"
		if r.rep.TimeToRecover >= 0 {
			ttr = r.rep.TimeToRecover.Round(time.Millisecond).String()
		}
		fmt.Printf("  %-12s %6d %8.2f%% %8.2f%% %8.2f%% %10v %10v %9s %7d %7d %7d\n",
			r.name, r.rep.Ops,
			100*r.rep.Availability, 100*r.rep.AvailabilityFaults, 100*r.rep.AvailabilityHealed,
			r.rep.P99Faults.Round(time.Millisecond), r.rep.P99Healed.Round(time.Millisecond),
			ttr, r.rep.BreakerOpens, r.rep.Retries, r.rep.DegradedReads)
	}
	for _, r := range rows {
		if len(r.rep.Errors) == 0 {
			continue
		}
		keys := make([]string, 0, len(r.rep.Errors))
		for k := range r.rep.Errors {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  %s errors:", r.name)
		for _, k := range keys {
			fmt.Printf(" %s=%d", k, r.rep.Errors[k])
		}
		fmt.Println()
	}
	fmt.Println("  fault timeline (policy-on run):")
	for _, line := range strings.Split(strings.TrimRight(rows[0].rep.Timeline, "\n"), "\n") {
		fmt.Println("    " + line)
	}
	if rows[0].rep.StaleTrace != "" {
		fmt.Println("  one degraded read, traced (staleness flag is the marker span):")
		for _, line := range strings.Split(strings.TrimRight(rows[0].rep.StaleTrace, "\n"), "\n") {
			fmt.Println("    " + line)
		}
	}
	fmt.Println()
}

// runE10 prints the session-multiplexing table: connections, dials, heap
// and latency against binding count, shared session manager vs one
// manager per binding.
func runE10(iters int) {
	section("E10 Session multiplexing: N bindings to one node, shared vs per-binding sessions")
	calls := iters / 100
	if calls < 10 {
		calls = 10
	}
	rows, err := experiments.E10SessionScaling([]int{1, 16, 64, 256}, calls)
	if err != nil {
		fmt.Printf("  error: %v\n", err)
		return
	}
	fmt.Printf("  %-24s %6s %6s %12s %10s %10s\n",
		"mode/bindings", "conns", "dials", "heapB/bind", "p50", "p99")
	for _, r := range rows {
		fmt.Printf("  %-24s %6d %6d %12d %10v %10v\n",
			fmt.Sprintf("%s/n=%d", r.Mode, r.Bindings),
			r.Conns, r.Dials, r.HeapPerB, r.P50, r.P99)
	}
	fmt.Println()
}

func section(title string) {
	fmt.Println(title)
}

func runTable(iters int, scenarios []experiments.Scenario) {
	if iters < 10 {
		iters = 10
	}
	fmt.Printf("  %-40s %14s %12s\n", "scenario", "ns/op", "ops/sec")
	for _, s := range scenarios {
		// Warm up, then measure.
		for i := 0; i < iters/10; i++ {
			if err := s.Run(); err != nil {
				fmt.Printf("  %-40s error: %v\n", s.Name, err)
				break
			}
		}
		start := time.Now()
		var failed error
		for i := 0; i < iters; i++ {
			if err := s.Run(); err != nil {
				failed = err
				break
			}
		}
		elapsed := time.Since(start)
		if failed != nil {
			fmt.Printf("  %-40s error: %v\n", s.Name, failed)
			continue
		}
		nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
		fmt.Printf("  %-40s %14.0f %12.0f\n", s.Name, nsPerOp, 1e9/nsPerOp)
	}
	for _, s := range scenarios {
		s.Close()
	}
	fmt.Println()
}
