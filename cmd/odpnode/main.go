// Command odpnode hosts an ODP engineering node over real TCP, or invokes
// an interface on one — the multi-process path of the stack (everything
// else in this repository also runs on the simulated network).
//
// Serve a counter object:
//
//	odpnode -serve -listen tcp://127.0.0.1:9000 -behavior counter
//
// It prints one line per interface:
//
//	<interface-id> <type> <endpoint>
//
// Unless -mgmt=false, the last line is a Management interface: point
// cmd/odpstat at it to dump the node's metrics, QoS state and traces.
//
// Invoke from another process:
//
//	odpnode -call '<interface-id>' -endpoint tcp://127.0.0.1:9000 -op Inc -args 5
//
// Arguments are comma-separated; integers, true/false and quoted text are
// recognised, everything else travels as a string.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/bank"
	"repro/internal/channel"
	"repro/internal/engineering"
	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/transactions"
	"repro/internal/types"
	"repro/internal/values"
)

func main() {
	var (
		serve    = flag.Bool("serve", false, "host a node")
		listen   = flag.String("listen", "tcp://127.0.0.1:0", "listen endpoint (serve mode)")
		behavior = flag.String("behavior", "counter", "object to host: counter | greeter | bank")
		nodeName = flag.String("node", "node1", "node name (serve mode)")
		call     = flag.String("call", "", "interface id to invoke (call mode)")
		endpoint = flag.String("endpoint", "", "endpoint of the target interface (call mode)")
		op       = flag.String("op", "", "operation name (call mode)")
		argsCSV  = flag.String("args", "", "comma-separated operation arguments (call mode)")
		manage   = flag.Bool("mgmt", true, "serve the Management interface beside the application (serve mode)")
	)
	flag.Parse()

	switch {
	case *serve:
		runServe(*nodeName, *listen, *behavior, *manage)
	case *call != "":
		runCall(*call, *endpoint, *op, *argsCSV)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

type counter struct{ n int64 }

func (c *counter) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	if op == "Inc" {
		d, _ := args[0].AsInt()
		c.n += d
	}
	return "OK", []values.Value{values.Int(c.n)}, nil
}

func counterType() *types.Interface {
	return types.OpInterface("Counter",
		types.Op("Inc", types.Params(types.P("d", values.TInt())),
			types.Term("OK", types.P("n", values.TInt()))),
		types.Op("Get", nil, types.Term("OK", types.P("n", values.TInt()))),
	)
}

type greeter struct{}

func (greeter) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	name := "world"
	if len(args) == 1 {
		if s, ok := args[0].AsString(); ok {
			name = s
		}
	}
	return "OK", []values.Value{values.Str("hello, " + name)}, nil
}

func greeterType() *types.Interface {
	return types.OpInterface("Greeter",
		types.Op("Greet", types.Params(types.P("name", values.TString())),
			types.Term("OK", types.P("message", values.TString()))),
	)
}

func runServe(nodeName, listen, behavior string, manage bool) {
	var domain *mgmt.Management
	server := channel.ServerConfig{ReplayGuard: true}
	if manage {
		domain = mgmt.New()
		server.Instruments = domain.ChannelServer(nodeName)
	}
	node, err := engineering.NewNode(engineering.NodeConfig{
		ID:        naming.NodeID(nodeName),
		Endpoint:  naming.Endpoint(listen),
		Transport: netsim.NewTCP(),
		Server:    server,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	node.Behaviors().Register("counter", func(values.Value) (engineering.Behavior, error) {
		return &counter{}, nil
	})
	node.Behaviors().Register("greeter", func(values.Value) (engineering.Behavior, error) {
		return greeter{}, nil
	})
	coord := transactions.NewCoordinator()
	coord.Instrument(domain.Tx(nodeName))
	store := transactions.NewStore("branch", nil)
	bank.RegisterBehavior(node.Behaviors(), coord, store)

	capsule, err := node.CreateCapsule()
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		log.Fatal(err)
	}

	var ifaces []*types.Interface
	behaviorName := behavior
	switch behavior {
	case "counter":
		ifaces = []*types.Interface{counterType()}
	case "greeter":
		ifaces = []*types.Interface{greeterType()}
	case "bank":
		behaviorName = "bank.branch"
		ifaces = []*types.Interface{bank.TellerType(), bank.ManagerType(), bank.LoansOfficerType()}
	default:
		log.Fatalf("unknown behavior %q (counter | greeter | bank)", behavior)
	}
	obj, err := cluster.CreateObject(behaviorName, values.Null())
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range ifaces {
		ref, err := obj.AddInterface(it)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %s %s\n", ref.ID, ref.TypeName, node.Endpoint())
	}
	if domain != nil {
		// The management interface is an ordinary operational interface on
		// an ordinary object: odpstat reaches the node's observability
		// through the same channel machinery it observes.
		node.Behaviors().Register("mgmt", func(values.Value) (engineering.Behavior, error) {
			return channel.HandlerFunc(domain.ServeInvoke), nil
		})
		mobj, err := cluster.CreateObject("mgmt", values.Null())
		if err != nil {
			log.Fatal(err)
		}
		ref, err := mobj.AddInterface(mgmt.InterfaceType())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %s %s\n", ref.ID, ref.TypeName, node.Endpoint())
	}
	fmt.Fprintf(os.Stderr, "odpnode: serving %s at %s; ctrl-c to stop\n", behavior, node.Endpoint())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func runCall(ifaceID, endpoint, op, argsCSV string) {
	if endpoint == "" || op == "" {
		log.Fatal("call mode needs -endpoint and -op")
	}
	id, err := naming.ParseInterfaceID(ifaceID)
	if err != nil {
		log.Fatal(err)
	}
	b, err := channel.Bind(naming.InterfaceRef{
		ID:       id,
		Endpoint: naming.Endpoint(endpoint),
	}, channel.BindConfig{Transport: netsim.NewTCP()})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	term, results, err := b.Invoke(context.Background(), op, parseArgs(argsCSV))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("termination: %s\n", term)
	for i, r := range results {
		fmt.Printf("result[%d]:   %s\n", i, r)
	}
}

func parseArgs(csv string) []values.Value {
	if strings.TrimSpace(csv) == "" {
		return nil
	}
	parts := strings.Split(csv, ",")
	out := make([]values.Value, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		switch {
		case p == "true":
			out = append(out, values.Bool(true))
		case p == "false":
			out = append(out, values.Bool(false))
		default:
			if n, err := strconv.ParseInt(p, 10, 64); err == nil {
				out = append(out, values.Int(n))
				continue
			}
			out = append(out, values.Str(strings.Trim(p, `'"`)))
		}
	}
	return out
}
