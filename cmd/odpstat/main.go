// Command odpstat renders the management view of an ODP node: metrics,
// QoS envelope state and channel-stage traces, fetched over the node's
// own Management interface (the subsystem is reached through the same
// channel machinery it observes).
//
// Against a served node (take the Management line from odpnode's output):
//
//	odpstat -id '<interface-id>' -endpoint tcp://127.0.0.1:9000
//	odpstat -id '<interface-id>' -endpoint tcp://127.0.0.1:9000 -op Traces
//	odpstat -id '<interface-id>' -endpoint tcp://127.0.0.1:9000 -op Trace -trace <hex-id>
//	odpstat -id '<interface-id>' -endpoint tcp://127.0.0.1:9000 -op Health
//
// -op Health renders the node's failure-detector instruments as a
// liveness table (state and suspicion per watched endpoint, probe and
// miss counters, RTT summary) followed by the circuit-breaker state per
// failure-policy bundle. The rendering is client-side over the plain
// Metrics dump, so any node with EnableHealth and management serves it.
//
// Standalone demo — build a two-replica transactional bank in-process,
// run one traced deposit and print its span tree:
//
//	odpstat -demo
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/values"
)

func main() {
	var (
		id       = flag.String("id", "", "interface id of the node's Management interface")
		endpoint = flag.String("endpoint", "", "endpoint of the node")
		op       = flag.String("op", "Dump", "management operation: Dump | Metrics | Traces | Trace | Health")
		trace    = flag.String("trace", "", "trace id (hex) for -op Trace")
		demo     = flag.Bool("demo", false, "run the in-process traced-transfer demo and exit")
	)
	flag.Parse()

	if *demo {
		runDemo()
		return
	}
	if *id == "" || *endpoint == "" {
		flag.Usage()
		os.Exit(2)
	}
	runFetch(*id, *endpoint, *op, *trace)
}

func runFetch(ifaceID, endpoint, op, trace string) {
	id, err := naming.ParseInterfaceID(ifaceID)
	if err != nil {
		log.Fatal(err)
	}
	b, err := channel.Bind(naming.InterfaceRef{
		ID:       id,
		Endpoint: naming.Endpoint(endpoint),
	}, channel.BindConfig{Transport: netsim.NewTCP()})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()

	// Health is a client-side rendering of the node's metric dump: the
	// node serves raw instruments, odpstat shapes the liveness table.
	renderer := func(s string) string { return s }
	if op == "Health" {
		op, renderer = "Metrics", renderHealth
	}

	var args []values.Value
	if op == "Trace" {
		if trace == "" {
			log.Fatal("-op Trace needs -trace <hex-id>")
		}
		n, err := strconv.ParseUint(trace, 16, 64)
		if err != nil {
			log.Fatalf("bad trace id %q: %v", trace, err)
		}
		args = []values.Value{values.Uint(n)}
	}
	term, results, err := b.Invoke(context.Background(), op, args)
	if err != nil {
		log.Fatal(err)
	}
	if term != "OK" {
		detail := ""
		if len(results) > 0 {
			if s, ok := results[0].AsString(); ok {
				detail = ": " + s
			}
		}
		log.Fatalf("%s%s", term, detail)
	}
	for _, r := range results {
		if s, ok := r.AsString(); ok {
			fmt.Print(renderer(s))
		}
	}
}

func runDemo() {
	spans, text, err := experiments.E9TracedTransfer()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one replicated, transactional bank deposit — %d spans:\n\n", len(spans))
	fmt.Print(text)
}
