package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/health"
)

// The health view is client-side: odpstat fetches the node's raw metric
// dump (the Metrics operation) and renders the failure-detector gauges —
// health.<endpoint>.state / .suspicion plus the probe counters — as a
// liveness table, with the circuit-breaker rows from policy.* below it.
// The node side needs nothing beyond EnableHealth with management on.

// endpointHealth is one watched endpoint's row, assembled from the
// health.<endpoint>.* instruments in a metrics dump.
type endpointHealth struct {
	endpoint    string
	state       int64 // health.State numeric value, -1 when absent
	suspicion   int64 // per-mille, 0..1000
	probes      int64
	misses      int64
	transitions int64
	rtt         string // histogram summary as dumped, "" when unprobed
}

// breakerHealth is one failure-policy bundle's breaker summary.
type breakerHealth struct {
	name                            string // "" = the unnamed policy.* bundle
	openNow                         int64
	opens, closes, probes, rejected int64
}

// breakerFields are the policy.* instruments the breaker table shows,
// longest first so "breaker.open_now" wins over "breaker.open".
var breakerFields = []string{
	"breaker.open_now", "breaker.rejected", "breaker.probes",
	"breaker.close", "breaker.open",
}

// renderHealth turns a Registry.Dump into the liveness + breaker view.
func renderHealth(metrics string) string {
	eps := map[string]*endpointHealth{}
	brs := map[string]*breakerHealth{}
	ep := func(name string) *endpointHealth {
		e := eps[name]
		if e == nil {
			e = &endpointHealth{endpoint: name, state: -1}
			eps[name] = e
		}
		return e
	}

	for _, line := range strings.Split(metrics, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		kind, name := fields[0], fields[1]
		if rest, ok := strings.CutPrefix(name, "health."); ok {
			// The endpoint is everything up to the last dot — watch
			// keys may themselves contain dots (host:port endpoints).
			i := strings.LastIndex(rest, ".")
			if i < 0 {
				continue
			}
			endpoint, field := rest[:i], rest[i+1:]
			if kind == "histogram" && field == "rtt_ns" {
				ep(endpoint).rtt = strings.Join(fields[2:], " ")
				continue
			}
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				continue
			}
			switch field {
			case "state":
				ep(endpoint).state = n
			case "suspicion":
				ep(endpoint).suspicion = n
			case "probes":
				ep(endpoint).probes = n
			case "misses":
				ep(endpoint).misses = n
			case "transitions":
				ep(endpoint).transitions = n
			}
			continue
		}
		if rest, ok := strings.CutPrefix(name, "policy."); ok {
			bundle, field, ok := splitBreaker(rest)
			if !ok {
				continue // retry.* and other non-breaker policy metrics
			}
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				continue
			}
			b := brs[bundle]
			if b == nil {
				b = &breakerHealth{name: bundle}
				brs[bundle] = b
			}
			switch field {
			case "breaker.open_now":
				b.openNow = n
			case "breaker.open":
				b.opens = n
			case "breaker.close":
				b.closes = n
			case "breaker.probes":
				b.probes = n
			case "breaker.rejected":
				b.rejected = n
			}
		}
	}

	var b strings.Builder
	if len(eps) == 0 {
		b.WriteString("no health instruments — is the failure detector enabled on this node?\n")
	} else {
		names := make([]string, 0, len(eps))
		for n := range eps {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%-24s %-8s %9s %8s %8s %6s  %s\n",
			"endpoint", "state", "suspicion", "probes", "misses", "trans", "rtt")
		for _, n := range names {
			e := eps[n]
			rtt := e.rtt
			if rtt == "" {
				rtt = "-"
			}
			fmt.Fprintf(&b, "%-24s %-8s %8.1f%% %8d %8d %6d  %s\n",
				e.endpoint, stateName(e.state), float64(e.suspicion)/10,
				e.probes, e.misses, e.transitions, rtt)
		}
	}
	if len(brs) > 0 {
		names := make([]string, 0, len(brs))
		for n := range brs {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "\n%-24s %8s %8s %8s %8s %8s\n",
			"breakers", "open now", "opens", "closes", "probes", "rejects")
		for _, n := range names {
			r := brs[n]
			label := n
			if label == "" {
				label = "(default)"
			}
			fmt.Fprintf(&b, "%-24s %8d %8d %8d %8d %8d\n",
				label, r.openNow, r.opens, r.closes, r.probes, r.rejected)
		}
	}
	return b.String()
}

// splitBreaker maps the part of a metric name after "policy." to a
// (bundle, breaker field) pair: "breaker.open" is the unnamed bundle,
// "t.breaker.open" is bundle "t". Non-breaker policy metrics (retry.*)
// report ok=false.
func splitBreaker(rest string) (bundle, field string, ok bool) {
	for _, f := range breakerFields {
		if rest == f {
			return "", f, true
		}
		if strings.HasSuffix(rest, "."+f) {
			return rest[:len(rest)-len(f)-1], f, true
		}
	}
	return "", "", false
}

func stateName(v int64) string {
	if v < 0 {
		return "?"
	}
	return health.State(v).String()
}
