package main

import (
	"strings"
	"testing"

	"repro/internal/health"
	"repro/internal/mgmt"
)

// TestRenderHealth feeds a real Registry dump — populated through the
// same mgmt.Health / mgmt.Policy bundles the detector and breaker set
// write — through the client-side renderer and checks the table rows.
func TestRenderHealth(t *testing.T) {
	m := mgmt.New()

	n1 := m.Health("n1")
	n1.State.Set(int64(health.Alive))
	n1.Suspicion.Set(0)
	n1.Probes.Add(120)
	n1.Transitions.Add(1)
	n1.RTT.Observe(250_000)

	// A dotted watch key must not split wrong.
	h2 := m.Health("10.0.0.2:9000")
	h2.State.Set(int64(health.Dead))
	h2.Suspicion.Set(1000)
	h2.Probes.Add(80)
	h2.Misses.Add(6)
	h2.Transitions.Add(2)

	def := m.Policy("")
	def.BreakerOpens.Add(3)
	def.BreakerCloses.Add(2)
	def.BreakersOpen.Set(1)
	def.Rejected.Add(14)
	named := m.Policy("t")
	named.Probes.Add(5)

	out := renderHealth(m.Registry.Dump())

	for _, row := range []string{"endpoint", "breakers"} {
		if !strings.Contains(out, row) {
			t.Fatalf("missing %q header in:\n%s", row, out)
		}
	}
	lines := strings.Split(out, "\n")
	find := func(prefix string) string {
		t.Helper()
		for _, l := range lines {
			if strings.HasPrefix(l, prefix) {
				return l
			}
		}
		t.Fatalf("no row starting %q in:\n%s", prefix, out)
		return ""
	}

	if l := find("n1 "); !strings.Contains(l, "alive") || !strings.Contains(l, "0.0%") ||
		!strings.Contains(l, "120") || !strings.Contains(l, "p50") {
		t.Fatalf("n1 row wrong: %q", l)
	}
	if l := find("10.0.0.2:9000 "); !strings.Contains(l, "dead") || !strings.Contains(l, "100.0%") ||
		!strings.Contains(l, "6") {
		t.Fatalf("dotted-endpoint row wrong: %q", l)
	}
	if l := find("(default) "); !strings.Contains(l, "1") || !strings.Contains(l, "14") {
		t.Fatalf("default breaker row wrong: %q", l)
	}
	if l := find("t "); !strings.Contains(l, "5") {
		t.Fatalf("named breaker row wrong: %q", l)
	}

	// No health instruments at all: a hint, not an empty table.
	if out := renderHealth("counter   chan.invocations    9\n"); !strings.Contains(out, "failure detector") {
		t.Fatalf("empty-dump rendering = %q", out)
	}
}
