// Command bankdemo runs the tutorial's bank on a two-node ODP system and
// exercises the engineering machinery under load: customers keep
// depositing and withdrawing while the branch's cluster migrates between
// nodes. The clients never see the move — their binders re-resolve
// through the relocator and replay (relocation transparency, Section 9.2).
//
// Usage:
//
//	bankdemo [-customers N] [-ops N] [-migrations N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/odp"
	"repro/internal/transactions"
	"repro/internal/values"
)

func main() {
	customers := flag.Int("customers", 4, "concurrent customers")
	ops := flag.Int("ops", 200, "operations per customer")
	migrations := flag.Int("migrations", 3, "live migrations during the run")
	flag.Parse()

	system := odp.NewSystem(2026)
	defer system.Close()

	coord := transactions.NewCoordinator()
	store := transactions.NewStore("branch-cbd", nil)
	nodeA, err := system.CreateNode("alpha")
	must(err)
	nodeB, err := system.CreateNode("beta")
	must(err)
	bank.RegisterBehavior(nodeA.Behaviors(), coord, store)
	bank.RegisterBehavior(nodeB.Behaviors(), coord, store)

	dep, err := system.Deploy(nodeA, bank.Template("branch-cbd"), values.Record(
		values.F("city", values.Str("brisbane")),
	))
	must(err)
	fmt.Printf("deployed branch on %s with interfaces:\n", nodeA.ID())
	for name, ref := range dep.Refs {
		fmt.Printf("  %-14s %s\n", name, ref)
	}

	contract := core.Contract{Require: core.TransparencySet(
		core.Access | core.Location | core.Relocation | core.Failure | core.Transaction)}
	ctx := context.Background()

	// The manager opens one account per customer.
	manager, err := system.ImportAndBind("branch-office", "BankManager", "", contract)
	must(err)
	defer manager.Close()
	accounts := make([]string, *customers)
	for i := range accounts {
		who := fmt.Sprintf("customer-%d", i)
		term, res, err := manager.Invoke(ctx, "CreateAccount", []values.Value{values.Str(who)})
		must(err)
		if term != "OK" {
			log.Fatalf("CreateAccount: %s", term)
		}
		accounts[i], _ = res[0].AsString()
		_, _, err = manager.Invoke(ctx, "Deposit",
			[]values.Value{values.Str(who), values.Str(accounts[i]), values.Int(10_000)})
		must(err)
	}

	// Customers hammer the branch while migrations happen underneath.
	var okOps, denied atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < *customers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			who := fmt.Sprintf("customer-%d", i)
			binding, err := system.ImportAndBind(who, "BankTeller", "city == 'brisbane'", contract)
			if err != nil {
				log.Printf("%s: bind: %v", who, err)
				return
			}
			defer binding.Close()
			for n := 0; n < *ops; n++ {
				op, amount := "Deposit", int64(2)
				if n%2 == 1 {
					op, amount = "Withdraw", 1
				}
				term, _, err := binding.Invoke(ctx, op,
					[]values.Value{values.Str(who), values.Str(accounts[i]), values.Int(amount)})
				if err != nil {
					log.Printf("%s: %s: %v", who, op, err)
					return
				}
				switch term {
				case "OK":
					okOps.Add(1)
				case "NotToday":
					denied.Add(1)
				}
			}
		}(i)
	}

	// Live migrations, ping-ponging the cluster between the nodes.
	capsuleB, err := nodeB.CreateCapsule()
	must(err)
	capsuleA, err := nodeA.CreateCapsule()
	must(err)
	cluster := dep.Cluster
	homes := []string{"alpha", "beta"}
	for m := 0; m < *migrations; m++ {
		dst := capsuleB
		if m%2 == 1 {
			dst = capsuleA
		}
		nk, err := cluster.MigrateTo(dst)
		must(err)
		cluster = nk
		fmt.Printf("migrated branch -> %s (epoch advances; clients unaware)\n", homes[(m+1)%2])
	}
	wg.Wait()

	fmt.Printf("\nresults: %d successful operations, %d denied by the daily limit, 0 client-visible failures\n",
		okOps.Load(), denied.Load())

	// The books still balance: every account holds 10_000 + deposits - withdrawals.
	teller, err := system.ImportAndBind("auditor", "BankTeller", "", contract)
	must(err)
	defer teller.Close()
	for i, acct := range accounts {
		who := fmt.Sprintf("customer-%d", i)
		term, res, err := teller.Invoke(ctx, "Balance", []values.Value{values.Str(who), values.Str(acct)})
		must(err)
		if term != "OK" {
			log.Fatalf("Balance: %s", term)
		}
		b, _ := res[0].AsInt()
		fmt.Printf("  %s %s balance=%d\n", who, acct, b)
	}
	lookups, misses, relocates := system.Relocator.Stats()
	fmt.Printf("relocator: %d lookups, %d misses, %d relocations\n", lookups, misses, relocates)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
