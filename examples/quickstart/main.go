// Command quickstart is the smallest complete ODP application: one node,
// one computational object offering one operational interface, exported
// through the trader, imported and invoked by a client — the trade-then-
// bind cycle that every larger example builds on.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engineering"
	"repro/internal/odp"
	"repro/internal/types"
	"repro/internal/values"
)

// greeter is the application behaviour: a computational object
// encapsulating one piece of state (its greeting) and offering it through
// an operation.
type greeter struct {
	greeting string
}

func (g *greeter) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	switch op {
	case "Greet":
		name, _ := args[0].AsString()
		return "OK", []values.Value{values.Str(g.greeting + ", " + name + "!")}, nil
	}
	return "", nil, fmt.Errorf("greeter: no operation %q", op)
}

// greeterType is the interface type, declared with the builder API.
func greeterType() *types.Interface {
	return types.OpInterface("Greeter",
		types.Op("Greet",
			types.Params(types.P("name", values.TString())),
			types.Term("OK", types.P("message", values.TString())),
		),
	)
}

func main() {
	// 1. An ODP system: simulated network + infrastructure objects
	//    (type repository, trader, relocator).
	system := odp.NewSystem(42)
	defer system.Close()

	// 2. An engineering node (Figure 5: nucleus + capsules + clusters).
	node, err := system.CreateNode("alpha")
	if err != nil {
		log.Fatal(err)
	}
	node.Behaviors().Register("greeter", func(arg values.Value) (engineering.Behavior, error) {
		greeting, _ := arg.AsString()
		return &greeter{greeting: greeting}, nil
	})

	// 3. Deploy a computational object template: behaviour + interface +
	//    environment contract. Deployment registers the type, publishes
	//    the location and exports a trader offer.
	tmpl := core.ObjectTemplate{
		Name:     "hello-service",
		Behavior: "greeter",
		Arg:      values.Str("Hello"),
		Interfaces: []core.InterfaceDecl{{
			Type: greeterType(),
			Contract: core.Contract{
				Require: core.TransparencySet(core.Access | core.Location | core.Failure),
			},
		}},
	}
	if _, err := system.Deploy(node, tmpl, values.Record(
		values.F("lang", values.Str("en")),
	)); err != nil {
		log.Fatal(err)
	}

	// 4. The client side: import by service type + constraint, bind under
	//    a contract, invoke.
	binding, err := system.ImportAndBind("client", "Greeter", "lang == 'en'",
		core.Contract{Require: core.TransparencySet(core.Access | core.Location | core.Failure)})
	if err != nil {
		log.Fatal(err)
	}
	defer binding.Close()

	term, results, err := binding.Invoke(context.Background(), "Greet",
		[]values.Value{values.Str("world")})
	if err != nil {
		log.Fatal(err)
	}
	msg, _ := results[0].AsString()
	fmt.Printf("termination: %s\nmessage:     %s\n", term, msg)
}
