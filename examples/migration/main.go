// Command migration demonstrates relocation and migration transparency:
// a counter object's cluster migrates between two nodes while a client
// keeps invoking it. The client's binder notices the stale location,
// re-resolves through the relocator and replays — the client code itself
// contains no recovery logic at all.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engineering"
	"repro/internal/odp"
	"repro/internal/types"
	"repro/internal/values"
)

type counter struct{ n int64 }

func (c *counter) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	if op == "Inc" {
		d, _ := args[0].AsInt()
		c.n += d
	}
	return "OK", []values.Value{values.Int(c.n)}, nil
}

func (c *counter) CheckpointState() (values.Value, error) { return values.Int(c.n), nil }
func (c *counter) RestoreState(v values.Value) error {
	c.n, _ = v.AsInt()
	return nil
}

func counterType() *types.Interface {
	return types.OpInterface("Counter",
		types.Op("Inc", types.Params(types.P("d", values.TInt())),
			types.Term("OK", types.P("n", values.TInt()))),
		types.Op("Get", nil, types.Term("OK", types.P("n", values.TInt()))),
	)
}

func main() {
	system := odp.NewSystem(3)
	defer system.Close()

	factory := func(values.Value) (engineering.Behavior, error) { return &counter{}, nil }
	nodeA, err := system.CreateNode("alpha")
	if err != nil {
		log.Fatal(err)
	}
	nodeA.Behaviors().Register("counter", factory)
	nodeB, err := system.CreateNode("beta")
	if err != nil {
		log.Fatal(err)
	}
	nodeB.Behaviors().Register("counter", factory)

	tmpl := core.ObjectTemplate{
		Name:     "migratable-counter",
		Behavior: "counter",
		Interfaces: []core.InterfaceDecl{{
			Type: counterType(),
			Contract: core.Contract{
				Require: core.TransparencySet(core.Location | core.Relocation | core.Migration | core.Failure),
			},
		}},
	}
	dep, err := system.Deploy(nodeA, tmpl, values.Null())
	if err != nil {
		log.Fatal(err)
	}
	ref, _ := dep.Ref("Counter")

	binding, err := system.Bind("client", ref, core.Contract{
		Require: core.TransparencySet(core.Location | core.Relocation | core.Failure),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer binding.Close()

	ctx := context.Background()
	inc := func(label string) {
		term, res, err := binding.Invoke(ctx, "Inc", []values.Value{values.Int(1)})
		if err != nil || term != "OK" {
			log.Fatalf("%s: %s %v", label, term, err)
		}
		n, _ := res[0].AsInt()
		fmt.Printf("%-22s counter=%d (served from %s)\n", label, n, binding.Ref().Endpoint)
	}

	inc("before migration")
	inc("before migration")

	// Migrate the cluster from alpha to beta. Interface identity is
	// preserved; the relocator learns the new location.
	capsuleB, err := nodeB.CreateCapsule()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dep.Cluster.MigrateTo(capsuleB); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- cluster migrated alpha -> beta --")

	inc("after migration")
	inc("after migration")

	st := binding.Stats()
	fmt.Printf("binding stats: invocations=%d retries=%d relocations=%d\n",
		st.Invocations, st.Retries, st.Relocations)
	if st.Relocations == 0 {
		log.Fatal("expected the binder to have re-resolved the location")
	}
}
