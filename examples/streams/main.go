// Command streams demonstrates stream interfaces (Section 5.1) and
// binding objects: a producer pushes grouped audio+video flows into a
// stream binding object, which fans them out to two consumers — "several
// streams can be grouped in a single interface, e.g., an audio stream and
// a video stream".
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/odp"
	"repro/internal/types"
	"repro/internal/values"
)

// avType is the grouped audio+video stream interface, consumer side.
func avType() *types.Interface {
	frame := values.TRecord("Frame",
		values.FT("seq", values.TUint()),
		values.FT("data", values.TBytes()),
	)
	return types.StreamInterface("AV",
		types.FlowOf("audio", types.Consumer, frame),
		types.FlowOf("video", types.Consumer, frame),
	)
}

// sink counts the frames it absorbs per flow.
type sink struct {
	name string
	mu   sync.Mutex
	got  map[string]int
}

func (s *sink) Invoke(context.Context, string, []values.Value) (string, []values.Value, error) {
	return "", nil, nil
}

func (s *sink) Flow(flow string, _ values.Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.got == nil {
		s.got = map[string]int{}
	}
	s.got[flow]++
}

func (s *sink) report() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("%s: audio=%d video=%d", s.name, s.got["audio"], s.got["video"])
}

func main() {
	system := odp.NewSystem(11)
	defer system.Close()
	node, err := system.CreateNode("media")
	if err != nil {
		log.Fatal(err)
	}

	sinks := []*sink{{name: "consumer-1"}, {name: "consumer-2"}}
	idx := 0
	node.Behaviors().Register("sink", func(values.Value) (engineering.Behavior, error) {
		s := sinks[idx]
		idx++
		return s, nil
	})
	core.RegisterStreamBinding(node.Behaviors(), "stream-binding",
		func(ref naming.InterfaceRef) (core.FlowSender, error) {
			return node.Bind(ref, channel.BindConfig{Locator: system.Relocator})
		})

	capsule, err := node.CreateCapsule()
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Two consumer objects, each offering the AV stream interface.
	var sinkRefs []naming.InterfaceRef
	for range sinks {
		obj, err := cluster.CreateObject("sink", values.Null())
		if err != nil {
			log.Fatal(err)
		}
		ref, err := obj.AddInterface(avType())
		if err != nil {
			log.Fatal(err)
		}
		sinkRefs = append(sinkRefs, ref)
	}

	// The binding object: control interface + the stream interface.
	bindingObj, err := cluster.CreateObject("stream-binding", values.Null())
	if err != nil {
		log.Fatal(err)
	}
	ctrlRef, err := bindingObj.AddInterface(core.StreamBindingControlType())
	if err != nil {
		log.Fatal(err)
	}
	streamRef, err := bindingObj.AddInterface(avType())
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	ctrl, err := node.Bind(ctrlRef, channel.BindConfig{Type: core.StreamBindingControlType()})
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	for _, ref := range sinkRefs {
		term, res, err := ctrl.Invoke(ctx, "AddSink", []values.Value{ref.ToValue()})
		if err != nil || term != "OK" {
			log.Fatalf("AddSink: %s %v %v", term, res, err)
		}
	}

	// The producer pushes 10 video frames and 5 audio frames.
	producer, err := node.Bind(streamRef, channel.BindConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer producer.Close()
	frame := func(seq uint64) values.Value {
		return values.Record(
			values.F("seq", values.Uint(seq)),
			values.F("data", values.BytesVal([]byte{byte(seq)})),
		)
	}
	for i := uint64(0); i < 10; i++ {
		if err := producer.Flow(ctx, "video", frame(i)); err != nil {
			log.Fatal(err)
		}
		if i%2 == 0 {
			if err := producer.Flow(ctx, "audio", frame(i)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Flows are one-way; give delivery a moment, then report.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, s := range sinks {
			s.mu.Lock()
			if s.got["video"] < 10 || s.got["audio"] < 5 {
				done = false
			}
			s.mu.Unlock()
		}
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, s := range sinks {
		fmt.Println(s.report())
	}
}
