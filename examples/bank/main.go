// Command bank runs the tutorial's running example end to end, across all
// five viewpoints:
//
//  1. enterprise: the branch community with its policies — watch the
//     $500/day prohibition deny a withdrawal and the interest-rate change
//     create an obligation;
//  2. information: the account schemas rejecting the same over-limit
//     change at the model level;
//  3. computational: the branch object of Figure 2 with BankTeller,
//     BankManager and LoansOfficer interfaces;
//  4. engineering: the object deployed on a node, reached through
//     channels with relocation and failure transparency;
//  5. technology + Figure 1: the consistency check tying them together.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/odp"
	"repro/internal/technology"
	"repro/internal/transactions"
	"repro/internal/values"
)

func main() {
	ctx := context.Background()

	// --- enterprise viewpoint -------------------------------------------
	community, err := bank.NewCommunity("branch-cbd")
	if err != nil {
		log.Fatal(err)
	}
	must(community.AddObject("kerry", 1 /* active */))
	must(community.AddObject("alice", 1))
	must(community.Assign("kerry", "manager"))
	must(community.Assign("alice", "customer"))

	fmt.Println("== enterprise viewpoint ==")
	verdict, err := community.Check("alice", "Withdraw", values.Record(
		values.F("amount", values.Int(400)),
		values.F("withdrawn_today", values.Int(0)),
		values.F("account_open", values.Bool(true)),
	))
	fmt.Printf("withdraw $400 with $0 used: allowed=%v (policy %s)\n", verdict.Allowed, verdict.Policy)
	_, err = community.Check("alice", "Withdraw", values.Record(
		values.F("amount", values.Int(200)),
		values.F("withdrawn_today", values.Int(400)),
		values.F("account_open", values.Bool(true)),
	))
	fmt.Printf("withdraw $200 with $400 used: %v\n", err)
	must(community.Perform("kerry", "SetInterestRate", values.Record(values.F("rate", values.Float(4.5)))))
	for _, o := range community.Outstanding("manager") {
		fmt.Printf("obligation: %s must %s (from %s)\n", o.Role, o.Duty, o.Origin)
	}

	// --- information viewpoint ------------------------------------------
	fmt.Println("\n== information viewpoint ==")
	model, err := bank.NewModel()
	if err != nil {
		log.Fatal(err)
	}
	must(model.PutObject("acct_1", "Account", bank.NewAccountState(1000)))
	must(model.Apply("acct_1", "Withdraw", values.Record(values.F("d", values.Int(400)))))
	err = model.Apply("acct_1", "Withdraw", values.Record(values.F("d", values.Int(200))))
	fmt.Printf("model rejects the same over-limit change: %v\n", err)

	// --- computational + engineering viewpoints --------------------------
	fmt.Println("\n== computational + engineering viewpoints ==")
	system := odp.NewSystem(7)
	defer system.Close()
	node, err := system.CreateNode("bank-node")
	if err != nil {
		log.Fatal(err)
	}
	coord := transactions.NewCoordinator()
	store := transactions.NewStore("branch-cbd", nil)
	bank.RegisterBehavior(node.Behaviors(), coord, store)
	if _, err := system.Deploy(node, bank.Template("branch-cbd"), values.Record(
		values.F("city", values.Str("brisbane")),
	)); err != nil {
		log.Fatal(err)
	}
	contract := core.Contract{Require: core.TransparencySet(
		core.Access | core.Location | core.Relocation | core.Failure | core.Transaction)}

	manager, err := system.ImportAndBind("teller-desk", "BankManager", "", contract)
	if err != nil {
		log.Fatal(err)
	}
	defer manager.Close()
	term, res, err := manager.Invoke(ctx, "CreateAccount", []values.Value{values.Str("alice")})
	if err != nil || term != "OK" {
		log.Fatalf("CreateAccount: %s %v %v", term, res, err)
	}
	acct, _ := res[0].AsString()
	fmt.Printf("manager created %s\n", acct)

	teller, err := system.ImportAndBind("teller-desk", "BankTeller", "", contract)
	if err != nil {
		log.Fatal(err)
	}
	defer teller.Close()
	invoke := func(b interface {
		Invoke(context.Context, string, []values.Value) (string, []values.Value, error)
	}, op string, args ...values.Value) {
		term, res, err := b.Invoke(ctx, op, args)
		if err != nil {
			log.Fatalf("%s: %v", op, err)
		}
		fmt.Printf("%-14s -> %s %v\n", op, term, res)
	}
	invoke(teller, "Deposit", values.Str("alice"), values.Str(acct), values.Int(1000))
	invoke(teller, "Withdraw", values.Str("alice"), values.Str(acct), values.Int(400))
	invoke(teller, "Withdraw", values.Str("alice"), values.Str(acct), values.Int(200)) // NotToday
	invoke(teller, "Balance", values.Str("alice"), values.Str(acct))

	// The teller interface cannot create accounts (Figure 2's asymmetry).
	if _, _, err := teller.Invoke(ctx, "CreateAccount", []values.Value{values.Str("bob")}); err != nil {
		fmt.Printf("CreateAccount via teller interface: %v\n", err)
	}

	// --- technology viewpoint + Figure 1 ----------------------------------
	fmt.Println("\n== technology viewpoint + consistency (Figure 1) ==")
	tech := technology.NewSpecification("sim-deployment")
	must(tech.Choose("transport", values.Record(values.F("kind", values.Str("sim")))))
	must(tech.Require(technology.Requirement{Name: "transport-chosen", Condition: "exist transport.kind"}))
	findings := odp.CheckConsistency(odp.Spec{
		Community:  community,
		Model:      model,
		Templates:  []core.ObjectTemplate{bank.Template("branch-cbd")},
		Technology: tech,
		Links: []odp.Correspondence{
			{Action: "Deposit", Interface: "BankTeller", Operation: "Deposit", Schema: "Deposit"},
			{Action: "Withdraw", Interface: "BankTeller", Operation: "Withdraw", Schema: "Withdraw"},
			{Action: "CreateAccount", Interface: "BankManager", Operation: "CreateAccount"},
		},
	}, node.Behaviors())
	if errs := odp.Errors(findings); len(errs) == 0 {
		fmt.Println("viewpoints consistent (errors: 0)")
	}
	for _, f := range findings {
		fmt.Printf("finding [%s/%s]: %s\n", f.Severity, f.Viewpoint, f.Detail)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
