// Command federation demonstrates trading across administrative domains:
// three traders linked in a chain, with type-checked substitutability —
// an import for BankTeller service two hops away finds a BankManager
// offer, because a manager can substitute for a teller (Figure 3).
package main

import (
	"fmt"
	"log"

	"repro/internal/bank"
	"repro/internal/naming"
	"repro/internal/trader"
	"repro/internal/typerepo"
	"repro/internal/values"
)

func main() {
	// One shared type universe (in practice each domain would replicate
	// the repository; the registry is just data).
	repo := typerepo.New()
	must(repo.RegisterInterface(bank.TellerType()))
	must(repo.RegisterInterface(bank.ManagerType()))
	must(repo.RegisterInterface(bank.LoansOfficerType()))

	// Three trading domains: city, state, national.
	city := trader.New("city", repo)
	state := trader.New("state", repo)
	national := trader.New("national", repo)
	city.Link("state", state)
	state.Link("national", national)

	// Offers appear in different domains.
	ref := func(typeName string, nonce uint64, host string) naming.InterfaceRef {
		return naming.InterfaceRef{
			ID:       naming.InterfaceID{Nonce: nonce},
			TypeName: typeName,
			Endpoint: naming.Endpoint("sim://" + host),
		}
	}
	if _, err := state.Export("BankTeller", ref("BankTeller", 1, "state-branch"),
		values.Record(values.F("queue", values.Int(7)))); err != nil {
		log.Fatal(err)
	}
	if _, err := national.Export("BankManager", ref("BankManager", 2, "hq"),
		values.Record(values.F("queue", values.Int(1)))); err != nil {
		log.Fatal(err)
	}

	show := func(label string, hops int) {
		offers, err := city.Import(trader.ImportRequest{
			ServiceType: "BankTeller",
			Preference:  trader.Preference{Kind: trader.PrefMin, Expr: "queue"},
			MaxHops:     hops,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (hops=%d): %d offer(s)\n", label, hops, len(offers))
		for _, o := range offers {
			q, _ := o.Properties.FieldByName("queue")
			fmt.Printf("  %-12s type=%-12s queue=%s at %s\n", o.ID, o.ServiceType, q, o.Ref.Endpoint)
		}
	}
	show("local only", 0)
	show("one hop", 1)
	show("two hops", 2)

	st := city.Stats()
	fmt.Printf("city trader stats: imports=%d federated=%d matched=%d\n",
		st.Imports, st.Federated, st.Matched)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
