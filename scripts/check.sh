#!/usr/bin/env sh
# check.sh — the tier-2 gate.
#
# Tier 1 (the build gate) is `go build ./... && go test ./...`. This script
# adds the checks that guard the invocation hot path: vet, the race detector
# over the packages that share pooled buffers across goroutines (wire,
# channel, netsim) and the packages that fan work out across goroutines
# (transactions' parallel 2PC, coordination's sequencer fan-out, trader's
# concurrent federation), and short benchmark smoke runs so a change that
# breaks the benchmark harness fails here rather than in a measurement
# session.
#
# Run from the repository root:  ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== race detector (hot-path and fan-out packages) =="
go test -race ./internal/wire/ ./internal/channel/ ./internal/netsim/ \
	./internal/transactions/ ./internal/coordination/ ./internal/trader/

echo "== benchmark smoke (E2 bank invocation) =="
go test -run=NONE -bench=E2 -benchtime=100x -benchmem .

echo "== benchmark smoke (replica scaling fan-out) =="
go test -run=NONE -bench=E6_ReplicationScaling -benchtime=5x .

echo "check.sh: all gates passed"
