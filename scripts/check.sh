#!/usr/bin/env sh
# check.sh — the tier-2 gate.
#
# Tier 1 (the build gate) is `go build ./... && go test ./...`. This script
# adds the checks that guard the invocation hot path: vet, the race detector
# over the packages that share pooled buffers across goroutines (wire,
# channel, netsim) and the packages that fan work out across goroutines
# (transactions' parallel 2PC, coordination's sequencer fan-out, trader's
# concurrent federation), and short benchmark smoke runs so a change that
# breaks the benchmark harness fails here rather than in a measurement
# session.
#
# Run from the repository root:  ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== race detector (hot-path and fan-out packages) =="
go test -race ./internal/wire/ ./internal/channel/ ./internal/netsim/ \
	./internal/transactions/ ./internal/coordination/ ./internal/trader/ \
	./internal/mgmt/ ./internal/relocator/ ./internal/policy/ \
	./internal/hashring/ ./internal/odp/ ./internal/stream/ \
	./internal/typerepo/ ./internal/health/

echo "== E11 chaos smoke (policy-on availability + recovery + no leaked goroutines) =="
# A short chaos run under the race detector: TestE11ChaosSmoke asserts
# >=99% availability after the faults heal, a measured time-to-recover,
# breakers actually opening, a traced degraded read, and that the run
# winds down without leaking goroutines.
go test -race -run 'TestE11' ./internal/experiments/

echo "== benchmark smoke + alloc budget (E2 bank invocation) =="
# The session-layer refactor must keep the single-binding hot path
# allocation-lean: the deposit scenario's 20 allocs/op budget gets 5%
# headroom (21). Alloc counts are deterministic, so this gate is stable
# where a wall-clock gate would flake on shared hosts.
go test -run=NONE -bench=E2 -benchtime=200x -benchmem . | tee /tmp/check_e2.out
awk '/bank-deposit|deposit/ && /allocs\/op/ {
		allocs = $(NF-1) + 0
		if (allocs > 21) { printf "E2 deposit alloc budget exceeded: %d > 21 allocs/op\n", allocs; bad = 1 }
		found = 1
	}
	END {
		if (!found) { print "E2 deposit benchmark missing from output"; exit 1 }
		exit bad
	}' /tmp/check_e2.out

echo "== benchmark smoke (replica scaling fan-out) =="
go test -run=NONE -bench=E6_ReplicationScaling -benchtime=5x .

echo "== benchmark smoke (E9 observability overhead) =="
go test -run=NONE -bench=E9 -benchtime=100x -benchmem .

echo "== benchmark smoke (E10 session-invoke hot path) =="
go test -run=NONE -bench=E10 -benchtime=100x -benchmem .

echo "== E10 session multiplexing smoke (256 bindings -> 1 connection, 1 dial) =="
go run ./cmd/odpbench -only e10 -iters 200 | tee /tmp/check_e10.out
awk '/shared\/n=256/ {
		if ($2 + 0 != 1 || $3 + 0 != 1) {
			printf "session multiplexing regressed: shared/n=256 conns=%s dials=%s, want 1/1\n", $2, $3
			exit 1
		}
		found = 1
	}
	END { if (!found) { print "E10 shared/n=256 row missing"; exit 1 } }' /tmp/check_e10.out

echo "== E12 pipelining + batching smoke (batched >= 2x unpipelined at 64 bindings x 8 in-flight) =="
# The pipelined/batched data plane must at least double invocation
# throughput over the unpipelined baseline (per-binding serialisation,
# one write per frame) on real loopback TCP. Wall-clock throughput on a
# shared host is noisy, so the gate takes the best of three runs: a real
# regression (ratio near 1x) can never pass, while one run hit by a load
# spike does not fail the build.
e12_ok=0
for e12_attempt in 1 2 3; do
	go run ./cmd/odpbench -only e12smoke -json > /tmp/check_e12.json
	if awk '
		/"mode"/       { mode = $2; gsub(/[",]/, "", mode) }
		/"bindings"/   { bindings = $2 + 0 }
		/"inflight"/   { inflight = $2 + 0 }
		/"throughput"/ {
			thr = $2 + 0
			if (bindings == 64 && inflight == 8) {
				if (mode == "batched") batched = thr
				if (mode == "serial")  serial  = thr
			}
		}
		END {
			if (batched == 0 || serial == 0) { print "e12: 64x8 rows missing from JSON"; exit 1 }
			printf "e12: batched %.0f calls/s vs unpipelined %.0f calls/s: %.2fx\n", batched, serial, batched / serial
			exit !(batched >= 2 * serial)
		}' /tmp/check_e12.json; then
		e12_ok=1
		break
	fi
	echo "e12 attempt $e12_attempt below 2x; retrying"
done
if [ "$e12_ok" != "1" ]; then
	echo "E12 pipelining gate failed: batched < 2x unpipelined in 3 runs"
	exit 1
fi

echo "== E13 sharding smoke (8-shard >= 3x single-shard; 100k-binding swarm, 0 lost lookups) =="
# The sharded trader must actually scale: with every shard node behind
# the same fixed-capacity gate, 8 shards have to deliver at least 3x the
# import throughput of 1 (the gate makes this a property of the routing,
# not of the host's core count, but wall-clock is still noisy on shared
# hosts — best of three). The swarm and blackout slices are deterministic
# protocol properties and must hold on every run: >=100k bindings
# established with zero lost lookups, and zero probe misses while the
# ring gains and loses a shard mid-lookup.
e13_ok=0
for e13_attempt in 1 2 3; do
	go run ./cmd/odpbench -only e13smoke -json > /tmp/check_e13.json
	if awk '
		/"scenario"/     { scen = $2; gsub(/[",]/, "", scen) }
		/"shards"/       { shards = $2 + 0 }
		/"throughput"/   { if (scen == "grid") thr[shards] = $2 + 0 }
		/"bindings":/    { if (scen == "swarm") bindings = $2 + 0 }
		/"lost_lookups"/ { lost = $2 + 0 }
		/"misses"/       { if (scen == "rebalance-blackout") misses = $2 + 0 }
		/"probes"/       { probes = $2 + 0 }
		END {
			if (thr[1] == 0 || thr[8] == 0) { print "e13: grid rows missing from JSON"; exit 1 }
			printf "e13: 8 shards %.0f imports/s vs 1 shard %.0f: %.2fx; swarm %d bindings, %d lost; blackout %d probes, %d misses\n", \
				thr[8], thr[1], thr[8] / thr[1], bindings, lost, probes, misses
			if (bindings < 100000) { print "e13: swarm fell short of 100k bindings"; exit 1 }
			if (lost != 0)         { print "e13: swarm lost lookups"; exit 1 }
			if (probes == 0)       { print "e13: no blackout probes ran"; exit 1 }
			if (misses != 0)       { print "e13: rebalance blackout misses"; exit 1 }
			exit !(thr[8] >= 3 * thr[1])
		}' /tmp/check_e13.json; then
		e13_ok=1
		break
	fi
	echo "e13 attempt $e13_attempt below 3x; retrying"
done
if [ "$e13_ok" != "1" ]; then
	echo "E13 sharding gate failed: 8 shards < 3x single shard in 3 runs"
	exit 1
fi

echo "== E14 streaming smoke (slow-consumer isolation >= 0.8x; memory ceiling = window) =="
# One slow consumer among 64 credit-windowed streams on one session must
# not drag its siblings down: the one-slow scenario has to keep at least
# 80% of the all-fast fast-stream throughput on loopback TCP (wall-clock,
# so best of three), and — deterministically, every run — the slow
# stream's consumer queue must never exceed its credit window and no
# element may be dropped on type grounds or delivered out of order.
e14_ok=0
for e14_attempt in 1 2 3; do
	go run ./cmd/odpbench -only e14smoke -json > /tmp/check_e14.json
	if awk '
		/"scenario"/        { scen = $2; gsub(/[",]/, "", scen) }
		/"window"/          { window = $2 + 0 }
		/"fast_throughput"/ { thr[scen] = $2 + 0 }
		/"slow_max_queued"/ { maxq[scen] = $2 + 0 }
		/"seq_gaps"/        { gaps += $2 + 0 }
		/"flow_type_errors"/ { typeerr += $2 + 0 }
		END {
			if (thr["all-fast/tcp"] == 0 || thr["one-slow/tcp"] == 0) {
				print "e14: tcp rows missing from JSON"; exit 1
			}
			ratio = thr["one-slow/tcp"] / thr["all-fast/tcp"]
			printf "e14: one-slow %.0f el/s vs all-fast %.0f el/s: %.2fx; slow maxq %d/%d window\n", \
				thr["one-slow/tcp"], thr["all-fast/tcp"], ratio, maxq["one-slow/tcp"], window
			if (maxq["one-slow/tcp"] > window) { print "e14: slow stream queued past its window"; exit 1 }
			if (maxq["one-slow/sim"] > window) { print "e14: slow stream queued past its window (sim)"; exit 1 }
			if (gaps != 0)    { print "e14: FIFO sequence gaps"; exit 1 }
			if (typeerr != 0) { print "e14: flow type errors"; exit 1 }
			exit !(ratio >= 0.8)
		}' /tmp/check_e14.json; then
		e14_ok=1
		break
	fi
	echo "e14 attempt $e14_attempt below 0.8x; retrying"
done
if [ "$e14_ok" != "1" ]; then
	echo "E14 streaming gate failed: one slow consumer dragged siblings below 0.8x in 3 runs"
	exit 1
fi

echo "== E15 de-singleton smoke (replicated typerepo >= 2x gated singleton; 1M swarm, 0 lost; crash-storm rebalance, 0 misses) =="
# The de-singletoned control plane must hold at scale. The typerepo
# authority sits behind a fixed-capacity gate, so the replicated read
# front-end has to beat the singleton by at least 2x as a property of
# where reads are served, not of core count (wall-clock, so best of
# three). The swarm and crash-storm slices are deterministic protocol
# properties and must hold on every run: >=1,000,000 bindings with zero
# lost lookups through the replicated repository, and zero probe misses
# while the ring gains and loses a shard with a chaos-scripted crash of
# one replica-group member mid-rebalance.
e15_ok=0
for e15_attempt in 1 2 3; do
	go run ./cmd/odpbench -only e15smoke -json > /tmp/check_e15.json
	if awk '
		/"scenario"/     { scen = $2; gsub(/[",]/, "", scen) }
		/"throughput"/   {
			if (scen == "typerepo-singleton")  single = $2 + 0
			if (scen == "typerepo-replicated") repl   = $2 + 0
		}
		/"bindings":/    { if (scen == "swarm") bindings = $2 + 0 }
		/"lost_lookups"/ { lost = $2 + 0 }
		/"probes"/       { if (scen == "crash-rebalance") probes = $2 + 0 }
		/"misses"/       { if (scen == "crash-rebalance") misses = $2 + 0 }
		/"crash_events"/ { crashes = $2 + 0 }
		END {
			if (single == 0 || repl == 0) { print "e15: typerepo rows missing from JSON"; exit 1 }
			printf "e15: replicated %.0f imports/s vs gated singleton %.0f: %.1fx; swarm %d bindings, %d lost; crash storm %d probes, %d misses, %d crash(es)\n", \
				repl, single, repl / single, bindings, lost, probes, misses, crashes
			if (bindings < 1000000) { print "e15: swarm fell short of 1M bindings"; exit 1 }
			if (lost != 0)          { print "e15: swarm lost lookups"; exit 1 }
			if (probes == 0)        { print "e15: no crash-storm probes ran"; exit 1 }
			if (crashes == 0)       { print "e15: chaos crash never fired"; exit 1 }
			if (misses != 0)        { print "e15: crash-storm probe misses"; exit 1 }
			exit !(repl >= 2 * single)
		}' /tmp/check_e15.json; then
		e15_ok=1
		break
	fi
	echo "e15 attempt $e15_attempt failed; retrying"
done
if [ "$e15_ok" != "1" ]; then
	echo "E15 de-singleton gate failed in 3 runs"
	exit 1
fi

echo "== E16 self-healing smoke (recovery-on: >=99% availability, 0 lost, every victim rescued; recovery-off degrades) =="
# The self-healing loop must close under the migration storm: with the
# recovery controller on, the mid-storm shard crash and the victim kills
# cost zero lost trader lookups and zero permanently dead objects, every
# victim is rescued, and the failed-over group still runs both replicas;
# aggregate availability has to stay >=99% (wall-clock through a probe
# window, so best of three). The recovery-off control must show the
# degradation is real: dead objects left behind and strictly lower
# availability than the recovered run.
e16_ok=0
for e16_attempt in 1 2 3; do
	go run ./cmd/odpbench -only e16smoke -json > /tmp/check_e16.json
	if awk '
		/"scenario"/       { scen = $2; gsub(/[",]/, "", scen) }
		/"availability"/   { avail[scen] = $2 + 0 }
		/"lost_lookups"/   { if (scen == "recovery-on") lost = $2 + 0 }
		/"dead_objects"/   { dead[scen] = $2 + 0 }
		/"rescues"/        { resc[scen] = $2 + 0 }
		/"group_size"/     { if (scen == "recovery-on") gsize = $2 + 0 }
		/"migrations"/     { if (scen == "recovery-on") migr = $2 + 0 }
		END {
			if (avail["recovery-on"] == 0 || avail["recovery-off"] == 0) {
				print "e16: scenario rows missing from JSON"; exit 1
			}
			printf "e16: recovery-on %.4f avail, %d lost, %d dead, %d rescues, group %d, %d migrations; recovery-off %.4f avail, %d dead\n", \
				avail["recovery-on"], lost, dead["recovery-on"], resc["recovery-on"], gsize, migr, \
				avail["recovery-off"], dead["recovery-off"]
			if (lost != 0)                  { print "e16: recovery-on lost trader lookups"; exit 1 }
			if (dead["recovery-on"] != 0)   { print "e16: recovery-on left dead objects"; exit 1 }
			if (resc["recovery-on"] == 0)   { print "e16: no victim was rescued"; exit 1 }
			if (gsize != 2)                 { print "e16: failed-over group lost a replica"; exit 1 }
			if (migr < 100)                 { print "e16: migration storm fell short"; exit 1 }
			if (dead["recovery-off"] == 0)  { print "e16: recovery-off control shows no dead objects"; exit 1 }
			if (avail["recovery-off"] >= avail["recovery-on"]) {
				print "e16: recovery-off control not degraded"; exit 1
			}
			exit !(avail["recovery-on"] >= 0.99)
		}' /tmp/check_e16.json; then
		e16_ok=1
		break
	fi
	echo "e16 attempt $e16_attempt failed; retrying"
done
if [ "$e16_ok" != "1" ]; then
	echo "E16 self-healing gate failed in 3 runs"
	exit 1
fi

# The disabled-instrumentation budget: an uninstrumented invocation must
# stay within 5% of the E4 replay-binder baseline (the identical channel
# configuration, built before mgmt existed). The comparison needs quiet,
# repeated runs, so it is opt-in:  MGMT_OVERHEAD_CHECK=1 ./scripts/check.sh
if [ "${MGMT_OVERHEAD_CHECK:-0}" = "1" ]; then
	echo "== disabled-instrumentation overhead budget (<= 5%) =="
	# Three interleaved processes, each running both benchmarks
	# back-to-back; compare the best run of each so a load spike on a
	# shared host biases neither side.
	{
		for _ in 1 2 3; do
			go test -run=NONE \
				-bench='E4_Channel/replay-binder$|E9_Observability/invoke/instrumentation-off$' \
				-benchtime=1s .
		done
	} | awk '
		/replay-binder/       { if (base == 0 || $3 < base) base = $3; nb++ }
		/instrumentation-off/ { if (off  == 0 || $3 < off)  off  = $3; no++ }
		END {
			if (nb == 0 || no == 0) { print "overhead check: benchmarks missing"; exit 1 }
			pct = (off - base) / base * 100
			printf "replay-binder %.0f ns/op, instrumentation-off %.0f ns/op (best of %d), overhead %.1f%%\n", base, off, nb, pct
			if (pct > 5) { print "overhead budget exceeded"; exit 1 }
		}'
fi

echo "check.sh: all gates passed"
