#!/usr/bin/env sh
# check.sh — the tier-2 gate.
#
# Tier 1 (the build gate) is `go build ./... && go test ./...`. This script
# adds the checks that guard the invocation hot path: vet, the race detector
# over the packages that share pooled buffers across goroutines (wire,
# channel, netsim) and the packages that fan work out across goroutines
# (transactions' parallel 2PC, coordination's sequencer fan-out, trader's
# concurrent federation), and short benchmark smoke runs so a change that
# breaks the benchmark harness fails here rather than in a measurement
# session.
#
# Run from the repository root:  ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== race detector (hot-path and fan-out packages) =="
go test -race ./internal/wire/ ./internal/channel/ ./internal/netsim/ \
	./internal/transactions/ ./internal/coordination/ ./internal/trader/ \
	./internal/mgmt/ ./internal/relocator/

echo "== benchmark smoke (E2 bank invocation) =="
go test -run=NONE -bench=E2 -benchtime=100x -benchmem .

echo "== benchmark smoke (replica scaling fan-out) =="
go test -run=NONE -bench=E6_ReplicationScaling -benchtime=5x .

echo "== benchmark smoke (E9 observability overhead) =="
go test -run=NONE -bench=E9 -benchtime=100x -benchmem .

# The disabled-instrumentation budget: an uninstrumented invocation must
# stay within 5% of the E4 replay-binder baseline (the identical channel
# configuration, built before mgmt existed). The comparison needs quiet,
# repeated runs, so it is opt-in:  MGMT_OVERHEAD_CHECK=1 ./scripts/check.sh
if [ "${MGMT_OVERHEAD_CHECK:-0}" = "1" ]; then
	echo "== disabled-instrumentation overhead budget (<= 5%) =="
	# Three interleaved processes, each running both benchmarks
	# back-to-back; compare the best run of each so a load spike on a
	# shared host biases neither side.
	{
		for _ in 1 2 3; do
			go test -run=NONE \
				-bench='E4_Channel/replay-binder$|E9_Observability/invoke/instrumentation-off$' \
				-benchtime=1s .
		done
	} | awk '
		/replay-binder/       { if (base == 0 || $3 < base) base = $3; nb++ }
		/instrumentation-off/ { if (off  == 0 || $3 < off)  off  = $3; no++ }
		END {
			if (nb == 0 || no == 0) { print "overhead check: benchmarks missing"; exit 1 }
			pct = (off - base) / base * 100
			printf "replay-binder %.0f ns/op, instrumentation-off %.0f ns/op (best of %d), overhead %.1f%%\n", base, off, nb, pct
			if (pct > 5) { print "overhead budget exceeded"; exit 1 }
		}'
fi

echo "check.sh: all gates passed"
