// The grand-tour integration test: one scenario exercising every major
// subsystem together — a secured, audited, transactional bank branch that
// migrates between nodes while authenticated customers keep using it, with
// periodic checkpoints guarding against node loss. This is the
// repository's answer to "does the whole reference model compose?".
package repro_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/channel"
	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/relocator"
	"repro/internal/security"
	"repro/internal/trader"
	"repro/internal/transactions"
	"repro/internal/transparency"
	"repro/internal/typerepo"
	"repro/internal/values"
)

func TestGrandTour(t *testing.T) {
	net := netsim.New(2026)
	reloc := relocator.New()
	repo := typerepo.New()
	tr := trader.New("federation-root", repo)

	// Security domain: one realm and policy shared by both nodes.
	realm := security.NewRealm()
	realm.AddPrincipal("alice", []byte("alice-secret"))
	realm.AddPrincipal("mallory", []byte("mallory-secret"))
	policy := security.NewPolicy()
	for _, op := range []string{"Deposit", "Withdraw", "Balance", "CreateAccount", "ResetDay"} {
		policy.Allow("alice", op)
	}
	audit := &security.AuditLog{}
	serverCfg := transparency.ServerConfig(transparency.ServerEnv{
		Realm: realm, Policy: policy, Audit: audit.Record,
	})

	// Two nodes sharing the branch's transactional store (a real deployment
	// would recover it from the durable WAL; TestDurableStoreSurvivesRestart
	// covers that path).
	coord := transactions.NewCoordinator()
	store := transactions.NewStore("branch", nil)
	mkNode := func(name string) *engineering.Node {
		n, err := engineering.NewNode(engineering.NodeConfig{
			ID:        naming.NodeID(name),
			Endpoint:  naming.Endpoint("sim://" + name),
			Transport: net.From(name),
			Locations: reloc,
			Server:    serverCfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		bank.RegisterBehavior(n.Behaviors(), coord, store)
		return n
	}
	alphaNode := mkNode("alpha")
	betaNode := mkNode("beta")

	// Deploy the branch on alpha and advertise it.
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(repo.RegisterInterface(bank.TellerType()))
	must(repo.RegisterInterface(bank.ManagerType()))
	must(repo.RegisterInterface(bank.LoansOfficerType()))

	capsule, err := alphaNode.CreateCapsule()
	must(err)
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{AutoReactivate: true})
	must(err)
	obj, err := cluster.CreateObject("bank.branch", values.Null())
	must(err)
	tellerRef, err := obj.AddInterface(bank.TellerType())
	must(err)
	managerRef, err := obj.AddInterface(bank.ManagerType())
	must(err)
	_, err = tr.Export("BankTeller", tellerRef, values.Record(values.F("city", values.Str("brisbane"))))
	must(err)
	_, err = tr.Export("BankManager", managerRef, values.Record(values.F("city", values.Str("brisbane"))))
	must(err)

	// Periodic checkpointing guards the branch.
	cs := coordination.NewCheckpointStore()
	var guard coordination.Checkpointer
	must(guard.Start(cluster, cs, 5*time.Millisecond))
	defer guard.Stop()

	// Alice binds through the full contract: access + location + relocation
	// + failure + authenticated-and-audited security.
	contract := core.Contract{
		Require:  core.TransparencySet(core.Access | core.Location | core.Relocation | core.Failure),
		Security: core.SecurityAudited,
	}
	clientAudit := &channel.MemoryAudit{}
	env := transparency.Env{
		Transport: net.From("alice-laptop"),
		Locator:   reloc,
		Principal: "alice",
		Secret:    []byte("alice-secret"),
		AuditSink: clientAudit.Record,
	}

	// Trade, then bind.
	offers, err := tr.Import(trader.ImportRequest{ServiceType: "BankManager", Constraint: "city == 'brisbane'"})
	must(err)
	if len(offers) != 1 {
		t.Fatalf("offers = %d", len(offers))
	}
	manager, err := transparency.Bind(offers[0].Ref, contract, env)
	must(err)
	defer manager.Close()

	ctx := context.Background()
	term, res, err := manager.Invoke(ctx, "CreateAccount", []values.Value{values.Str("alice")})
	must(err)
	if term != "OK" {
		t.Fatalf("CreateAccount = %q", term)
	}
	acct, _ := res[0].AsString()
	if term, _, err = manager.Invoke(ctx, "Deposit",
		[]values.Value{values.Str("alice"), values.Str(acct), values.Int(1000)}); err != nil || term != "OK" {
		t.Fatalf("Deposit = %q, %v", term, err)
	}

	// Mallory authenticates but is not authorised: the policy denies her.
	malloryEnv := env
	malloryEnv.Principal = "mallory"
	malloryEnv.Secret = []byte("mallory-secret")
	malloryEnv.AuditSink = func(channel.AuditEntry) {}
	mb, err := transparency.Bind(offers[0].Ref, contract, malloryEnv)
	must(err)
	defer mb.Close()
	if _, _, err := mb.Invoke(ctx, "Deposit",
		[]values.Value{values.Str("m"), values.Str(acct), values.Int(1)}); !channel.IsRemote(err, channel.CodeAuth) {
		t.Fatalf("mallory deposit = %v", err)
	}

	// Wait for at least one recovery point, then quiesce the checkpointer
	// around the explicit state changes below.
	deadline := time.Now().Add(2 * time.Second)
	for cs.Saves() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// The branch deactivates (resource pressure); alice's next call
	// transparently reactivates it — persistence transparency.
	guard.Stop()
	must(cluster.Deactivate())
	if term, _, err = manager.Invoke(ctx, "Balance",
		[]values.Value{values.Str("alice"), values.Str(acct)}); err != nil || term != "OK" {
		t.Fatalf("Balance during deactivation = %q, %v", term, err)
	}

	// The branch migrates to beta under alice's feet — relocation
	// transparency keeps her binding alive.
	capsuleB, err := betaNode.CreateCapsule()
	must(err)
	if _, err := cluster.MigrateTo(capsuleB); err != nil {
		t.Fatal(err)
	}
	term, res, err = manager.Invoke(ctx, "Withdraw",
		[]values.Value{values.Str("alice"), values.Str(acct), values.Int(400)})
	must(err)
	if term != "OK" {
		t.Fatalf("post-migration Withdraw = %q", term)
	}
	if n, _ := res[0].AsInt(); n != 600 {
		t.Errorf("balance = %d", n)
	}
	if manager.Stats().Relocations == 0 {
		t.Error("binding should have relocated")
	}

	// The daily limit still binds across all that churn.
	if term, _, _ = manager.Invoke(ctx, "Withdraw",
		[]values.Value{values.Str("alice"), values.Str(acct), values.Int(200)}); term != "NotToday" {
		t.Errorf("over-limit withdrawal = %q", term)
	}

	// Audit trails exist at both ends: the client stub recorded operations,
	// the server recorded access decisions including mallory's denial.
	if len(clientAudit.Entries()) == 0 {
		t.Error("client audit empty")
	}
	denied := 0
	for _, d := range audit.Decisions() {
		if !d.Allowed {
			denied++
		}
	}
	if denied == 0 {
		t.Error("server audit should show mallory's denial")
	}
	// And the checkpoint store holds recovery points.
	if cs.Saves() == 0 {
		t.Error("checkpointer never ran")
	}
}
